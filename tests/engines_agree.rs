//! The deterministic engine, the indexed engine, the sharded engine, the
//! threaded (crossbeam-channel) engine and the remote (TCP-loopback) engine
//! must produce identical message counts and identical outputs for the same
//! seed — the protocols cannot tell which transport they run on.

use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::{CombinedMonitor, ExactTopKMonitor, TopKMonitor};
use topk_gen::{NoiseOscillationWorkload, RandomWalkWorkload, Workload};
use topk_model::Epsilon;
use topk_net::{
    DeterministicEngine, Dispatch, IndexedEngine, Network, RemoteEngine, ShardedEngine,
    ThreadedEngine,
};

fn compare(mut make_monitor: impl FnMut() -> Box<dyn Monitor>, rows: &[Vec<u64>], eps: Epsilon) {
    let n = rows[0].len();
    let seed = 4242;

    let mut det_monitor = make_monitor();
    let mut det_net = DeterministicEngine::new(n, seed);
    let det = run_on_rows(
        det_monitor.as_mut(),
        &mut det_net,
        rows.iter().cloned(),
        eps,
    );

    let mut idx_monitor = make_monitor();
    let mut idx_net = IndexedEngine::new(n, seed);
    let idx = run_on_rows(
        idx_monitor.as_mut(),
        &mut idx_net,
        rows.iter().cloned(),
        eps,
    );

    let mut shard_monitor = make_monitor();
    let mut shard_net = ShardedEngine::with_dispatch(n, seed, 4, Dispatch::Parallel);
    let shard = run_on_rows(
        shard_monitor.as_mut(),
        &mut shard_net,
        rows.iter().cloned(),
        eps,
    );

    let mut thr_monitor = make_monitor();
    let mut thr_net = ThreadedEngine::new(n, seed);
    let thr = run_on_rows(
        thr_monitor.as_mut(),
        &mut thr_net,
        rows.iter().cloned(),
        eps,
    );

    let mut rem_monitor = make_monitor();
    let mut rem_net = RemoteEngine::with_shards(n, seed, 3);
    let rem = run_on_rows(
        rem_monitor.as_mut(),
        &mut rem_net,
        rows.iter().cloned(),
        eps,
    );

    assert_eq!(
        det.messages(),
        thr.messages(),
        "{}: message counts differ between deterministic and threaded engines",
        det_monitor.name()
    );
    assert_eq!(
        det,
        idx,
        "{}: run reports differ between deterministic and indexed engines",
        det_monitor.name()
    );
    assert_eq!(
        det,
        shard,
        "{}: run reports differ between deterministic and sharded engines",
        det_monitor.name()
    );
    assert_eq!(
        det,
        rem,
        "{}: run reports differ between deterministic and remote (TCP) engines",
        det_monitor.name()
    );
    assert_eq!(det.stats.rounds, thr.stats.rounds);
    assert_eq!(det.invalid_steps, thr.invalid_steps);
    assert_eq!(det_monitor.output(), thr_monitor.output());
    assert_eq!(det_monitor.output(), idx_monitor.output());
    assert_eq!(det_monitor.output(), shard_monitor.output());
    assert_eq!(det_monitor.output(), rem_monitor.output());
    // The filters visible at the end must agree as well.
    assert_eq!(det_net.peek_filters(), thr_net.peek_filters());
    assert_eq!(det_net.peek_filters(), idx_net.peek_filters());
    assert_eq!(det_net.peek_filters(), shard_net.peek_filters());
    assert_eq!(det_net.peek_filters(), rem_net.peek_filters());
}

#[test]
fn engines_agree_for_exact_monitor() {
    let rows: Vec<Vec<u64>> = RandomWalkWorkload::new(12, 10_000, 300, 0.7, 9)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(
        || Box::new(ExactTopKMonitor::new(3)),
        &rows,
        Epsilon::new(1, 1000).unwrap(),
    );
}

#[test]
fn engines_agree_for_topk_protocol() {
    let eps = Epsilon::new(1, 4).unwrap();
    let rows: Vec<Vec<u64>> = RandomWalkWorkload::new(12, 1 << 20, 5_000, 0.8, 11)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(TopKMonitor::new(3, eps)), &rows, eps);
}

#[test]
fn engines_agree_for_combined_monitor_on_dense_input() {
    let eps = Epsilon::TENTH;
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(16, 2, 8, 100_000, eps, 13)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(CombinedMonitor::new(4, eps)), &rows, eps);
}
