//! The deterministic engine, the indexed engine, the sharded engine, the
//! threaded (crossbeam-channel) engine, the remote (TCP-loopback) engine and
//! a zero-fault `FaultyTransport` wrapper must produce identical message
//! counts and identical outputs for the same seed — the protocols cannot
//! tell which transport they run on.

use proptest::prelude::*;
use topk_core::monitor::{run_on_rows, run_with_membership, Monitor, RunReport};
use topk_core::{CombinedMonitor, ExactTopKMonitor, TopKMonitor};
use topk_gen::{
    ChurnFlatlineWorkload, CorrelatedBurstWorkload, MembershipWorkload, NoiseOscillationWorkload,
    RandomWalkWorkload, RegimeSwitchWorkload, Workload,
};
use topk_model::fault::FaultSpec;
use topk_model::Epsilon;
use topk_net::{build_engine, EngineKind, FaultyTransport, IndexedEngine, Network};

fn compare(mut make_monitor: impl FnMut() -> Box<dyn Monitor>, rows: &[Vec<u64>], eps: Epsilon) {
    let n = rows[0].len();
    let seed = 4242;

    // One run per battery engine, all built through the canonical factory —
    // the zero-fault `FaultyTransport` wrapper (`EngineKind::Fault`) rides
    // along and must be invisible: same report, output and filters.
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let mut monitor = make_monitor();
        let mut net = build_engine(kind, n, seed, None);
        let report = run_on_rows(monitor.as_mut(), net.as_mut(), rows.iter().cloned(), eps);
        results.push((kind, report, monitor, net.peek_filters()));
    }

    let (_, det, det_monitor, det_filters) = &results[0];
    for (kind, report, monitor, filters) in &results[1..] {
        assert_eq!(
            det.messages(),
            report.messages(),
            "{}: message counts differ between deterministic and {kind} engines",
            det_monitor.name()
        );
        assert_eq!(
            det,
            report,
            "{}: run reports differ between deterministic and {kind} engines",
            det_monitor.name()
        );
        assert_eq!(det.stats.rounds, report.stats.rounds, "{kind}");
        assert_eq!(det.invalid_steps, report.invalid_steps, "{kind}");
        assert_eq!(det_monitor.output(), monitor.output(), "{kind}");
        // The filters visible at the end must agree as well.
        assert_eq!(det_filters, filters, "{kind}");
    }
}

/// Runs one monitor over `rows` on `net` while the population churns
/// according to `schedule`, returning the report, the final output and the
/// final filters.
fn run_churned(
    mut monitor: Box<dyn Monitor>,
    net: &mut dyn Network,
    rows: &[Vec<u64>],
    schedule: &MembershipWorkload,
    eps: Epsilon,
) -> (RunReport, Vec<topk_model::NodeId>, Vec<topk_model::Filter>) {
    let mut emitted = 0usize;
    let report = run_with_membership(
        monitor.as_mut(),
        net,
        eps,
        |_| {
            let row = rows.get(emitted).cloned();
            emitted += 1;
            row
        },
        schedule.driver(),
    );
    (report, monitor.output(), net.peek_filters())
}

/// The membership analogue of [`compare`]: the same join/leave schedule must
/// produce bit-identical run reports, outputs and filters on all six
/// transport configurations — joiner reseeding, recovery replay charging and
/// leave re-resolution included.
fn compare_with_membership(
    mut make_monitor: impl FnMut() -> Box<dyn Monitor>,
    rows: &[Vec<u64>],
    schedule: &MembershipWorkload,
    eps: Epsilon,
) {
    let n = rows[0].len();
    let seed = 4242;

    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let mut net = build_engine(kind, n, seed, None);
        results.push((
            kind,
            run_churned(make_monitor(), net.as_mut(), rows, schedule, eps),
        ));
    }
    let (_, det) = &results[0];
    for (kind, run) in &results[1..] {
        assert_eq!(
            det, run,
            "churned runs differ between deterministic and {kind} engines"
        );
    }
}

#[test]
fn engines_agree_for_exact_monitor() {
    let rows: Vec<Vec<u64>> = RandomWalkWorkload::new(12, 10_000, 300, 0.7, 9)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(
        || Box::new(ExactTopKMonitor::new(3)),
        &rows,
        Epsilon::new(1, 1000).unwrap(),
    );
}

#[test]
fn engines_agree_for_topk_protocol() {
    let eps = Epsilon::new(1, 4).unwrap();
    let rows: Vec<Vec<u64>> = RandomWalkWorkload::new(12, 1 << 20, 5_000, 0.8, 11)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(TopKMonitor::new(3, eps)), &rows, eps);
}

#[test]
fn engines_agree_for_combined_monitor_on_dense_input() {
    let eps = Epsilon::TENTH;
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(16, 2, 8, 100_000, eps, 13)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(CombinedMonitor::new(4, eps)), &rows, eps);
}

#[test]
fn engines_agree_on_regime_switch_traces() {
    // One full quiet → dense → adversarial cycle: the engines must stay
    // bit-identical across regime boundaries (where filter churn peaks).
    let eps = Epsilon::TENTH;
    let rows: Vec<Vec<u64>> = RegimeSwitchWorkload::new(14, 2, 6, 1 << 17, eps, 12, 23)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(CombinedMonitor::new(3, eps)), &rows, eps);
}

#[test]
fn engines_agree_on_correlated_burst_traces() {
    let eps = Epsilon::TENTH;
    let rows: Vec<Vec<u64>> = CorrelatedBurstWorkload::new(14, 20_000, 8, 4, 0.15, 29)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(TopKMonitor::new(3, eps)), &rows, eps);
}

#[test]
fn engines_agree_on_churn_traces() {
    let eps = Epsilon::TENTH;
    let rows: Vec<Vec<u64>> = ChurnFlatlineWorkload::new(14, 2, 1 << 16, eps, 0.15, 31)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    compare(|| Box::new(CombinedMonitor::new(4, eps)), &rows, eps);
}

#[test]
fn engines_agree_under_membership_churn() {
    let eps = Epsilon::TENTH;
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(12, 2, 6, 1 << 16, eps, 17)
        .generate(40)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let schedule = MembershipWorkload::churn(12, 40, 0xC0DE, 80, 4, 6);
    assert!(schedule.total_events() > 0, "the plan must churn");
    compare_with_membership(
        || Box::new(CombinedMonitor::new(3, eps)),
        &rows,
        &schedule,
        eps,
    );
}

#[test]
fn transport_crashes_compose_with_membership_churn() {
    // A node can be down at the transport level (crash/rejoin fault) while
    // the population also churns at the model level (join/leave) — including
    // both hitting the same node. The composition must stay deterministic
    // and the recovery machinery must keep the output valid-or-bounded.
    let eps = Epsilon::TENTH;
    let n = 12;
    let rows: Vec<Vec<u64>> = RandomWalkWorkload::new(n, 1 << 18, 2_000, 0.6, 37)
        .generate(50)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let schedule = MembershipWorkload::churn(n, 50, 0xD00D, 60, 5, 6);
    assert!(schedule.total_events() > 0, "the plan must churn");
    let fault = FaultSpec::crash_rejoin(0xFA11, 40, 4, 4);
    let run = || {
        let mut net = FaultyTransport::new(IndexedEngine::new(n, 4242), fault);
        let out = run_churned(
            Box::new(CombinedMonitor::new(3, eps)),
            &mut net,
            &rows,
            &schedule,
            eps,
        );
        let stats = net.fault_stats();
        (out, stats.crashes, stats.rejoins)
    };
    let (a, crashes, rejoins) = run();
    let (b, _, _) = run();
    assert_eq!(a, b, "crash × churn composition must be bit-deterministic");
    assert!(
        crashes > 0,
        "40‰ over 12 nodes × 50 steps must crash someone"
    );
    assert!(rejoins > 0, "4-step outages must rejoin within the run");
    assert_eq!(a.0.steps, 50);
    // Transport crashes may break validity transiently; true membership never
    // does (the validator sees the masked row). The composition must stay
    // within the same transient bound the fault battery tolerates.
    assert!(
        a.0.invalid_steps <= 13,
        "crash × churn broke {} of 50 steps",
        a.0.invalid_steps
    );
}

proptest! {
    // The six-way comparison spawns a worker pool, node threads and TCP
    // shards per case, so the case count stays deliberately small — the
    // parameter space (pack size, pivot, segment length, seed) is where the
    // value is, not in volume.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any regime-switching trace is a valid input to all six configurations: the
    /// run reports, outputs and final filters agree bit-for-bit whatever the
    /// segment geometry — including segments shorter than a protocol phase
    /// and packs as small as a single node.
    #[test]
    fn engines_agree_on_any_regime_switch_trace(
        seed in 0u64..1000,
        n in 8usize..16,
        sigma in 1usize..6,
        segment_len in 1u64..9,
    ) {
        let eps = Epsilon::TENTH;
        let steps = (3 * segment_len + 4) as usize; // cross every boundary
        let rows: Vec<Vec<u64>> =
            RegimeSwitchWorkload::new(n, 2, sigma, 1 << 16, eps, segment_len, seed)
                .generate(steps)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect();
        prop_assert!(rows.iter().all(|r| r.len() == n && r.iter().all(|&v| v >= 1)));
        compare(|| Box::new(CombinedMonitor::new(2, eps)), &rows, eps);
    }

    /// Any seeded churn plan is a valid membership schedule for all six
    /// configurations: joins reseed the slot's RNG from `(master seed, id,
    /// generation)` on every engine, the rejoin replay is charged under the
    /// recovery label everywhere, and a leaver's vacated rank re-resolves
    /// through the ordinary violation machinery — so the run reports, outputs
    /// and filters agree bit-for-bit whatever the churn geometry.
    #[test]
    fn engines_agree_on_any_membership_schedule(
        seed in 0u64..1000,
        n in 8usize..14,
        leave_permille in 20u32..160,
        downtime in 1u64..7,
    ) {
        let eps = Epsilon::TENTH;
        let steps = 24usize;
        let rows: Vec<Vec<u64>> =
            NoiseOscillationWorkload::new(n, 2, (n / 2).min(5), 1 << 16, eps, seed ^ 0x51)
                .generate(steps)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect();
        let min_live = n / 2;
        let schedule =
            MembershipWorkload::churn(n, steps as u64, seed, leave_permille, downtime, min_live);
        compare_with_membership(|| Box::new(CombinedMonitor::new(2, eps)), &rows, &schedule, eps);
    }
}
