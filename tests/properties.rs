//! Property-based integration tests: random traces, every monitor, always a
//! valid output; plus determinism of the whole pipeline under a fixed seed.

use proptest::prelude::*;
use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn run_monitor(
    mut monitor: Box<dyn Monitor>,
    rows: &[Vec<u64>],
    eps: Epsilon,
    seed: u64,
) -> (u64, u64) {
    let n = rows[0].len();
    let mut net = DeterministicEngine::new(n, seed);
    let report = run_on_rows(monitor.as_mut(), &mut net, rows.iter().cloned(), eps);
    (report.invalid_steps, report.messages())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every monitor maintains a valid ε-top-k output on arbitrary small traces.
    #[test]
    fn monitors_are_always_valid_on_random_traces(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000, 6),
            3..20,
        ),
        k_seed in 1usize..6,
        inv_eps in 2u32..16,
        seed in 0u64..1000,
    ) {
        let k = 1 + (k_seed % 5).min(4); // 1..=5 < n = 6
        let eps = Epsilon::new(1, inv_eps).unwrap();
        let monitors: Vec<Box<dyn Monitor>> = vec![
            Box::new(ExactTopKMonitor::new(k)),
            Box::new(TopKMonitor::new(k, eps)),
            Box::new(DenseMonitor::new(k, eps)),
            Box::new(CombinedMonitor::new(k, eps)),
            Box::new(HalfEpsMonitor::new(k, eps)),
        ];
        for monitor in monitors {
            let name = monitor.name();
            let (invalid, _) = run_monitor(monitor, &rows, eps, seed);
            prop_assert_eq!(invalid, 0, "{} produced invalid outputs", name);
        }
    }

    /// The exact monitor tracks the exact top-k on arbitrary traces.
    #[test]
    fn exact_monitor_is_exact_on_random_traces(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..1_000, 5),
            2..15,
        ),
        seed in 0u64..1000,
    ) {
        let mut net = DeterministicEngine::new(5, seed);
        let mut monitor = ExactTopKMonitor::new(2);
        let report = run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), Epsilon::new(1, 1_000_000).unwrap());
        prop_assert_eq!(report.inexact_steps, 0);
    }

    /// The entire pipeline is deterministic under a fixed seed.
    #[test]
    fn runs_are_deterministic(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..100_000, 8),
            2..12,
        ),
        seed in 0u64..100,
    ) {
        let eps = Epsilon::TENTH;
        let a = run_monitor(Box::new(CombinedMonitor::new(3, eps)), &rows, eps, seed);
        let b = run_monitor(Box::new(CombinedMonitor::new(3, eps)), &rows, eps, seed);
        prop_assert_eq!(a, b);
    }
}
