//! The golden-trace regression corpus.
//!
//! `tests/traces/` holds one small recorded run per workload family, plus one
//! fault-injected and one membership-churn run. Two properties are enforced
//! on every CI run:
//!
//! 1. **Currency** — re-recording each corpus cell today produces the exact
//!    bytes committed under `tests/traces/`. Any change to a protocol, an
//!    engine, a generator or the trace codec that alters observable behaviour
//!    flips at least one golden byte and fails here, pointing at the first
//!    divergent trace. After an *intended* behaviour change, regenerate with
//!    `GOLDEN_TRACES_REGEN=1 cargo test --test golden_traces` and commit the
//!    diff — the diff itself is the review artifact.
//!
//! 2. **Replay agreement** — each committed trace, re-driven through all six
//!    engines (`topk_bench::replay::EngineKind::ALL`), reproduces every
//!    recorded reply, validity verdict, cumulative message count and the
//!    final `CommStats`/filter/value state bit for bit. The same corpus is
//!    re-driven a second time through a `QuerySet` of one full-population
//!    query (`replay_trace_queryset`), pinning the multi-query driver's solo
//!    fast path to the legacy monitor runs byte for byte.
//!
//! The corpus cells are deliberately tiny (n = 24, 12 steps) so the whole
//! battery stays a sub-second affair per engine; the point is behavioural
//! pinning, not load.

use std::path::PathBuf;
use topk_repro::bench::campaign::{GeneratorSpec, MembershipPlanSpec, ProtocolKind, ScenarioSpec};
use topk_repro::bench::replay::{
    load_trace, record_run, replay_trace, replay_trace_queryset, EngineKind,
};
use topk_repro::bench::scenario::ScenarioFile;
use topk_repro::model::prelude::*;
use topk_repro::wire::write_record;

fn traces_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/traces")
}

fn cell(
    name: &str,
    generator: GeneratorSpec,
    protocol: ProtocolKind,
) -> (ScenarioFile, ProtocolKind) {
    (
        ScenarioFile {
            name: name.to_string(),
            spec: ScenarioSpec {
                generator,
                n: 24,
                k: 4,
                eps: Epsilon::TENTH,
                steps: 12,
                seed: 0x601D,
            },
            fault: None,
            membership: None,
            queries: None,
            floors: None,
        },
        protocol,
    )
}

/// The corpus: every generator family once (each under a protocol that
/// exercises a different monitor), plus one fault and one membership run.
fn corpus() -> Vec<(ScenarioFile, ProtocolKind)> {
    let mut cells = vec![
        cell(
            "zipf",
            GeneratorSpec::Zipf { peak_load: 10_000 },
            ProtocolKind::ExactTopK,
        ),
        cell(
            "noise",
            GeneratorSpec::Noise {
                sigma: 8,
                z: 1 << 16,
            },
            ProtocolKind::Dense,
        ),
        cell(
            "random-walk",
            GeneratorSpec::RandomWalk {
                delta: 1 << 16,
                max_step: 1 << 8,
                move_permille: 300,
            },
            ProtocolKind::TopKProtocol,
        ),
        cell(
            "gap",
            GeneratorSpec::Gap { high_base: 1 << 16 },
            ProtocolKind::TopKProtocol,
        ),
        cell(
            "adversarial",
            GeneratorSpec::Adversarial {
                sigma: 12,
                y0: 1 << 16,
            },
            ProtocolKind::TopKProtocol,
        ),
        cell(
            "regime-switch",
            GeneratorSpec::RegimeSwitch {
                sigma: 8,
                z: 1 << 16,
                segment_len: 4,
            },
            ProtocolKind::Combined,
        ),
        cell(
            "correlated-burst",
            GeneratorSpec::CorrelatedBurst {
                base_load: 1000,
                factor: 8,
                group: 6,
                burst_permille: 100,
            },
            ProtocolKind::HalfEps,
        ),
        cell(
            "churn",
            GeneratorSpec::Churn {
                z: 1 << 16,
                churn_permille: 80,
            },
            ProtocolKind::TopKProtocol,
        ),
        cell(
            "zipf-web",
            GeneratorSpec::ZipfWeb {
                peak_load: 10_000,
                period: 6,
            },
            ProtocolKind::TopKProtocol,
        ),
        cell(
            "noise-field",
            GeneratorSpec::NoiseField {
                high: 4,
                sigma: 8,
                z: 1 << 16,
            },
            ProtocolKind::Dense,
        ),
    ];
    let (mut fault_cell, protocol) = cell(
        "fault-crash",
        GeneratorSpec::Noise {
            sigma: 8,
            z: 1 << 16,
        },
        ProtocolKind::TopKProtocol,
    );
    fault_cell.fault = Some(FaultSpec::crash_rejoin(0xFA57, 40, 3, 6));
    cells.push((fault_cell, protocol));
    let (mut member_cell, protocol) = cell(
        "member-churn",
        GeneratorSpec::Noise {
            sigma: 8,
            z: 1 << 16,
        },
        ProtocolKind::TopKProtocol,
    );
    member_cell.membership = Some(MembershipPlanSpec {
        seed: 0xC0FE,
        leave_permille: 150,
        downtime: 2,
        min_live: 12,
    });
    cells.push((member_cell, protocol));
    cells
}

fn record_bytes(file: &ScenarioFile, protocol: ProtocolKind) -> Vec<u8> {
    let (_, records) = record_run(file, protocol);
    let mut bytes = Vec::new();
    for record in &records {
        write_record(&mut bytes, record).expect("encoding a fresh recording cannot fail");
    }
    bytes
}

#[test]
fn golden_traces_are_current() {
    let dir = traces_dir();
    let regen = std::env::var_os("GOLDEN_TRACES_REGEN").is_some();
    if regen {
        std::fs::create_dir_all(&dir).expect("create tests/traces");
    }
    let mut stale = Vec::new();
    for (file, protocol) in corpus() {
        let path = dir.join(format!("{}.trace", file.name));
        let fresh = record_bytes(&file, protocol);
        if regen {
            std::fs::write(&path, &fresh).expect("write golden trace");
            continue;
        }
        match std::fs::read(&path) {
            Ok(committed) if committed == fresh => {}
            Ok(_) => stale.push(format!("{}: bytes differ", path.display())),
            Err(e) => stale.push(format!("{}: {e}", path.display())),
        }
    }
    assert!(
        stale.is_empty(),
        "golden traces are stale — if the behaviour change is intended, regenerate with \
         GOLDEN_TRACES_REGEN=1 cargo test --test golden_traces\n{}",
        stale.join("\n")
    );
}

#[test]
fn golden_traces_replay_bit_identically_on_every_engine() {
    let dir = traces_dir();
    for (file, _) in corpus() {
        let path = dir.join(format!("{}.trace", file.name));
        let records = load_trace(&path)
            .unwrap_or_else(|e| panic!("cannot load golden trace {}: {e}", path.display()));
        for kind in EngineKind::ALL {
            let outcome = replay_trace(&records, kind).unwrap_or_else(|e| {
                panic!("{}: replay through {} failed: {e}", file.name, kind.name())
            });
            assert!(
                outcome.is_identical(),
                "{} diverged on the {} engine:\n{}",
                file.name,
                kind.name(),
                outcome.mismatches.join("\n")
            );
        }
    }
}

#[test]
fn golden_traces_replay_identically_through_a_query_set_of_one() {
    let dir = traces_dir();
    for (file, _) in corpus() {
        let path = dir.join(format!("{}.trace", file.name));
        let records = load_trace(&path)
            .unwrap_or_else(|e| panic!("cannot load golden trace {}: {e}", path.display()));
        for kind in EngineKind::ALL {
            let outcome = replay_trace_queryset(&records, kind).unwrap_or_else(|e| {
                panic!(
                    "{}: query-set replay through {} failed: {e}",
                    file.name,
                    kind.name()
                )
            });
            assert!(
                outcome.is_identical(),
                "{} diverged from the legacy run on the {} engine under a solo query set:\n{}",
                file.name,
                kind.name(),
                outcome.mismatches.join("\n")
            );
        }
    }
}

#[test]
fn the_corpus_covers_every_family_and_both_companions() {
    let corpus = corpus();
    let families: std::collections::BTreeSet<&str> = corpus
        .iter()
        .map(|(f, _)| f.spec.generator.family())
        .collect();
    assert_eq!(families.len(), 10, "one trace per generator family");
    assert_eq!(corpus.iter().filter(|(f, _)| f.fault.is_some()).count(), 1);
    assert_eq!(
        corpus
            .iter()
            .filter(|(f, _)| f.membership.is_some())
            .count(),
        1
    );
}
