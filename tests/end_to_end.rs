//! End-to-end integration tests: every monitor, on every workload regime, must
//! produce a valid ε-top-k output at every time step while communicating far
//! less than the naive poll-everything strategy — and the TCP coordinator
//! must survive a lossy loopback transport by degrading dropped replies to
//! recovery polls instead of hanging.

use std::time::Duration;
use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor};
use topk_gen::{
    GapWorkload, NoiseOscillationWorkload, RandomWalkWorkload, Workload, ZipfLoadWorkload,
};
use topk_model::cost::ProtocolLabel;
use topk_model::fault::FaultSpec;
use topk_model::Epsilon;
use topk_net::{DeterministicEngine, Network, RemoteEngine};

const N: usize = 24;
const K: usize = 4;
const STEPS: usize = 80;

fn workloads(eps: Epsilon) -> Vec<(&'static str, Vec<Vec<u64>>)> {
    vec![
        (
            "gap",
            GapWorkload::standard(N, K, 1 << 20, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "noise",
            NoiseOscillationWorkload::new(N, 2, 10, 1 << 18, eps, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "random-walk",
            RandomWalkWorkload::new(N, 1 << 16, 500, 0.7, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "zipf",
            ZipfLoadWorkload::web_cluster(N, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
    ]
}

fn monitors(eps: Epsilon) -> Vec<Box<dyn Monitor>> {
    vec![
        Box::new(ExactTopKMonitor::new(K)),
        Box::new(TopKMonitor::new(K, eps)),
        Box::new(DenseMonitor::new(K, eps)),
        Box::new(CombinedMonitor::new(K, eps)),
        Box::new(HalfEpsMonitor::new(K, eps)),
    ]
}

#[test]
fn every_monitor_is_valid_on_every_regime() {
    let eps = Epsilon::TENTH;
    for (regime, rows) in workloads(eps) {
        for mut monitor in monitors(eps) {
            let mut net = DeterministicEngine::new(N, 77);
            let report = run_on_rows(monitor.as_mut(), &mut net, rows.iter().cloned(), eps);
            assert_eq!(
                report.invalid_steps,
                0,
                "{} produced {} invalid steps on the {regime} workload",
                monitor.name(),
                report.invalid_steps
            );
            assert_eq!(report.steps, STEPS as u64);
            assert_eq!(monitor.output().len(), K);
        }
    }
}

#[test]
fn exact_monitors_track_the_exact_top_k() {
    let eps = Epsilon::TENTH;
    for (regime, rows) in workloads(eps) {
        let mut monitor = ExactTopKMonitor::new(K);
        let mut net = DeterministicEngine::new(N, 3);
        let report = run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps);
        assert_eq!(
            report.inexact_steps, 0,
            "exact monitor deviated from the exact top-k on the {regime} workload"
        );
    }
}

#[test]
fn all_monitors_beat_naive_polling() {
    let eps = Epsilon::TENTH;
    let naive = (N * STEPS * 2) as u64;
    for (regime, rows) in workloads(eps) {
        for mut monitor in monitors(eps) {
            let mut net = DeterministicEngine::new(N, 13);
            let report = run_on_rows(monitor.as_mut(), &mut net, rows.iter().cloned(), eps);
            // The dense oscillation regime is the paper's worst case for the
            // *exact* problem (it is the motivation for the ε-approximate and
            // dense protocols of Sects. 4–5): σ nodes keep crossing the k-th
            // boundary, so the exact monitor — like OPT for ε = 0 — pays
            // essentially every step and Corollary 3.3 promises nothing
            // relative to naive polling. Hold it near naive there; everywhere
            // else every monitor must genuinely beat polling.
            let bound = if monitor.name() == "exact-top-k" && regime == "noise" {
                naive + naive / 4
            } else {
                naive
            };
            assert!(
                report.messages() < bound,
                "{} used {} messages on {regime}, bound is {bound} (naive polling: {naive})",
                monitor.name(),
                report.messages()
            );
        }
    }
}

#[test]
fn remote_coordinator_degrades_dropped_replies_to_polls() {
    // A lossy loopback transport drops ~30% of reply frames; the coordinator
    // must time out, poll, and converge to exactly the clean run's monitor
    // output and node state — never hang — with every extra message the
    // recovery cost, attributed to `ProtocolLabel::Recovery` on the meter.
    let eps = Epsilon::TENTH;
    let n = 16;
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(n, 2, 8, 1 << 18, eps, 41)
        .generate(24)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();

    let mut clean_mon = TopKMonitor::new(4, eps);
    let mut clean_net = RemoteEngine::with_shards(n, 77, 3);
    let clean = run_on_rows(&mut clean_mon, &mut clean_net, rows.iter().cloned(), eps);

    let spec = FaultSpec::drop_upstream(0xD0D0, 300);
    let mut lossy_mon = TopKMonitor::new(4, eps);
    let mut lossy_net = RemoteEngine::with_fault_spec(n, 77, 3, &spec, Duration::from_millis(20));
    let lossy = run_on_rows(&mut lossy_mon, &mut lossy_net, rows.iter().cloned(), eps);

    assert!(
        lossy_net.polls_sent() > 0,
        "a 300‰ drop rate over {} steps must cost at least one poll",
        rows.len()
    );
    assert_eq!(clean_mon.output(), lossy_mon.output());
    assert_eq!(clean_net.peek_filters(), lossy_net.peek_filters());
    assert_eq!(clean_net.peek_values(), lossy_net.peek_values());
    assert_eq!(clean.invalid_steps, lossy.invalid_steps);
    // The polls are the entire cost of the loss: stripped of the recovery
    // label, the lossy accounting is bit-identical to the clean run's.
    let mut stats = lossy.stats.clone();
    assert_eq!(
        stats.messages_of_label(ProtocolLabel::Recovery),
        lossy_net.polls_sent(),
        "every poll (and nothing else) is charged to the recovery label"
    );
    stats
        .by_label_kind
        .retain(|(label, _), _| *label != ProtocolLabel::Recovery);
    assert_eq!(stats, clean.stats);
}

#[test]
fn larger_epsilon_never_hurts_much_on_dense_inputs() {
    // On a dense oscillation, a larger error budget must reduce (or at least not
    // blow up) the communication of the combined algorithm.
    let tight = Epsilon::new(1, 100).unwrap();
    let loose = Epsilon::new(1, 4).unwrap();
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(N, 2, 10, 1 << 18, loose, 9)
        .generate(STEPS)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let run = |eps: Epsilon| {
        let mut net = DeterministicEngine::new(N, 21);
        let mut monitor = CombinedMonitor::new(K, eps);
        run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
    };
    let tight_report = run(tight);
    let loose_report = run(loose);
    assert_eq!(loose_report.invalid_steps, 0);
    assert!(
        loose_report.messages() <= tight_report.messages() * 2,
        "loose ε ({}) should not cost much more than tight ε ({})",
        loose_report.messages(),
        tight_report.messages()
    );
}
