//! End-to-end integration tests: every monitor, on every workload regime, must
//! produce a valid ε-top-k output at every time step while communicating far
//! less than the naive poll-everything strategy — and the TCP coordinator
//! must survive a lossy loopback transport by degrading dropped replies to
//! recovery polls instead of hanging.

use std::time::Duration;
use topk_core::monitor::{run_on_rows, run_with_membership, Monitor};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor};
use topk_gen::{
    GapWorkload, MembershipWorkload, NoiseOscillationWorkload, RandomWalkWorkload, Workload,
    ZipfLoadWorkload,
};
use topk_model::cost::ProtocolLabel;
use topk_model::fault::FaultSpec;
use topk_model::Epsilon;
use topk_net::{DeterministicEngine, Network, RemoteEngine};

const N: usize = 24;
const K: usize = 4;
const STEPS: usize = 80;

fn workloads(eps: Epsilon) -> Vec<(&'static str, Vec<Vec<u64>>)> {
    vec![
        (
            "gap",
            GapWorkload::standard(N, K, 1 << 20, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "noise",
            NoiseOscillationWorkload::new(N, 2, 10, 1 << 18, eps, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "random-walk",
            RandomWalkWorkload::new(N, 1 << 16, 500, 0.7, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "zipf",
            ZipfLoadWorkload::web_cluster(N, 5)
                .generate(STEPS)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
    ]
}

fn monitors(eps: Epsilon) -> Vec<Box<dyn Monitor>> {
    vec![
        Box::new(ExactTopKMonitor::new(K)),
        Box::new(TopKMonitor::new(K, eps)),
        Box::new(DenseMonitor::new(K, eps)),
        Box::new(CombinedMonitor::new(K, eps)),
        Box::new(HalfEpsMonitor::new(K, eps)),
    ]
}

#[test]
fn every_monitor_is_valid_on_every_regime() {
    let eps = Epsilon::TENTH;
    for (regime, rows) in workloads(eps) {
        for mut monitor in monitors(eps) {
            let mut net = DeterministicEngine::new(N, 77);
            let report = run_on_rows(monitor.as_mut(), &mut net, rows.iter().cloned(), eps);
            assert_eq!(
                report.invalid_steps,
                0,
                "{} produced {} invalid steps on the {regime} workload",
                monitor.name(),
                report.invalid_steps
            );
            assert_eq!(report.steps, STEPS as u64);
            assert_eq!(monitor.output().len(), K);
        }
    }
}

#[test]
fn exact_monitors_track_the_exact_top_k() {
    let eps = Epsilon::TENTH;
    for (regime, rows) in workloads(eps) {
        let mut monitor = ExactTopKMonitor::new(K);
        let mut net = DeterministicEngine::new(N, 3);
        let report = run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps);
        assert_eq!(
            report.inexact_steps, 0,
            "exact monitor deviated from the exact top-k on the {regime} workload"
        );
    }
}

#[test]
fn all_monitors_beat_naive_polling() {
    let eps = Epsilon::TENTH;
    let naive = (N * STEPS * 2) as u64;
    for (regime, rows) in workloads(eps) {
        for mut monitor in monitors(eps) {
            let mut net = DeterministicEngine::new(N, 13);
            let report = run_on_rows(monitor.as_mut(), &mut net, rows.iter().cloned(), eps);
            // The dense oscillation regime is the paper's worst case for the
            // *exact* problem (it is the motivation for the ε-approximate and
            // dense protocols of Sects. 4–5): σ nodes keep crossing the k-th
            // boundary, so the exact monitor — like OPT for ε = 0 — pays
            // essentially every step and Corollary 3.3 promises nothing
            // relative to naive polling. Hold it near naive there; everywhere
            // else every monitor must genuinely beat polling.
            let bound = if monitor.name() == "exact-top-k" && regime == "noise" {
                naive + naive / 4
            } else {
                naive
            };
            assert!(
                report.messages() < bound,
                "{} used {} messages on {regime}, bound is {bound} (naive polling: {naive})",
                monitor.name(),
                report.messages()
            );
        }
    }
}

#[test]
fn remote_coordinator_degrades_dropped_replies_to_polls() {
    // A lossy loopback transport drops ~30% of reply frames; the coordinator
    // must time out, poll, and converge to exactly the clean run's monitor
    // output and node state — never hang — with every extra message the
    // recovery cost, attributed to `ProtocolLabel::Recovery` on the meter.
    let eps = Epsilon::TENTH;
    let n = 16;
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(n, 2, 8, 1 << 18, eps, 41)
        .generate(24)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();

    let mut clean_mon = TopKMonitor::new(4, eps);
    let mut clean_net = RemoteEngine::with_shards(n, 77, 3);
    let clean = run_on_rows(&mut clean_mon, &mut clean_net, rows.iter().cloned(), eps);

    let spec = FaultSpec::drop_upstream(0xD0D0, 300);
    let mut lossy_mon = TopKMonitor::new(4, eps);
    let mut lossy_net = RemoteEngine::with_fault_spec(n, 77, 3, &spec, Duration::from_millis(20));
    let lossy = run_on_rows(&mut lossy_mon, &mut lossy_net, rows.iter().cloned(), eps);

    assert!(
        lossy_net.polls_sent() > 0,
        "a 300‰ drop rate over {} steps must cost at least one poll",
        rows.len()
    );
    assert_eq!(clean_mon.output(), lossy_mon.output());
    assert_eq!(clean_net.peek_filters(), lossy_net.peek_filters());
    assert_eq!(clean_net.peek_values(), lossy_net.peek_values());
    assert_eq!(clean.invalid_steps, lossy.invalid_steps);
    // The polls are the entire cost of the loss: stripped of the recovery
    // label, the lossy accounting is bit-identical to the clean run's.
    let mut stats = lossy.stats.clone();
    assert_eq!(
        stats.messages_of_label(ProtocolLabel::Recovery),
        lossy_net.polls_sent(),
        "every poll (and nothing else) is charged to the recovery label"
    );
    stats
        .by_label_kind
        .retain(|(label, _), _| *label != ProtocolLabel::Recovery);
    assert_eq!(stats, clean.stats);
}

#[test]
fn remote_membership_churn_survives_a_lossy_transport() {
    // The acceptance bar for dynamic membership: a loopback TCP run with
    // join/leave churn AND a 20% upstream drop rate must converge to exactly
    // the in-process engine's monitor output, node state and filters on the
    // same schedule — and the accounting must be identical once the recovery
    // label (join replays on both sides, drop-recovery polls on the lossy
    // side only) is stripped.
    let eps = Epsilon::TENTH;
    let n = 16;
    let steps = 24;
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(n, 2, 8, 1 << 18, eps, 43)
        .generate(steps)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let schedule = MembershipWorkload::churn(n, steps as u64, 0xC1A0, 90, 4, 8);
    assert!(schedule.total_events() > 0, "the plan must churn");

    let run = |net: &mut dyn Network| {
        let mut monitor = CombinedMonitor::new(4, eps);
        let mut emitted = 0usize;
        let report = run_with_membership(
            &mut monitor,
            net,
            eps,
            |_| {
                let row = rows.get(emitted).cloned();
                emitted += 1;
                row
            },
            schedule.driver(),
        );
        (report, monitor.output())
    };

    let mut clean_net = DeterministicEngine::new(n, 77);
    let (clean, clean_out) = run(&mut clean_net);

    let spec = FaultSpec::drop_upstream(0xC1A1, 200);
    let mut lossy_net = RemoteEngine::with_fault_spec(n, 77, 3, &spec, Duration::from_millis(20));
    let (lossy, lossy_out) = run(&mut lossy_net);

    assert!(
        lossy_net.polls_sent() > 0,
        "a 200‰ drop rate over {steps} churned steps must cost at least one poll"
    );
    assert_eq!(clean_out, lossy_out);
    assert_eq!(clean_net.peek_filters(), lossy_net.peek_filters());
    assert_eq!(clean_net.peek_values(), lossy_net.peek_values());
    assert_eq!(clean.invalid_steps, lossy.invalid_steps);
    assert_eq!(clean.steps, lossy.steps);
    // Both sides charge the join replays to the recovery label; the lossy
    // side additionally charges its polls there. Stripped of that label the
    // two accountings are bit-identical — churn costs the same over TCP with
    // loss as it does in process without.
    let mut clean_stats = clean.stats.clone();
    let mut lossy_stats = lossy.stats.clone();
    let clean_recovery = clean_stats.messages_of_label(ProtocolLabel::Recovery);
    let lossy_recovery = lossy_stats.messages_of_label(ProtocolLabel::Recovery);
    assert!(clean_recovery > 0, "join replays charge the recovery label");
    assert_eq!(
        lossy_recovery,
        clean_recovery + lossy_net.polls_sent(),
        "lossy recovery = join replays + drop-recovery polls, nothing else"
    );
    clean_stats
        .by_label_kind
        .retain(|(label, _), _| *label != ProtocolLabel::Recovery);
    lossy_stats
        .by_label_kind
        .retain(|(label, _), _| *label != ProtocolLabel::Recovery);
    assert_eq!(lossy_stats, clean_stats);
}

#[test]
fn larger_epsilon_never_hurts_much_on_dense_inputs() {
    // On a dense oscillation, a larger error budget must reduce (or at least not
    // blow up) the communication of the combined algorithm.
    let tight = Epsilon::new(1, 100).unwrap();
    let loose = Epsilon::new(1, 4).unwrap();
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(N, 2, 10, 1 << 18, loose, 9)
        .generate(STEPS)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let run = |eps: Epsilon| {
        let mut net = DeterministicEngine::new(N, 21);
        let mut monitor = CombinedMonitor::new(K, eps);
        run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
    };
    let tight_report = run(tight);
    let loose_report = run(loose);
    assert_eq!(loose_report.invalid_steps, 0);
    assert!(
        loose_report.messages() <= tight_report.messages() * 2,
        "loose ε ({}) should not cost much more than tight ε ({})",
        loose_report.messages(),
        tight_report.messages()
    );
}
