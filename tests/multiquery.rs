//! The multi-query acceptance battery.
//!
//! Three properties pin the `QuerySet` layer to its contract:
//!
//! 1. **Single-query equivalence** — a `QuerySet` of one full-population
//!    query reproduces the legacy single-monitor run bit for bit (same
//!    `CommStats`, same per-node filters and values, same validity counters)
//!    on all six engines under every protocol. The golden-trace corpus
//!    enforces the same property against committed recordings; this battery
//!    enforces it live.
//! 2. **Subset isolation** (proptest) — queries over disjoint node subsets
//!    never receive each other's violation reports: every entry of the
//!    delivery audit trail lands inside the receiving query's subset.
//! 3. **Split-charge partition** (proptest) — the per-query attribution
//!    ledger is an exact partition of the wire total: the per-query units sum
//!    to `SPLIT_SCALE ×` the engine's message count, with no message dropped
//!    or double-charged.

use proptest::prelude::*;
use topk_core::monitor::run_on_rows;
use topk_core::queryset::{run_query_set, QuerySet, QuerySetReport};
use topk_model::prelude::*;
use topk_net::{build_engine, DeterministicEngine, EngineKind};
use topk_repro::bench::campaign::ProtocolKind;

/// A workload with regular lead changes so filters keep moving and
/// violations actually occur.
fn ramp_rows(n: usize, steps: usize) -> Vec<Vec<Value>> {
    (0..steps)
        .map(|t| {
            (0..n)
                .map(|i| 1000 + ((i * 13 + t * 29) % 97) as Value)
                .collect()
        })
        .collect()
}

#[test]
fn a_query_set_of_one_matches_the_legacy_run_on_every_engine() {
    let n = 16;
    let k = 4;
    let eps = Epsilon::TENTH;
    let seed = 0x5EED;
    let rows = ramp_rows(n, 24);
    for kind in EngineKind::ALL {
        for protocol in ProtocolKind::ALL {
            let mut legacy_monitor = protocol.build_monitor(k, eps);
            let mut legacy_net = build_engine(kind, n, seed, None);
            let legacy = run_on_rows(
                legacy_monitor.as_mut(),
                legacy_net.as_mut(),
                rows.iter().cloned(),
                eps,
            );

            let mut set = QuerySet::new(n);
            set.register(
                QuerySpec::new(k, eps, protocol.name()),
                protocol.build_monitor(k, eps),
            );
            assert!(set.is_solo());
            let mut net = build_engine(kind, n, seed, None);
            let report = run_query_set(&mut set, net.as_mut(), rows.iter().cloned());

            let ctx = format!("{} on {}", protocol.name(), kind.name());
            assert_eq!(report.steps, legacy.steps, "{ctx}: steps");
            assert_eq!(report.stats, legacy.stats, "{ctx}: CommStats");
            assert_eq!(report.delta, legacy.delta, "{ctx}: delta");
            assert_eq!(
                report.per_query[0].invalid_steps, legacy.invalid_steps,
                "{ctx}: invalid steps"
            );
            assert_eq!(
                report.per_query[0].inexact_steps, legacy.inexact_steps,
                "{ctx}: inexact steps"
            );
            assert_eq!(
                report.per_query[0].units,
                legacy.stats.total_messages() * SPLIT_SCALE,
                "{ctx}: a solo query is charged the whole wire total"
            );
            assert_eq!(
                net.peek_filters(),
                legacy_net.peek_filters(),
                "{ctx}: final filters"
            );
            assert_eq!(
                net.peek_values(),
                legacy_net.peek_values(),
                "{ctx}: final values"
            );
        }
    }
}

/// Builds a query set from `(k, eps, protocol, subset)` tuples and runs it
/// over `rows` on a fresh deterministic engine.
fn run_specs(
    n: usize,
    seed: u64,
    specs: &[(usize, Epsilon, ProtocolKind, NodeSubset)],
    rows: &[Vec<Value>],
) -> (QuerySet, QuerySetReport) {
    let mut set = QuerySet::new(n);
    for (k, eps, protocol, subset) in specs {
        set.register(
            QuerySpec::new(*k, *eps, protocol.name()).with_subset(subset.clone()),
            protocol.build_monitor(*k, *eps),
        );
    }
    let mut net = DeterministicEngine::new(n, seed);
    let report = run_query_set(&mut set, &mut net, rows.iter().cloned());
    (set, report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two queries over disjoint subsets never cross-receive reports: every
    /// delivery in the audit trail lies inside the receiving query's subset,
    /// and the attribution still partitions the wire total exactly.
    #[test]
    fn disjoint_subset_queries_never_cross_receive(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000, 12),
            4..24,
        ),
        split in 4usize..9,
        k_seed in 1usize..8,
        p_left in 0usize..5,
        p_right in 0usize..5,
        seed in 0u64..1000,
    ) {
        let n = 12;
        let eps = Epsilon::TENTH;
        let left = NodeSubset::range(0, split);
        let right = NodeSubset::range(split, n - split);
        // Strictly below the subset size: the combined protocol's dispatch
        // probes the top-(k+1), so k = |subset| is out of its domain (as in
        // the legacy single-query world, where it needs k < n).
        let k_left = 1 + k_seed % (split - 1).min(3);
        let k_right = 1 + k_seed % (n - split - 1).min(3);
        let specs = [
            (k_left, eps, ProtocolKind::ALL[p_left], left),
            (k_right, eps, ProtocolKind::ALL[p_right], right),
        ];
        let (set, report) = run_specs(n, seed, &specs, &rows);
        for &(q, node) in &report.deliveries {
            prop_assert!(
                set.subset(q).contains(&node),
                "{q} received a report from {node} outside its subset {:?}",
                set.subset(q)
            );
        }
        prop_assert_eq!(report.total_units(), report.messages() * SPLIT_SCALE);
    }

    /// The split-charge ledger is an exact partition of the wire total for
    /// arbitrary overlapping (or nested, or identical) query subsets.
    #[test]
    fn split_charged_units_partition_the_wire_total(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000, 10),
            4..20,
        ),
        sizes in proptest::collection::vec((4usize..11, 0usize..7), 2..4),
        k_seed in 1usize..4,
        p_seed in 0usize..5,
        seed in 0u64..1000,
    ) {
        let n = 10;
        let eps = Epsilon::TENTH;
        let specs: Vec<(usize, Epsilon, ProtocolKind, NodeSubset)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &(size, start))| {
                let start = start.min(n - size);
                let protocol = ProtocolKind::ALL[(p_seed + i) % ProtocolKind::ALL.len()];
                // k strictly below the subset size — see the note in the
                // disjoint-subset test.
                (1 + k_seed % (size - 1).min(4), eps, protocol, NodeSubset::range(start, size))
            })
            .collect();
        let (set, report) = run_specs(n, seed, &specs, &rows);
        prop_assert_eq!(set.len(), report.per_query.len());
        let summed: u64 = report.per_query.iter().map(|r| r.units).sum();
        prop_assert_eq!(summed, report.total_units());
        prop_assert_eq!(
            summed,
            report.messages() * SPLIT_SCALE,
            "per-query units must sum to SPLIT_SCALE x the engine's message total"
        );
        // Deliveries always respect subsets, overlapping or not.
        for &(q, node) in &report.deliveries {
            prop_assert!(set.subset(q).contains(&node));
        }
    }
}
