//! Integration tests asserting the *shape* of the paper's results across crates
//! (online protocols vs offline baselines vs workload generators).

use topk_core::monitor::{run_adaptive, run_on_rows};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, TopKMonitor};
use topk_gen::{
    AdaptiveWorkload, GapWorkload, LowerBoundAdversary, NoiseOscillationWorkload, Trace, Workload,
};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;
use topk_offline::{ApproxOfflineOpt, ExactOfflineOpt};

/// Theorem 5.1 shape: on the adversarial instance the online/offline ratio grows
/// with σ while the offline cost per phase stays k + 1.
#[test]
fn lower_bound_ratio_grows_with_sigma() {
    let eps = Epsilon::new(1, 4).unwrap();
    let (n, k) = (32, 2);
    let ratio_for = |sigma: usize| {
        let mut adversary = LowerBoundAdversary::new(n, k, sigma, 1 << 16, eps);
        let mut monitor = CombinedMonitor::new(k, eps);
        let mut net = DeterministicEngine::new(n, 11);
        let report = run_adaptive(&mut monitor, &mut net, eps, |filters| {
            if adversary.phases_completed() >= 4 {
                None
            } else {
                Some(adversary.next_step_adaptive(filters))
            }
        });
        assert_eq!(report.invalid_steps, 0);
        report.messages() as f64 / adversary.offline_cost_bound() as f64
    };
    let small = ratio_for(8);
    let large = ratio_for(28);
    assert!(
        large > 1.5 * small,
        "ratio should grow with sigma: sigma=8 -> {small:.1}, sigma=28 -> {large:.1}"
    );
}

/// Section 5 shape: the approximate offline adversary is strictly stronger than
/// the exact one on oscillating inputs, and DenseProtocol exploits exactly that
/// regime better than the exact online monitor.
#[test]
fn dense_regime_separates_exact_and_approximate() {
    let eps = Epsilon::TENTH;
    let (n, k) = (24, 6);
    let rows: Vec<Vec<u64>> = NoiseOscillationWorkload::new(n, 2, 12, 1 << 18, eps, 3)
        .generate(120)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let trace = Trace::new(rows.clone()).unwrap();

    let exact_opt = ExactOfflineOpt::new(k).cost(&trace).unwrap();
    let approx_opt = ApproxOfflineOpt::new(k, eps).cost(&trace).unwrap();
    assert!(
        exact_opt.lower_bound > 5 * approx_opt.lower_bound,
        "the approximate adversary should be far cheaper: exact {} vs approx {}",
        exact_opt.lower_bound,
        approx_opt.lower_bound
    );

    let mut net = DeterministicEngine::new(n, 7);
    let mut dense = DenseMonitor::new(k, eps);
    let dense_report = run_on_rows(&mut dense, &mut net, rows.iter().cloned(), eps);
    let mut net = DeterministicEngine::new(n, 7);
    let mut exact = ExactTopKMonitor::new(k);
    let exact_report = run_on_rows(&mut exact, &mut net, rows.iter().cloned(), eps);
    assert!(
        dense_report.messages() < exact_report.messages(),
        "dense ({}) must beat exact ({}) in its own regime",
        dense_report.messages(),
        exact_report.messages()
    );
}

/// Theorem 4.5 vs Corollary 3.3 shape: on inputs with a clear gap and a huge Δ,
/// TopKProtocol needs no more messages than the exact midpoint monitor.
#[test]
fn topk_protocol_is_no_worse_than_exact_for_large_delta() {
    let eps = Epsilon::new(1, 4).unwrap();
    let (n, k) = (20, 2);
    let rows: Vec<Vec<u64>> = GapWorkload::new(n, k, 1 << 36, 1 << 8, 40, 0, 5)
        .generate(120)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let mut net = DeterministicEngine::new(n, 2);
    let mut topk = TopKMonitor::new(k, eps);
    let topk_report = run_on_rows(&mut topk, &mut net, rows.iter().cloned(), eps);
    let mut net = DeterministicEngine::new(n, 2);
    let mut exact = ExactTopKMonitor::new(k);
    let exact_report = run_on_rows(&mut exact, &mut net, rows.iter().cloned(), eps);
    assert_eq!(topk_report.invalid_steps, 0);
    assert_eq!(exact_report.invalid_steps, 0);
    assert!(
        topk_report.messages() <= exact_report.messages(),
        "TopKProtocol ({}) should not exceed the exact monitor ({}) at large delta",
        topk_report.messages(),
        exact_report.messages()
    );
}

/// The offline baselines themselves: a constant trace needs exactly one phase,
/// and the two-filter realisation costs k + 1 messages.
#[test]
fn offline_baseline_sanity_across_crates() {
    let rows: Vec<Vec<u64>> = GapWorkload::new(10, 3, 1 << 12, 8, 0, 0, 1)
        .generate(50)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();
    let trace = Trace::new(rows).unwrap();
    let exact = ExactOfflineOpt::new(3).cost(&trace).unwrap();
    assert_eq!(exact.phases, 1);
    assert_eq!(exact.upper_bound, 4);
    let approx = ApproxOfflineOpt::new(3, Epsilon::HALF)
        .cost(&trace)
        .unwrap();
    assert_eq!(approx.phases, 1);
}
