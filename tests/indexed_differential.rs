//! Differential test: the indexed, sharded and remote engines are
//! bit-identical to the baseline.
//!
//! `IndexedEngine` skips nodes whose predicate does not hold; `ShardedEngine`
//! additionally partitions the population into per-worker shards and merges
//! per-shard replies; `RemoteEngine` moves every interaction through the
//! `topk-wire` binary format over loopback TCP connections; the baseline
//! `DeterministicEngine` visits every node in-process. Because a node only
//! consumes randomness *after* its predicate evaluated to true — and RNG
//! streams are per node, so neither the visiting thread nor the transport can
//! matter — all engines must agree on every reply, every message count (full
//! `CommStats` equality, per label and kind) and every piece of node state,
//! for *any* schedule of operations and *any* shard count.
//!
//! The schedules here are adversarially random: interleaved dense and sparse
//! observations, explicit filters, group unicasts and broadcasts, parameter
//! broadcasts of all three rule families, probes and existence runs with every
//! predicate shape. 256 randomized schedules are checked per in-process
//! battery (64 for the loopback battery, which pays real socket round-trips
//! per operation), plus full monitor runs on random traces.
//!
//! The fault layer is held to the same standard: a `FaultyTransport` wrapping
//! any engine with `FaultSpec::none()` must stay bit-identical to the bare
//! baseline, and a *seeded* fault plan must replay bit-identically — same
//! replies, same `CommStats`, same `FaultStats` — both across runs and
//! across different inner engines.

use proptest::prelude::*;
use topk_core::existence::existence;
use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::{CombinedMonitor, ExactTopKMonitor, TopKMonitor};
use topk_model::fault::{FaultSpec, FaultStats, LatencySpec};
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_net::{
    DeterministicEngine, Dispatch, FaultyTransport, IndexedEngine, Network, RemoteEngine,
    ShardedEngine,
};

const N: usize = 8;

/// One encoded schedule entry: `(kind, node-ish, x, y)` decoded by [`apply`].
type Op = (u8, usize, u64, u64);

/// Applies one decoded operation and returns whatever upstream traffic it
/// produced (so the caller can compare engine outputs op by op).
fn apply(net: &mut dyn Network, op: Op) -> Vec<NodeMessage> {
    let (kind, a, x, y) = op;
    let node = NodeId(a % N);
    match kind % 8 {
        0 => {
            // Dense observation row, derived deterministically from the seeds.
            let row: Vec<Value> = (0..N as u64).map(|i| (x + i * y) % 997).collect();
            net.advance_time(&row);
            Vec::new()
        }
        1 => {
            net.advance_time_sparse(&[(node, x % 997), (NodeId((a + 3) % N), y % 997)]);
            Vec::new()
        }
        2 => {
            let filter = match y % 3 {
                0 => Filter::at_least(x % 997),
                1 => Filter::at_most(x % 997),
                _ => {
                    let (lo, hi) = ((x % 997).min(y % 997), (x % 997).max(y % 997));
                    Filter::bounded(lo, hi).unwrap()
                }
            };
            net.assign_filter(node, filter);
            Vec::new()
        }
        3 => {
            net.assign_group(node, group_from(x));
            Vec::new()
        }
        4 => {
            net.broadcast_group(group_from(x));
            Vec::new()
        }
        5 => {
            net.broadcast_params(params_from(x, y));
            Vec::new()
        }
        6 => vec![NodeMessage::ValueReport {
            node,
            value: net.probe(node),
        }],
        _ => {
            let predicate = match y % 5 {
                0 => ExistencePredicate::PendingViolation,
                1 => ExistencePredicate::GreaterThan(x % 997),
                2 => ExistencePredicate::AtLeast(x % 997),
                3 => ExistencePredicate::LessThan(x % 997),
                _ => ExistencePredicate::RankWindow {
                    above: (x % 2 == 0).then_some((x % 997, node)),
                    below: (y % 3 == 0).then_some((y % 997, NodeId((a + 1) % N))),
                },
            };
            existence(net, predicate).responses
        }
    }
}

fn group_from(x: u64) -> NodeGroup {
    match x % 6 {
        0 => NodeGroup::Upper,
        1 => NodeGroup::Lower,
        2 => NodeGroup::V1,
        3 => NodeGroup::V3,
        4 => NodeGroup::V2_PLAIN,
        _ => NodeGroup::V2 {
            s1: x % 2 == 0,
            s2: x % 3 == 0,
        },
    }
}

fn params_from(x: u64, y: u64) -> FilterParams {
    let (lo, hi) = ((x % 997).min(y % 997), (x % 997).max(y % 997));
    match (x ^ y) % 3 {
        0 => FilterParams::Separator { lo, hi },
        1 => FilterParams::Dense {
            l_r: lo,
            u_r: hi,
            z_lo: lo / 2,
            z_hi: hi.saturating_mul(2),
        },
        _ => FilterParams::SubDense {
            l_r: lo,
            l_rp: lo + (hi - lo) / 3,
            u_rp: hi,
            z_lo: lo / 2,
            z_hi: hi.saturating_mul(2),
        },
    }
}

/// The shard counts the sharded battery runs at, paired with the dispatch
/// placement used for each: the channel path (`Parallel`) is forced for most
/// multi-shard counts even on single-CPU machines, `Inline` and `Auto` cover
/// the other placements, and `num_cpus` ties the battery to whatever the
/// current machine would actually use.
fn sharded_configs() -> Vec<(usize, Dispatch)> {
    let num_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    vec![
        (1, Dispatch::Auto),
        (2, Dispatch::Inline),
        (3, Dispatch::Parallel),
        (7, Dispatch::Parallel),
        (num_cpus, Dispatch::Auto),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Identical replies, identical `CommStats`, identical node state over
    /// random schedules of every transport operation.
    #[test]
    fn indexed_engine_matches_baseline_on_random_schedules(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..N, 0u64..2000, 0u64..2000),
            1..40,
        ),
        seed in 0u64..10_000,
    ) {
        let mut base = DeterministicEngine::new(N, seed);
        let mut indexed = IndexedEngine::new(N, seed);
        for &op in &ops {
            let replies_base = apply(&mut base, op);
            let replies_indexed = apply(&mut indexed, op);
            prop_assert_eq!(replies_base, replies_indexed, "replies diverge on {:?}", op);
        }
        prop_assert_eq!(base.stats(), indexed.stats());
        prop_assert_eq!(base.peek_filters(), indexed.peek_filters());
        prop_assert_eq!(base.peek_values(), indexed.peek_values());
        for i in 0..N {
            prop_assert_eq!(base.peek_group(NodeId(i)), indexed.peek_group(NodeId(i)));
        }
    }

    /// The sharded engine replays the same schedules bit-identically at every
    /// shard count — replies, full `CommStats`, filters, values, groups.
    #[test]
    fn sharded_engine_matches_baseline_on_random_schedules(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..N, 0u64..2000, 0u64..2000),
            1..40,
        ),
        seed in 0u64..10_000,
    ) {
        let mut base = DeterministicEngine::new(N, seed);
        let mut engines: Vec<ShardedEngine> = sharded_configs()
            .into_iter()
            .map(|(workers, dispatch)| ShardedEngine::with_dispatch(N, seed, workers, dispatch))
            .collect();
        for &op in &ops {
            let replies_base = apply(&mut base, op);
            for sharded in &mut engines {
                let replies_sharded = apply(sharded, op);
                prop_assert_eq!(
                    &replies_base,
                    &replies_sharded,
                    "replies diverge on {:?} at {} shards",
                    op,
                    sharded.shard_count()
                );
            }
        }
        for sharded in &engines {
            prop_assert_eq!(base.stats(), sharded.stats(), "stats diverge at {} shards", sharded.shard_count());
            prop_assert_eq!(base.peek_filters(), sharded.peek_filters());
            prop_assert_eq!(base.peek_values(), sharded.peek_values());
            for i in 0..N {
                prop_assert_eq!(base.peek_group(NodeId(i)), sharded.peek_group(NodeId(i)));
            }
        }
    }

    /// Full monitor runs — protocol stack on top of the engines — agree on the
    /// output set, the validity record and the complete message accounting.
    #[test]
    fn monitors_agree_between_baseline_and_indexed(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000, N),
            3..25,
        ),
        k_seed in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let k = k_seed.clamp(1, N - 1);
        let eps = Epsilon::new(1, 8).unwrap();
        for which in 0..3 {
            let make = || -> Box<dyn Monitor> {
                match which {
                    0 => Box::new(ExactTopKMonitor::new(k)),
                    1 => Box::new(TopKMonitor::new(k, eps)),
                    _ => Box::new(CombinedMonitor::new(k, eps)),
                }
            };
            let mut m_base = make();
            let mut base = DeterministicEngine::new(N, seed);
            let r_base = run_on_rows(m_base.as_mut(), &mut base, rows.iter().cloned(), eps);
            let mut m_idx = make();
            let mut indexed = IndexedEngine::new(N, seed);
            let r_idx = run_on_rows(m_idx.as_mut(), &mut indexed, rows.iter().cloned(), eps);
            prop_assert_eq!(&r_base, &r_idx, "run reports diverge for monitor {}", m_base.name());
            prop_assert_eq!(m_base.output(), m_idx.output());
            prop_assert_eq!(base.peek_filters(), indexed.peek_filters());

            let mut m_shard = make();
            let mut sharded = ShardedEngine::with_dispatch(N, seed, 3, Dispatch::Parallel);
            let r_shard = run_on_rows(m_shard.as_mut(), &mut sharded, rows.iter().cloned(), eps);
            prop_assert_eq!(&r_base, &r_shard, "sharded run reports diverge for monitor {}", m_base.name());
            prop_assert_eq!(m_base.output(), m_shard.output());
            prop_assert_eq!(base.peek_filters(), sharded.peek_filters());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loopback differential: `RemoteEngine` replays the same schedules over
    /// real TCP connections through the `topk-wire` binary format — replies,
    /// full `CommStats`, filters, values and groups must be bit-identical to
    /// the baseline at every connection count. 64 schedules (every operation
    /// pays genuine socket round-trips, so this battery is costlier per case
    /// than the in-process ones above).
    #[test]
    fn remote_engine_matches_baseline_on_random_schedules(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..N, 0u64..2000, 0u64..2000),
            1..30,
        ),
        seed in 0u64..10_000,
    ) {
        let mut base = DeterministicEngine::new(N, seed);
        let mut engines: Vec<RemoteEngine> = [1usize, 3]
            .into_iter()
            .map(|shards| RemoteEngine::with_shards(N, seed, shards))
            .collect();
        for &op in &ops {
            let replies_base = apply(&mut base, op);
            for remote in &mut engines {
                let replies_remote = apply(remote, op);
                prop_assert_eq!(
                    &replies_base,
                    &replies_remote,
                    "replies diverge on {:?} at {} connections",
                    op,
                    remote.shard_count()
                );
            }
        }
        for remote in &engines {
            prop_assert_eq!(base.stats(), remote.stats(), "stats diverge at {} connections", remote.shard_count());
            prop_assert_eq!(base.peek_filters(), remote.peek_filters());
            prop_assert_eq!(base.peek_values(), remote.peek_values());
            for i in 0..N {
                prop_assert_eq!(base.peek_group(NodeId(i)), remote.peek_group(NodeId(i)));
            }
        }
    }

    /// The protocol stack end to end over the wire: monitor runs on the
    /// remote engine produce the same reports, outputs and filters as on the
    /// baseline.
    #[test]
    fn monitors_agree_between_baseline_and_remote(
        rows in proptest::collection::vec(
            proptest::collection::vec(1u64..50_000, N),
            3..15,
        ),
        k_seed in 1usize..4,
        seed in 0u64..10_000,
    ) {
        let k = k_seed.clamp(1, N - 1);
        let eps = Epsilon::new(1, 8).unwrap();
        let mut m_base: Box<dyn Monitor> = Box::new(TopKMonitor::new(k, eps));
        let mut base = DeterministicEngine::new(N, seed);
        let r_base = run_on_rows(m_base.as_mut(), &mut base, rows.iter().cloned(), eps);
        let mut m_rem: Box<dyn Monitor> = Box::new(TopKMonitor::new(k, eps));
        let mut remote = RemoteEngine::with_shards(N, seed, 3);
        let r_rem = run_on_rows(m_rem.as_mut(), &mut remote, rows.iter().cloned(), eps);
        prop_assert_eq!(&r_base, &r_rem, "remote run reports diverge");
        prop_assert_eq!(m_base.output(), m_rem.output());
        prop_assert_eq!(base.peek_filters(), remote.peek_filters());
    }
}

/// The fault plan the seeded-replay battery sweeps: one spec per family plus
/// a mixed plan, all with non-trivial probabilities so the fault RNG stream
/// is genuinely consumed.
fn fault_plan(which: usize, fault_seed: u64) -> FaultSpec {
    match which % 4 {
        0 => FaultSpec::latency_rounds(fault_seed, 0, 2),
        1 => FaultSpec::drop_upstream(fault_seed, 300),
        2 => FaultSpec::crash_rejoin(fault_seed, 100, 2, 4),
        _ => {
            let mut spec = FaultSpec::drop_upstream(fault_seed, 200);
            spec.drop_downstream_permille = 150;
            spec.reorder_permille = 400;
            spec.latency = LatencySpec::Uniform { lo: 0, hi: 1 };
            spec
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The zero-fault wrapper is bit-transparent: `FaultyTransport` with
    /// `FaultSpec::none()` around any engine must reproduce the bare
    /// baseline's replies, `CommStats` and node state on every schedule —
    /// the fault layer may not consume a single random draw or charge a
    /// single message of its own.
    #[test]
    fn zero_fault_wrapper_is_bit_identical_to_the_bare_engines(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..N, 0u64..2000, 0u64..2000),
            1..40,
        ),
        seed in 0u64..10_000,
    ) {
        let mut base = DeterministicEngine::new(N, seed);
        let mut wrapped_det =
            FaultyTransport::new(DeterministicEngine::new(N, seed), FaultSpec::none());
        let mut wrapped_idx =
            FaultyTransport::new(IndexedEngine::new(N, seed), FaultSpec::none());
        for &op in &ops {
            let replies_base = apply(&mut base, op);
            prop_assert_eq!(
                &replies_base,
                &apply(&mut wrapped_det, op),
                "wrapped baseline diverges on {:?}",
                op
            );
            prop_assert_eq!(
                &replies_base,
                &apply(&mut wrapped_idx, op),
                "wrapped indexed diverges on {:?}",
                op
            );
        }
        for stats in [wrapped_det.stats(), wrapped_idx.stats()] {
            prop_assert_eq!(base.stats(), stats);
        }
        prop_assert_eq!(base.peek_filters(), wrapped_det.peek_filters());
        prop_assert_eq!(base.peek_filters(), wrapped_idx.peek_filters());
        prop_assert_eq!(base.peek_values(), wrapped_det.peek_values());
        prop_assert_eq!(base.peek_values(), wrapped_idx.peek_values());
        for i in 0..N {
            prop_assert_eq!(base.peek_group(NodeId(i)), wrapped_det.peek_group(NodeId(i)));
            prop_assert_eq!(base.peek_group(NodeId(i)), wrapped_idx.peek_group(NodeId(i)));
        }
        prop_assert_eq!(wrapped_det.fault_stats(), FaultStats::default());
        prop_assert_eq!(wrapped_idx.fault_stats(), FaultStats::default());
    }

    /// A seeded fault plan is an experiment, not noise: the same spec over the
    /// same schedule reproduces every reply, the full `CommStats` and the
    /// `FaultStats` — and since the plan's RNG stream is independent of the
    /// inner engine, two *different* (bit-identical) engines under the same
    /// plan stay bit-identical to each other.
    #[test]
    fn seeded_fault_plans_replay_bit_identically(
        ops in proptest::collection::vec(
            (0u8..8, 0usize..N, 0u64..2000, 0u64..2000),
            1..40,
        ),
        seed in 0u64..10_000,
        fault_seed in 0u64..10_000,
        which in 0usize..4,
    ) {
        let spec = fault_plan(which, fault_seed);
        let mut first = FaultyTransport::new(IndexedEngine::new(N, seed), spec);
        let mut again = FaultyTransport::new(IndexedEngine::new(N, seed), spec);
        let mut other = FaultyTransport::new(DeterministicEngine::new(N, seed), spec);
        for &op in &ops {
            let replies = apply(&mut first, op);
            prop_assert_eq!(
                &replies,
                &apply(&mut again, op),
                "replay diverges on {:?} under {}",
                op,
                spec
            );
            prop_assert_eq!(
                &replies,
                &apply(&mut other, op),
                "engines diverge under the same plan on {:?} under {}",
                op,
                spec
            );
        }
        prop_assert_eq!(first.stats(), again.stats());
        prop_assert_eq!(first.stats(), other.stats());
        prop_assert_eq!(first.fault_stats(), again.fault_stats());
        prop_assert_eq!(first.fault_stats(), other.fault_stats());
        prop_assert_eq!(first.peek_values(), other.peek_values());
        prop_assert_eq!(first.peek_filters(), other.peek_filters());
    }
}
