//! # topk-repro
//!
//! Umbrella crate for the reproduction of *On Competitive Algorithms for
//! Approximations of Top-k-Position Monitoring of Distributed Streams*
//! (Mäcker, Malatyali, Meyer auf der Heide, 2016).
//!
//! It re-exports the workspace crates so that the examples under `examples/` and
//! the integration tests under `tests/` can reach every public API through a
//! single dependency:
//!
//! * [`model`] — execution-model substrate (values, filters, ε, cost accounting),
//! * [`wire`] — the binary wire format and the trace record/replay codec,
//! * [`net`] — simulation runtimes (deterministic and channel-threaded),
//! * [`gen`] — workload generators,
//! * [`offline`] — optimal offline (OPT) baselines,
//! * [`core`] — the paper's online protocols,
//! * [`mod@bench`] — the experiment harness, scenario files and trace replay.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use topk_bench as bench;
pub use topk_core as core;
pub use topk_gen as gen;
pub use topk_model as model;
pub use topk_net as net;
pub use topk_offline as offline;
pub use topk_wire as wire;

/// The curated single-import surface: `use topk_repro::prelude::*;` brings in
/// everything a typical monitoring program needs — the model vocabulary
/// (values, filters, ε, cost accounting, query specs), the engine factory and
/// the six [`net::Network`] engines behind it, the paper's monitors, the
/// single-query and multi-query run drivers, and the scenario/trace entry
/// points of the experiment harness.
///
/// ```
/// use topk_repro::prelude::*;
///
/// let mut net = build_engine(EngineKind::Deterministic, 3, 7, None);
/// let mut monitor = TopKMonitor::new(1, Epsilon::HALF);
/// let rows = vec![vec![100, 40, 10], vec![30, 46, 12]];
/// let report = run_on_rows(&mut monitor, net.as_mut(), rows.iter().cloned(), Epsilon::HALF);
/// assert_eq!(report.invalid_steps, 0);
/// ```
pub mod prelude {
    pub use topk_core::monitor::{
        run_adaptive, run_on_rows, run_with_membership, Monitor, RunReport,
    };
    pub use topk_core::queryset::{
        run_query_set, run_query_set_adaptive, QueryRunReport, QuerySet, QuerySetReport,
    };
    pub use topk_core::{
        CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor,
    };
    pub use topk_model::prelude::*;
    pub use topk_net::{
        build_engine, DeterministicEngine, EngineKind, FaultyTransport, IndexedEngine, Network,
        RemoteEngine, ShardedEngine, ThreadedEngine,
    };

    pub use topk_bench::campaign::ProtocolKind;
    pub use topk_bench::replay::{
        load_trace, record_run, replay_trace, replay_trace_queryset, save_trace,
    };
    pub use topk_bench::scenario::{standard_library, ScenarioFile};
}
