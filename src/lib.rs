//! # topk-repro
//!
//! Umbrella crate for the reproduction of *On Competitive Algorithms for
//! Approximations of Top-k-Position Monitoring of Distributed Streams*
//! (Mäcker, Malatyali, Meyer auf der Heide, 2016).
//!
//! It re-exports the workspace crates so that the examples under `examples/` and
//! the integration tests under `tests/` can reach every public API through a
//! single dependency:
//!
//! * [`model`] — execution-model substrate (values, filters, ε, cost accounting),
//! * [`wire`] — the binary wire format and the trace record/replay codec,
//! * [`net`] — simulation runtimes (deterministic and channel-threaded),
//! * [`gen`] — workload generators,
//! * [`offline`] — optimal offline (OPT) baselines,
//! * [`core`] — the paper's online protocols,
//! * [`mod@bench`] — the experiment harness, scenario files and trace replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use topk_bench as bench;
pub use topk_core as core;
pub use topk_gen as gen;
pub use topk_model as model;
pub use topk_net as net;
pub use topk_offline as offline;
pub use topk_wire as wire;
