//! Server/client mode: monitor a stream population over real TCP.
//!
//! Spawns the server coordinator in this process and four node-shard clients
//! as loopback TCP connections (`RemoteEngine`), then runs the Theorem 4.5
//! `TopKMonitor` over the wire while a bursty Zipf workload (the paper's
//! load-balancer motivation) drives the nodes. Every probe, filter update,
//! violation report and existence round crosses a socket in the `topk-wire`
//! binary format — and the run report is identical, message for message, to
//! what the in-process engines produce for the same seed.
//!
//! ```sh
//! cargo run --example remote_cluster
//! ```

use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::TopKMonitor;
use topk_gen::{Workload, ZipfLoadWorkload};
use topk_model::{Epsilon, NodeId};
use topk_net::{build_engine, EngineKind, Network, RemoteEngine};

fn main() {
    let (n, k, steps, seed) = (64, 4, 200, 2024);
    let eps = Epsilon::new(1, 10).unwrap();
    let rows: Vec<Vec<u64>> = ZipfLoadWorkload::new(n, 1.1, 100_000, 50, 1e-3, seed)
        .generate(steps)
        .iter()
        .map(|(_, r)| r.to_vec())
        .collect();

    // The server side: bind a loopback listener, spawn 4 shard clients, wait
    // for them to join. In a real deployment the clients would be separate
    // processes on other hosts speaking the same frames.
    let mut net = RemoteEngine::with_shards(n, seed, 4);
    println!(
        "cluster up: {} nodes on {} TCP shard connections",
        net.n(),
        net.shard_count()
    );

    let mut monitor = TopKMonitor::new(k, eps);
    let report = run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps);

    let top: Vec<String> = monitor
        .output()
        .iter()
        .map(|id: &NodeId| id.to_string())
        .collect();
    let transport = net.transport_stats();
    println!(
        "after {} steps the ε-top-{k} positions are: {}",
        report.steps,
        top.join(", ")
    );
    println!(
        "model cost: {} messages ({} rounds), {} invalid steps",
        report.messages(),
        report.stats.rounds,
        report.invalid_steps
    );
    println!(
        "wire cost:  {} frames, {:.1} KiB total, {:.1} bytes per model message",
        transport.frames(),
        transport.bytes() as f64 / 1024.0,
        transport.bytes() as f64 / report.messages().max(1) as f64
    );

    // The punchline: the same monitor over the in-process reference engine
    // sends *exactly* the same messages — the transport is invisible to the
    // protocol stack.
    let mut reference = build_engine(EngineKind::Deterministic, n, seed, None);
    let mut ref_monitor = TopKMonitor::new(k, eps);
    let ref_report = run_on_rows(
        &mut ref_monitor,
        reference.as_mut(),
        rows.iter().cloned(),
        eps,
    );
    assert_eq!(
        report, ref_report,
        "TCP and in-process runs must agree bit for bit"
    );
    assert_eq!(monitor.output(), ref_monitor.output());
    println!("verified: bit-identical to the in-process DeterministicEngine run");
}
