//! Side-by-side comparison of every monitor in the crate on three workload
//! regimes, on both simulation engines.
//!
//! ```text
//! cargo run --example protocol_comparison
//! ```
//!
//! Regimes: a clear gap at rank k (unique output), a dense ε-neighbourhood
//! (oscillation), and a heavy-tailed bursty load. For each regime the example
//! prints the message count of every online algorithm and the offline bounds,
//! and verifies that the deterministic and the threaded (crossbeam channel)
//! engine agree on the message counts.

use topk_core::monitor::{run_on_rows, Monitor, RunReport};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor};
use topk_gen::{GapWorkload, NoiseOscillationWorkload, Trace, Workload, ZipfLoadWorkload};
use topk_model::Epsilon;
use topk_net::{build_engine, EngineKind};
use topk_offline::{ApproxOfflineOpt, ExactOfflineOpt};

fn run_with(
    make_monitor: &dyn Fn() -> Box<dyn Monitor>,
    rows: &[Vec<u64>],
    eps: Epsilon,
    kind: EngineKind,
) -> RunReport {
    let n = rows[0].len();
    let mut monitor = make_monitor();
    let mut net = build_engine(kind, n, 7, None);
    run_on_rows(monitor.as_mut(), net.as_mut(), rows.iter().cloned(), eps)
}

fn main() {
    let n = 32;
    let k = 4;
    let eps = Epsilon::TENTH;
    let steps = 200;

    let regimes: Vec<(&str, Vec<Vec<u64>>)> = vec![
        (
            "clear gap (unique output)",
            GapWorkload::standard(n, k, 1 << 20, 3)
                .generate(steps)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "dense ε-neighbourhood",
            NoiseOscillationWorkload::new(n, 2, 12, 1 << 20, eps, 3)
                .generate(steps)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
        (
            "bursty Zipf load",
            ZipfLoadWorkload::web_cluster(n, 3)
                .generate(steps)
                .iter()
                .map(|(_, r)| r.to_vec())
                .collect(),
        ),
    ];

    type MonitorFactory = Box<dyn Fn() -> Box<dyn Monitor>>;
    let monitors: Vec<(&str, MonitorFactory)> = vec![
        (
            "exact-top-k",
            Box::new(move || Box::new(ExactTopKMonitor::new(k))),
        ),
        (
            "topk-protocol",
            Box::new(move || Box::new(TopKMonitor::new(k, eps))),
        ),
        (
            "dense-protocol",
            Box::new(move || Box::new(DenseMonitor::new(k, eps))),
        ),
        (
            "combined",
            Box::new(move || Box::new(CombinedMonitor::new(k, eps))),
        ),
        (
            "half-eps",
            Box::new(move || Box::new(HalfEpsMonitor::new(k, eps))),
        ),
    ];

    for (regime, rows) in &regimes {
        let trace = Trace::new(rows.clone()).unwrap();
        let exact_opt = ExactOfflineOpt::new(k).cost(&trace).unwrap();
        let approx_opt = ApproxOfflineOpt::new(k, eps).cost(&trace).unwrap();
        println!("=== {regime} (n = {n}, k = {k}, {steps} steps) ===");
        println!(
            "  OPT lower bounds: exact ≥ {}, ε-approximate ≥ {}",
            exact_opt.lower_bound, approx_opt.lower_bound
        );
        println!(
            "  {:<16} {:>10} {:>12} {:>10}",
            "monitor", "messages", "msgs/step", "valid"
        );
        for (name, make) in &monitors {
            let det = run_with(make, rows, eps, EngineKind::Deterministic);
            let thr = run_with(make, rows, eps, EngineKind::Threaded);
            assert_eq!(
                det.messages(),
                thr.messages(),
                "{name}: engines disagree on message counts"
            );
            println!(
                "  {:<16} {:>10} {:>12.2} {:>9}%",
                name,
                det.messages(),
                det.stats.messages_per_step(),
                100 * (det.steps - det.invalid_steps) / det.steps
            );
        }
        println!();
    }
    println!("(message counts verified identical on the deterministic and the threaded engine)");
}
