//! The paper's motivating scenario: a load balancer tracking the most loaded
//! web servers.
//!
//! ```text
//! cargo run --example load_balancer
//! ```
//!
//! 64 servers serve Zipf-distributed, bursty, seasonal request loads. The load
//! balancer continuously needs the 8 most loaded servers but does not care about
//! ties within 10 % of the 8-th load — exactly the ε-top-k relaxation. The
//! example compares three strategies:
//!
//! * polling every server every step (the naive baseline),
//! * the exact top-k monitor (Corollary 3.3),
//! * the combined ε-approximate algorithm of Theorem 5.8.
//!
//! The whole workload — cluster size, `k`, ε, horizon, generator parameters —
//! is declarative data in `scenarios/load_balancer.json` (schema in
//! `docs/SCENARIOS.md`); this example is just the runner.

use std::path::Path;
use topk_bench::scenario::load_scenario;
use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::{CombinedMonitor, ExactTopKMonitor};
use topk_gen::Trace;
use topk_net::DeterministicEngine;
use topk_offline::ApproxOfflineOpt;

fn main() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/load_balancer.json"
    ));
    let scenario = load_scenario(path).expect("scenarios/load_balancer.json must validate");
    let spec = scenario.spec;
    let (n, k, eps, steps) = (spec.n, spec.k, spec.eps, spec.steps);

    let mut workload = spec.generator.build(n, k, eps, spec.seed);
    let rows: Vec<Vec<u64>> = (0..steps)
        .map(|_| workload.next_step_adaptive(&[]))
        .collect();
    let trace = Trace::new(rows.clone()).expect("rectangular trace");

    // Naive baseline: the balancer polls every server every step.
    let naive_messages = (n as u64) * (steps as u64) * 2; // probe + reply

    let run = |monitor: &mut dyn Monitor| {
        let mut net = DeterministicEngine::new(n, 1);
        run_on_rows(monitor, &mut net, rows.iter().cloned(), eps)
    };

    let mut exact = ExactTopKMonitor::new(k);
    let exact_report = run(&mut exact);
    let mut combined = CombinedMonitor::new(k, eps);
    let combined_report = run(&mut combined);

    let opt = ApproxOfflineOpt::new(k, eps)
        .cost(&trace)
        .expect("valid parameters");

    println!("Web cluster: {n} servers, top-{k} loads, {steps} steps, ε = {eps}");
    println!(
        "  σ (max servers within ε of the k-th load): {}",
        trace.sigma(k, eps)
    );
    println!();
    println!("  strategy              messages   msgs/step   vs naive");
    let line = |name: &str, msgs: u64| {
        println!(
            "  {:<20} {:>9}   {:>9.2}   {:>7.1}x fewer",
            name,
            msgs,
            msgs as f64 / steps as f64,
            naive_messages as f64 / msgs.max(1) as f64
        );
    };
    line("poll everything", naive_messages);
    line("exact top-k", exact_report.messages());
    line("combined (ε-top-k)", combined_report.messages());
    println!();
    println!(
        "  offline OPT(ε) lower bound: {}  → combined competitiveness {:.2}",
        opt.lower_bound,
        opt.competitive_ratio(combined_report.messages())
    );
    assert_eq!(combined_report.invalid_steps, 0);
    assert_eq!(exact_report.inexact_steps, 0);
}
