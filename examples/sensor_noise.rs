//! Sensor network with measurement noise: why the ε-relaxation matters.
//!
//! ```text
//! cargo run --example sensor_noise
//! ```
//!
//! A field of sensors reports a physical quantity; a handful of them sit right
//! at the detection threshold and their readings oscillate because of noise
//! (the situation the paper's introduction describes). Monitoring the *exact*
//! top-k forces communication on almost every reading; the ε-approximate
//! `DenseProtocol` ignores the noise band and stays almost silent. The example
//! prints the per-step message cost of both and the offline baselines they are
//! compared against in the paper.
//!
//! The sensor field — 6 sensors clearly above the threshold, 12 oscillating
//! inside the ε-band around it, the rest clearly below — is declarative data
//! in `scenarios/sensor_noise.json` (schema in `docs/SCENARIOS.md`); this
//! example is just the runner.

use std::path::Path;
use topk_bench::scenario::load_scenario;
use topk_core::monitor::run_on_rows;
use topk_core::{DenseMonitor, ExactTopKMonitor};
use topk_gen::Trace;
use topk_net::DeterministicEngine;
use topk_offline::{ApproxOfflineOpt, ExactOfflineOpt};

fn main() {
    let path = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/sensor_noise.json"
    ));
    let scenario = load_scenario(path).expect("scenarios/sensor_noise.json must validate");
    let spec = scenario.spec;
    let (n, k, eps, steps) = (spec.n, spec.k, spec.eps, spec.steps);

    let mut workload = spec.generator.build(n, k, eps, spec.seed);
    let rows: Vec<Vec<u64>> = (0..steps)
        .map(|_| workload.next_step_adaptive(&[]))
        .collect();
    let trace = Trace::new(rows.clone()).expect("rectangular trace");

    let mut net = DeterministicEngine::new(n, 3);
    let mut exact = ExactTopKMonitor::new(k);
    let exact_report = run_on_rows(&mut exact, &mut net, rows.iter().cloned(), eps);

    let mut net = DeterministicEngine::new(n, 3);
    let mut dense = DenseMonitor::new(k, eps);
    let dense_report = run_on_rows(&mut dense, &mut net, rows.iter().cloned(), eps);

    let exact_opt = ExactOfflineOpt::new(k).cost(&trace).unwrap();
    let approx_opt = ApproxOfflineOpt::new(k, eps).cost(&trace).unwrap();

    println!("Sensor field: {n} sensors, top-{k}, {steps} readings, ε = {eps}");
    println!(
        "  σ (sensors inside the noise band): {}",
        trace.sigma(k, eps)
    );
    println!();
    println!(
        "  exact monitoring : {:>7} messages ({:.2}/step), OPT(exact) ≥ {}",
        exact_report.messages(),
        exact_report.stats.messages_per_step(),
        exact_opt.lower_bound
    );
    println!(
        "  ε-approx (dense) : {:>7} messages ({:.2}/step), OPT(ε) ≥ {}",
        dense_report.messages(),
        dense_report.stats.messages_per_step(),
        approx_opt.lower_bound
    );
    println!();
    println!(
        "  tolerating the noise band saves a factor of {:.1} in communication",
        exact_report.messages() as f64 / dense_report.messages().max(1) as f64
    );
    assert_eq!(dense_report.invalid_steps, 0);
    assert_eq!(exact_report.inexact_steps, 0);
}
