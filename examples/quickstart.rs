//! Quickstart: monitor the top-3 of 10 simulated streams with `TopKProtocol`.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The example builds a random-walk workload, runs the ε-approximate
//! `TopKProtocol` monitor over it on the deterministic engine, validates every
//! output and prints how many messages were needed compared to the optimal
//! offline (filter-based) algorithm.

use topk_core::monitor::{run_on_rows, Monitor};
use topk_core::TopKMonitor;
use topk_gen::{RandomWalkWorkload, Trace, Workload};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;
use topk_offline::ExactOfflineOpt;

fn main() {
    let n = 10; // number of distributed nodes
    let k = 3; // monitor the top-3 positions
    let eps = Epsilon::TENTH; // allowed imprecision around the k-th value
    let steps = 500;

    // A smooth workload: every node's value drifts by a bounded random walk.
    let mut workload = RandomWalkWorkload::quiet(n, 100_000, 42);
    let rows: Vec<Vec<u64>> = (0..steps).map(|_| workload.next_step()).collect();
    let trace = Trace::new(rows.clone()).expect("rectangular trace");

    // The online monitor runs against the simulated network.
    let mut net = DeterministicEngine::new(n, 7);
    let mut monitor = TopKMonitor::new(k, eps);
    let report = run_on_rows(&mut monitor, &mut net, rows, eps);

    // The offline baseline sees the whole trace in advance.
    let opt = ExactOfflineOpt::new(k)
        .cost(&trace)
        .expect("valid parameters");

    println!("ε-Top-{k} monitoring of {n} streams over {steps} steps (ε = {eps})");
    println!("  online messages          : {}", report.messages());
    println!(
        "  messages per time step   : {:.3}",
        report.stats.messages_per_step()
    );
    println!("  offline (OPT) lower bound: {}", opt.lower_bound);
    println!(
        "  measured competitiveness : {:.2}",
        opt.competitive_ratio(report.messages())
    );
    println!(
        "  outputs valid            : {}/{} steps",
        report.steps - report.invalid_steps,
        report.steps
    );
    println!("  current top-{k} nodes     : {:?}", monitor.output());
    assert_eq!(
        report.invalid_steps, 0,
        "every output must be a valid ε-top-k set"
    );
}
