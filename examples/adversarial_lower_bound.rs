//! The lower-bound construction of Theorem 5.1, executed against a real monitor.
//!
//! ```text
//! cargo run --example adversarial_lower_bound
//! ```
//!
//! An adaptive adversary keeps `σ` nodes at a common value and, seeing the
//! filters the online algorithm publishes, repeatedly drops one of the output
//! nodes just below the ε-neighbourhood, forcing a filter violation. An offline
//! algorithm that knows which `k` nodes survive each phase pays only `k + 1`
//! messages per phase, so the measured ratio grows like `σ / k` — no filter-based
//! online algorithm can do better (Theorem 5.1).

use topk_core::monitor::run_adaptive;
use topk_core::CombinedMonitor;
use topk_gen::{AdaptiveWorkload, LowerBoundAdversary};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn main() {
    let n = 48;
    let k = 4;
    let eps = Epsilon::new(1, 4).expect("ε = 1/4");
    let phases = 8;

    println!("Theorem 5.1 adversary: n = {n}, k = {k}, ε = {eps}, {phases} phases");
    println!();
    println!("  sigma   online msgs   offline bound   measured ratio   sigma/k");
    for sigma in [8usize, 16, 24, 32, 48] {
        let mut adversary = LowerBoundAdversary::new(n, k, sigma, 1 << 20, eps);
        let mut monitor = CombinedMonitor::new(k, eps);
        let mut net = DeterministicEngine::new(n, 11);
        let report = run_adaptive(&mut monitor, &mut net, eps, |filters| {
            if adversary.phases_completed() >= phases {
                None
            } else {
                Some(adversary.next_step_adaptive(filters))
            }
        });
        let offline = adversary.offline_cost_bound();
        println!(
            "  {:>5}   {:>11}   {:>13}   {:>14.2}   {:>7.2}",
            sigma,
            report.messages(),
            offline,
            report.messages() as f64 / offline as f64,
            sigma as f64 / k as f64
        );
        assert_eq!(report.invalid_steps, 0);
    }
    println!();
    println!("The measured ratio grows with σ while the offline cost stays at (k+1) per phase —");
    println!("the Ω(σ/k) separation of Theorem 5.1.");
}
