//! Offline stand-in for `crossbeam-channel`, backed by [`std::sync::mpsc`].
//!
//! Only the surface this workspace uses is provided: [`unbounded`] channels
//! with cloneable senders, blocking [`Sender::send`] and [`Receiver::recv`].
//! `std`'s MPSC channel has exactly these semantics (FIFO per sender,
//! disconnection errors on hang-up), so the stand-in is a thin re-export.

#![warn(missing_docs)]

pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_from_clones() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for h in handles {
            h.join().unwrap();
        }
        assert!(rx.recv().is_err(), "all senders dropped");
    }
}
