//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder API this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! `bench_function`, `bench_with_input`, [`BenchmarkId`] and [`black_box`] —
//! with a deliberately small measurement loop: each benchmark is warmed up
//! once and then timed for `sample_size` iterations, reporting the median.
//! There are no plots, no statistics and no saved baselines; the point is
//! that `cargo bench` builds, runs and prints comparable numbers offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Creates a driver, reading an optional substring filter from the
    /// command line (the argument convention `cargo bench -- <filter>` uses).
    pub fn from_args() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = 10;
        self.run_one(id, sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        samples.sort_unstable();
        let median = samples.get(samples.len() / 2).copied().unwrap_or_default();
        println!(
            "bench: {id:<60} median {median:>12.2?} ({} samples)",
            samples.len()
        );
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.label());
        self.criterion.run_one(&full, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that receives an input value by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The real crate emits summary reports here.)
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a name plus an optional
/// parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once for warm-up and then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group: `criterion_group!(name, target_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.sample_size(3).bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // One warm-up plus three timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("walk", 128);
        assert_eq!(id.label(), "walk/128");
    }
}
