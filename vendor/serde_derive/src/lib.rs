//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! attribute-free, non-generic structs and enums this workspace defines,
//! generating the same externally-tagged JSON encoding the real
//! `serde`+`serde_json` pair uses:
//!
//! * named struct → object keyed by field names,
//! * newtype struct → the inner value,
//! * tuple struct → array,
//! * unit enum variant → the variant name as a string,
//! * newtype/tuple/struct enum variant → single-key object
//!   `{"Variant": payload}`.
//!
//! Unsupported shapes (generics, `#[serde(...)]` attributes) produce a
//! `compile_error!` instead of silently wrong code. The macro is written
//! against the raw [`proc_macro`] API because the container image has no
//! `syn`/`quote`; the parser below only needs to recover field *names* and
//! arities — field types are never spelled out in the generated code, which
//! relies on type inference through `Deserialize::from_json` instead.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// The shape of the fields of a struct or of one enum variant.
enum Fields {
    Unit,
    /// Tuple fields; the payload is the arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => gen_struct_ser(name, fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => gen_struct_de(name, fields),
        (Item::Enum { name, variants }, Mode::Serialize) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => gen_enum_de(name, variants),
    };
    code.parse().unwrap()
}

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` outer attributes (including doc comments, which reach the
    /// macro as `#[doc = "..."]`). Rejects `#[serde(...)]`, which the stand-in
    /// does not implement.
    fn skip_attributes(&mut self) -> Result<(), String> {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let body = g.stream().to_string();
                    if body.starts_with("serde") {
                        return Err(
                            "the serde stand-in does not support #[serde(...)] attributes".into(),
                        );
                    }
                }
                _ => return Err("malformed attribute".into()),
            }
        }
        Ok(())
    }

    /// Skips `pub`, `pub(crate)`, `pub(in path)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected {what}, found {other:?}")),
        }
    }

    /// Consumes tokens of a type (or a discriminant expression) until a
    /// top-level `,`, tracking `<`/`>` nesting. The `,` itself is not consumed.
    fn skip_until_top_level_comma(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attributes()?;
    c.skip_visibility();
    let kind = c.expect_ident("`struct` or `enum`")?;
    let name = c.expect_ident("item name")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the serde stand-in cannot derive for generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    c.next();
                    Fields::Named(parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    c.next();
                    Fields::Tuple(count_tuple_fields(g)?)
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes()?;
        if c.at_end() {
            return Ok(fields);
        }
        c.skip_visibility();
        fields.push(c.expect_ident("field name")?);
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        c.skip_until_top_level_comma();
        c.next(); // consume the `,` (no-op at end of stream)
    }
}

fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(stream);
    let mut arity = 0;
    loop {
        c.skip_attributes()?;
        if c.at_end() {
            return Ok(arity);
        }
        c.skip_visibility();
        arity += 1;
        c.skip_until_top_level_comma();
        c.next();
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes()?;
        if c.at_end() {
            return Ok(variants);
        }
        let name = c.expect_ident("variant name")?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                c.next();
                Fields::Tuple(count_tuple_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                c.next();
                Fields::Named(parse_named_fields(g)?)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, if any.
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                c.next();
                c.skip_until_top_level_comma();
            }
        }
        c.next(); // consume the `,`
        variants.push((name, fields));
    }
}

// --------------------------------------------------------------------------
// Code generation
// --------------------------------------------------------------------------

/// `(name0, to_json(&expr_prefix name0)), (name1, ...)` pairs for an object.
fn object_pairs(fields: &[String], expr_prefix: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_json(&{expr_prefix}{f}))"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_struct_ser(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Json::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Json::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            format!(
                "::serde::Json::Object(::std::vec![{}])",
                object_pairs(fields, "self.")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{ {body} }}\n\
         }}"
    )
}

fn gen_struct_de(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!(
            "match v {{\n\
                 ::serde::Json::Null => ::std::result::Result::Ok({name}),\n\
                 _ => ::std::result::Result::Err(::serde::JsonError::type_error({name:?})),\n\
             }}"
        ),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_json(v)?))")
        }
        Fields::Tuple(n) => format!(
            "{{\n\
                 let items = v.as_array().ok_or_else(|| ::serde::JsonError::type_error({name:?}))?;\n\
                 if items.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::JsonError::type_error({name:?}));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({fields}))\n\
             }}",
            fields = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", "),
        ),
        Fields::Named(fields) => format!(
            "{{\n\
                 let pairs = v.as_object().ok_or_else(|| ::serde::JsonError::type_error({name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}",
            fields = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(pairs, {f:?}, {name:?})?"))
                .collect::<Vec<_>>()
                .join(", "),
        ),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &::serde::Json) -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_ser(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(variant, fields)| match fields {
            Fields::Unit => format!(
                "{name}::{variant} => ::serde::Json::Str(::std::string::String::from({variant:?}))"
            ),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let payload = if *n == 1 {
                    "::serde::Serialize::to_json(f0)".to_string()
                } else {
                    format!(
                        "::serde::Json::Array(::std::vec![{}])",
                        binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                format!(
                    "{name}::{variant}({binders}) => ::serde::Json::Object(::std::vec![\
                         (::std::string::String::from({variant:?}), {payload})])",
                    binders = binders.join(", ")
                )
            }
            Fields::Named(field_names) => format!(
                "{name}::{variant} {{ {binders} }} => ::serde::Json::Object(::std::vec![\
                     (::std::string::String::from({variant:?}), \
                      ::serde::Json::Object(::std::vec![{pairs}]))])",
                binders = field_names.join(", "),
                pairs = object_pairs(field_names, ""),
            ),
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json(&self) -> ::serde::Json {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}",
        arms = arms.join(",\n")
    )
}

fn gen_enum_de(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(variant, _)| format!("{variant:?} => ::std::result::Result::Ok({name}::{variant})"))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|(variant, fields)| {
            let build = match fields {
                Fields::Unit => return None,
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{variant}(::serde::Deserialize::from_json(inner)?))"
                ),
                Fields::Tuple(n) => format!(
                    "{{\n\
                         let items = inner.as_array().ok_or_else(|| ::serde::JsonError::type_error({name:?}))?;\n\
                         if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::JsonError::type_error({name:?}));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{variant}({fields}))\n\
                     }}",
                    fields = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_json(&items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
                Fields::Named(field_names) => format!(
                    "{{\n\
                         let pairs = inner.as_object().ok_or_else(|| ::serde::JsonError::type_error({name:?}))?;\n\
                         ::std::result::Result::Ok({name}::{variant} {{ {fields} }})\n\
                     }}",
                    fields = field_names
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(pairs, {f:?}, {name:?})?"))
                        .collect::<Vec<_>>()
                        .join(", "),
                ),
            };
            Some(format!("{variant:?} => {build}"))
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json(v: &::serde::Json) -> ::std::result::Result<Self, ::serde::JsonError> {{\n\
                 match v {{\n\
                     ::serde::Json::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         _ => ::std::result::Result::Err(::serde::JsonError::type_error({name:?})),\n\
                     }},\n\
                     ::serde::Json::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             _ => ::std::result::Result::Err(::serde::JsonError::type_error({name:?})),\n\
                         }}\n\
                     }},\n\
                     _ => ::std::result::Result::Err(::serde::JsonError::type_error({name:?})),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = if unit_arms.is_empty() {
            String::new()
        } else {
            format!("{},", unit_arms.join(",\n"))
        },
        tagged_arms = if tagged_arms.is_empty() {
            String::new()
        } else {
            format!("{},", tagged_arms.join(",\n"))
        },
    )
}
