//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], the extension trait [`Rng`] with `gen_range`/`gen_bool`,
//! and [`seq::SliceRandom`] with Fisher–Yates shuffling. Integer ranges are
//! sampled with the widening multiply-shift method (Lemire), float ranges with
//! the standard 53-bit mantissa trick.
//!
//! The concrete generator lives in the sibling `rand_chacha` stand-in; all
//! sampling here is generic over [`RngCore`].

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform raw bits.
pub trait RngCore {
    /// Returns the next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Matches the real crate's contract: distinct seeds give statistically
    /// independent streams, and the same seed always gives the same stream.
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    // Whole 64-bit domain: every raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                lo + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == <$u>::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(sample_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Uniform draw from `[0, span)` using the widening multiply-shift method.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        unit_f64(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`, computed
    /// exactly in integers.
    ///
    /// # Panics
    ///
    /// Panics if `denominator` is zero or `numerator > denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(
            numerator <= denominator,
            "gen_ratio numerator {numerator} exceeds denominator {denominator}"
        );
        sample_below(self, u64::from(denominator)) < u64::from(numerator)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on slices.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Extension trait adding random shuffling and selection to slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[SampleRange::sample_single(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct CountingRng(u64);

    impl RngCore for CountingRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // A weak but deterministic mixing function, good enough to test
            // the sampling plumbing (not the statistics).
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = CountingRng(42);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
            let z = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&z));
            let f = rng.gen_range(0.9..1.1);
            assert!((0.9..1.1).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = CountingRng(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = CountingRng(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
