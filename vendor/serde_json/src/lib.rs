//! Offline stand-in for `serde_json`.
//!
//! Prints and parses JSON text over the [`serde::Json`] value tree of the
//! sibling `serde` stand-in. Provides the three entry points this workspace
//! uses — [`to_string`], [`to_string_pretty`] and [`from_str`] — with the same
//! textual conventions as the real crate (compact output without spaces;
//! pretty output with two-space indentation and `": "` separators).

#![warn(missing_docs)]

use serde::{Deserialize, Json, JsonError, Serialize};

/// Error type of the stand-in; an alias for the shared [`JsonError`].
pub type Error = JsonError;

/// Serialises a value to compact JSON text.
///
/// # Errors
///
/// Never fails for the value types this workspace serialises; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Serialises a value to pretty-printed JSON text (two-space indentation).
///
/// # Errors
///
/// Never fails for the value types this workspace serialises; the `Result`
/// mirrors the real `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), &mut out, 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the parsed tree does not
/// match the shape `T` expects.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::from_json(&value)
}

// --------------------------------------------------------------------------
// Printing
// --------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number_float(x: f64, out: &mut String) {
    if x.is_finite() {
        // Ensure floats always reparse as floats.
        let text = format!("{x}");
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // The real serde_json refuses non-finite floats; `null` is its
        // documented behaviour for `Value::from(f64::NAN)`.
        out.push_str("null");
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::UInt(u) => out.push_str(&u.to_string()),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(x) => write_number_float(*x, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Json, out: &mut String, indent: usize) {
    match v {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Json::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// --------------------------------------------------------------------------
// Parsing
// --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{word}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') => self.parse_number(),
            Some(b) if b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Json, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by the printer;
                            // reject them rather than decode them wrongly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(digits) = text.strip_prefix('-') {
            digits
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Json::Int)
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Json::Object(vec![
            ("id".into(), Json::Str("E0".into())),
            (
                "rows".into(),
                Json::Array(vec![Json::UInt(1), Json::Int(-2)]),
            ),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("x".into(), Json::Float(1.5)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(
            text,
            "{\"id\":\"E0\",\"rows\":[1,-2],\"ok\":true,\"none\":null,\"x\":1.5}"
        );
        let back: Json = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_uses_colon_space() {
        let v = Json::Object(vec![("id".into(), Json::Str("E0".into()))]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"id\": \"E0\""), "{text}");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Json>("not json").is_err());
        assert!(from_str::<Json>("{\"a\": }").is_err());
        assert!(from_str::<Json>("[1, 2").is_err());
        assert!(from_str::<Json>("17 trailing").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\n\"quote\"\tüñ".into());
        let text = to_string(&v).unwrap();
        let back: Json = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn large_integers_survive() {
        let v = Json::UInt(u64::MAX);
        let back: Json = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, back);
    }
}
