//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the [`proptest!`]
//! macro with an optional `#![proptest_config(...)]` header, integer-range
//! strategies, [`collection::vec`] (nestable), and `prop_assert!`/
//! `prop_assert_eq!`. Inputs are generated deterministically per case index,
//! so failures are reproducible run over run. There is no shrinking: a failing
//! case panics with the generated values still bound, which the panic message
//! of the inner assertion reports.

#![warn(missing_docs)]

use std::ops::Range;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates the generator for one case of one property.
    pub fn for_case(case: u64) -> TestRng {
        TestRng(case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5DEE_CE66_D1CE_4E5B)
    }

    /// Returns the next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number-of-elements range for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths drawn from `size` and
    /// elements drawn from `element`. Nestable: the element strategy may
    /// itself be a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports of the stand-in, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn` item becomes a `#[test]` run for the
/// configured number of cases with its arguments freshly generated per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident ($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __proptest_rng = $crate::TestRng::for_case(case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, len in 1usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((1..4).contains(&len));
        }

        #[test]
        fn nested_vec_shapes(rows in crate::collection::vec(crate::collection::vec(0u64..5, 3..6), 2..4)) {
            prop_assert!(rows.len() >= 2 && rows.len() < 4);
            for row in &rows {
                prop_assert!(row.len() >= 3 && row.len() < 6);
                prop_assert!(row.iter().all(|&v| v < 5));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = super::TestRng::for_case(5);
        let mut b = super::TestRng::for_case(5);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
