//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is a data-model-agnostic framework; this workspace only
//! ever serialises to and from JSON, so the stand-in collapses the framework to
//! two traits over a concrete JSON value tree ([`Json`]). The derive macros
//! re-exported from [`serde_derive`] generate the externally-tagged encoding
//! the real `serde`+`serde_json` pair would produce for the plain (attribute-
//! free) structs and enums this workspace defines, so swapping the real crates
//! back in is a manifest-only change.
//!
//! Only the API surface this workspace uses is provided:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs and enums,
//! * the [`Serialize`] / [`Deserialize`] traits with impls for the primitive
//!   types, `String`, `Option<T>`, `Vec<T>` and small tuples,
//! * the [`Json`] tree and [`JsonError`] that `serde_json` (the sibling
//!   stand-in) prints and parses.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON value tree — the single data model of the serde stand-in.
///
/// Integers keep their full 64-bit precision (`u64` values up to `2^64 - 1`
/// round-trip exactly; they are never squeezed through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Borrows the object key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced when a [`Json`] tree does not match the shape a
/// [`Deserialize`] impl expects, or when `serde_json` fails to parse text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }

    /// Creates a "wrong JSON shape for type `ty`" error.
    pub fn type_error(ty: &str) -> JsonError {
        JsonError::new(format!("JSON value does not match type `{ty}`"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// A type that can be converted into a [`Json`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// A type that can be reconstructed from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs a value from a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the tree does not have the expected shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Looks up `key` in the field list of a struct object and deserialises it.
/// Used by the derive-generated code.
///
/// # Errors
///
/// Returns a [`JsonError`] if the key is missing or its value has the wrong
/// shape.
pub fn field<T: Deserialize>(
    pairs: &[(String, Json)],
    key: &str,
    ty: &str,
) -> Result<T, JsonError> {
    match pairs.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_json(v),
        None => Err(JsonError::new(format!("missing field `{key}` in `{ty}`"))),
    }
}

macro_rules! impl_json_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                match *v {
                    Json::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| JsonError::type_error(stringify!($t))),
                    _ => Err(JsonError::type_error(stringify!($t))),
                }
            }
        }
    )*};
}

impl_json_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_json_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i >= 0 {
                    Json::UInt(i as u64)
                } else {
                    Json::Int(i)
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let wide: i128 = match *v {
                    Json::UInt(u) => u as i128,
                    Json::Int(i) => i as i128,
                    _ => return Err(JsonError::type_error(stringify!($t))),
                };
                <$t>::try_from(wide).map_err(|_| JsonError::type_error(stringify!($t)))
            }
        }
    )*};
}

impl_json_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match *v {
            Json::Float(x) => Ok(x),
            Json::UInt(u) => Ok(u as f64),
            Json::Int(i) => Ok(i as f64),
            _ => Err(JsonError::type_error("f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match *v {
            Json::Bool(b) => Ok(b),
            _ => Err(JsonError::type_error("bool")),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(JsonError::type_error("String")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(JsonError::type_error("char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::type_error("Vec"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(Serialize::to_json).collect())
    }
}

macro_rules! impl_json_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = v.as_array().ok_or_else(|| JsonError::type_error("tuple"))?;
                if items.len() != ARITY {
                    return Err(JsonError::type_error("tuple"));
                }
                Ok(($($name::from_json(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        // Keys in this workspace are not strings, so the map is encoded as an
        // array of `[key, value]` pairs rather than a JSON object.
        Json::Array(
            self.iter()
                .map(|(k, v)| Json::Array(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::type_error("BTreeMap"))?
            .iter()
            .map(<(K, V)>::from_json)
            .collect()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl Deserialize for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_json(&42u64.to_json()), Ok(42));
        assert_eq!(i32::from_json(&(-7i32).to_json()), Ok(-7));
        assert_eq!(bool::from_json(&true.to_json()), Ok(true));
        assert_eq!(
            String::from_json(&String::from("hi").to_json()),
            Ok(String::from("hi"))
        );
        assert_eq!(Option::<u64>::from_json(&Json::Null), Ok(None));
        assert_eq!(<(u64, u32)>::from_json(&(3u64, 4u32).to_json()), Ok((3, 4)));
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&v.to_json()), Ok(v));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_json(&Json::Str("no".into())).is_err());
        assert!(<(u64, u64)>::from_json(&Json::Array(vec![Json::UInt(1)])).is_err());
        assert!(field::<u64>(&[], "missing", "T").is_err());
    }
}
