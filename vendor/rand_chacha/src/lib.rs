//! Offline stand-in for `rand_chacha`.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha keystream generator with 8 rounds
//! (Bernstein's ChaCha with the round count the real `rand_chacha` uses for
//! its fastest variant). The raw byte stream is not bit-identical to the real
//! crate's (the seed expansion differs), which is fine for this workspace: all
//! tests and experiments only rely on the stream being deterministic per seed,
//! statistically uniform and independent across seeds.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Keystream block produced by the last permutation.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

impl ChaCha8Rng {
    /// Creates a generator from a 32-byte key and an 8-byte nonce.
    pub fn from_key(key: [u32; 8], nonce: [u32; 2]) -> ChaCha8Rng {
        // "expand 32-byte k"
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&key);
        // state[12..14] is the 64-bit block counter, starting at zero.
        state[14] = nonce[0];
        state[15] = nonce[1];
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, (permuted, input)) in self.buffer.iter_mut().zip(x.iter().zip(self.state.iter()))
        {
            *out = permuted.wrapping_add(*input);
        }
        // Advance the 64-bit block counter.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

#[inline]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expands the 64-bit seed into a 256-bit key with SplitMix64, the same
    /// expansion the real `rand` uses for `seed_from_u64`.
    fn seed_from_u64(state: u64) -> ChaCha8Rng {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let word = next();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        ChaCha8Rng::from_key(key, [0, 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 16 words per block; drawing 40 u32s crosses two block boundaries.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let words: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        assert_ne!(&words[0..16], &words[16..32], "blocks must differ");
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity check, not a statistical test: the average of many u64 draws
        // scaled to [0,1) should be near 1/2.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 10_000;
        let sum: f64 = (0..n)
            .map(|_| rng.next_u64() as f64 / u64::MAX as f64)
            .sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
