//! Criterion bench for the existence protocol (Lemma 3.1, experiment E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::existence::existence;
use topk_model::message::ExistencePredicate;
use topk_net::{DeterministicEngine, Network};

fn bench_existence(c: &mut Criterion) {
    let mut group = c.benchmark_group("existence");
    group.sample_size(20);
    for &n in &[64usize, 256, 1024] {
        for &(label, ones) in &[("one", 1usize), ("half", n / 2), ("all", n)] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), label),
                &(n, ones),
                |b, &(n, ones)| {
                    let mut values = vec![0u64; n];
                    for v in values.iter_mut().take(ones) {
                        *v = 100;
                    }
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        let mut net = DeterministicEngine::new(n, seed);
                        net.advance_time(&values);
                        existence(&mut net, ExistencePredicate::GreaterThan(50))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_existence);
criterion_main!(benches);
