//! Criterion bench for the adversarial lower-bound instance (Theorem 5.1,
//! experiment E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::monitor::run_adaptive;
use topk_core::CombinedMonitor;
use topk_gen::{AdaptiveWorkload, LowerBoundAdversary};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn bench_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("lower_bound");
    group.sample_size(10);
    let eps = Epsilon::new(1, 4).unwrap();
    for &sigma in &[8usize, 24] {
        group.bench_with_input(
            BenchmarkId::new("adversary_3_phases_sigma", sigma),
            &sigma,
            |b, &sigma| {
                b.iter(|| {
                    let mut adversary = LowerBoundAdversary::new(32, 2, sigma, 1 << 20, eps);
                    let mut monitor = CombinedMonitor::new(2, eps);
                    let mut net = DeterministicEngine::new(32, 11);
                    run_adaptive(&mut monitor, &mut net, eps, |filters| {
                        if adversary.phases_completed() >= 3 {
                            None
                        } else {
                            Some(adversary.next_step_adaptive(filters))
                        }
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
