//! Criterion bench for the maximum protocol (Lemma 2.6, experiment E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::maximum::{find_max, top_m};
use topk_gen::{RandomWalkWorkload, Workload};
use topk_net::{DeterministicEngine, Network};

fn bench_maximum(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximum");
    group.sample_size(20);
    for &n in &[64usize, 256, 1024] {
        let mut w = RandomWalkWorkload::new(n, 1_000_000, 1000, 1.0, 7);
        let values = w.next_step();
        group.bench_with_input(BenchmarkId::new("find_max", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut net = DeterministicEngine::new(n, seed);
                net.advance_time(&values);
                find_max(&mut net)
            });
        });
        group.bench_with_input(BenchmarkId::new("top_5", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut net = DeterministicEngine::new(n, seed);
                net.advance_time(&values);
                top_m(&mut net, 5)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_maximum);
criterion_main!(benches);
