//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! * existence-protocol violation detection vs naive per-node polling,
//! * double-exponential probing (`TopKProtocol`) vs plain midpoint halving
//!   (`ExactTopKMonitor`) at large `Δ`,
//! * deterministic vs threaded (crossbeam-channel) engine overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use topk_core::existence::detect_violations;
use topk_core::monitor::run_on_rows;
use topk_core::{ExactTopKMonitor, TopKMonitor};
use topk_gen::{GapWorkload, Workload};
use topk_model::{Epsilon, Filter, NodeId};
use topk_net::{DeterministicEngine, Network, ThreadedEngine};

/// Ablation A: detect one violation among n nodes via the existence protocol vs
/// probing every node.
fn ablation_violation_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_violation_detection");
    group.sample_size(20);
    let n = 512;
    group.bench_function("existence_protocol", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut net = DeterministicEngine::new(n, seed);
            net.advance_time(&vec![10; n]);
            net.assign_filter(NodeId(n - 1), Filter::at_most(5));
            detect_violations(&mut net)
        });
    });
    group.bench_function("naive_probe_all", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut net = DeterministicEngine::new(n, seed);
            net.advance_time(&vec![10; n]);
            net.assign_filter(NodeId(n - 1), Filter::at_most(5));
            let values: Vec<u64> = (0..n).map(|i| net.probe(NodeId(i))).collect();
            values
        });
    });
    group.finish();
}

/// Ablation B: plain midpoint halving vs the phase-based probing of
/// `TopKProtocol` on a large-Δ gap workload.
fn ablation_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_phases");
    group.sample_size(10);
    let eps = Epsilon::new(1, 4).unwrap();
    let mut w = GapWorkload::new(30, 2, 1 << 36, 1 << 8, 30, 0, 5);
    let rows: Vec<Vec<u64>> = (0..80).map(|_| w.next_step()).collect();
    group.bench_function("plain_midpoint_exact", |b| {
        b.iter(|| {
            let mut net = DeterministicEngine::new(30, 1);
            let mut monitor = ExactTopKMonitor::new(2);
            run_on_rows(
                &mut monitor,
                &mut net,
                rows.iter().cloned(),
                Epsilon::new(1, 1000).unwrap(),
            )
        });
    });
    group.bench_function("phase_based_topk_protocol", |b| {
        b.iter(|| {
            let mut net = DeterministicEngine::new(30, 1);
            let mut monitor = TopKMonitor::new(2, eps);
            run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
        });
    });
    group.finish();
}

/// Ablation C: deterministic in-process engine vs the threaded crossbeam engine
/// on the same protocol run (identical message counts, different wall clock).
fn ablation_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_engines");
    group.sample_size(10);
    let eps = Epsilon::TENTH;
    let mut w = GapWorkload::standard(16, 2, 100_000, 3);
    let rows: Vec<Vec<u64>> = (0..40).map(|_| w.next_step()).collect();
    group.bench_function("deterministic_engine", |b| {
        b.iter(|| {
            let mut net = DeterministicEngine::new(16, 2);
            let mut monitor = TopKMonitor::new(2, eps);
            run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
        });
    });
    group.bench_function("threaded_engine", |b| {
        b.iter(|| {
            let mut net = ThreadedEngine::new(16, 2);
            let mut monitor = TopKMonitor::new(2, eps);
            run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_violation_detection,
    ablation_phases,
    ablation_engines
);
criterion_main!(benches);
