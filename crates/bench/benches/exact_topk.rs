//! Criterion bench for the exact top-k monitor (Corollary 3.3, experiment E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::monitor::run_on_rows;
use topk_core::ExactTopKMonitor;
use topk_gen::{RandomWalkWorkload, Workload};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn bench_exact_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_topk");
    group.sample_size(10);
    for &delta in &[1u64 << 12, 1 << 20] {
        let mut w = RandomWalkWorkload::new(40, delta, (delta / 64).max(1), 0.6, 3);
        let rows: Vec<Vec<u64>> = (0..100).map(|_| w.next_step()).collect();
        group.bench_with_input(
            BenchmarkId::new("random_walk_100_steps", delta),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut net = DeterministicEngine::new(40, 1);
                    let mut monitor = ExactTopKMonitor::new(4);
                    run_on_rows(
                        &mut monitor,
                        &mut net,
                        rows.iter().cloned(),
                        Epsilon::new(1, 1000).unwrap(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact_topk);
criterion_main!(benches);
