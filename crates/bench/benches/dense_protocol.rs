//! Criterion bench for `DenseProtocol` (Theorem 5.8, experiment E6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::monitor::run_on_rows;
use topk_core::{CombinedMonitor, DenseMonitor};
use topk_gen::{NoiseOscillationWorkload, Workload};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_protocol");
    group.sample_size(10);
    let eps = Epsilon::TENTH;
    for &sigma in &[8usize, 24] {
        let mut w = NoiseOscillationWorkload::new(48, 4, sigma, 1 << 20, eps, 13);
        let rows: Vec<Vec<u64>> = (0..100).map(|_| w.next_step()).collect();
        group.bench_with_input(
            BenchmarkId::new("dense_100_steps_sigma", sigma),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut net = DeterministicEngine::new(48, 5);
                    let mut monitor = DenseMonitor::new(8, eps);
                    run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("combined_100_steps_sigma", sigma),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut net = DeterministicEngine::new(48, 5);
                    let mut monitor = CombinedMonitor::new(8, eps);
                    run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dense);
criterion_main!(benches);
