//! Criterion bench for the ε/2-gap algorithm (Corollary 5.9, experiment E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::monitor::run_on_rows;
use topk_core::HalfEpsMonitor;
use topk_gen::{NoiseOscillationWorkload, Workload};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn bench_half_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("half_eps");
    group.sample_size(10);
    let eps = Epsilon::TENTH;
    for &sigma in &[8usize, 24] {
        let mut w = NoiseOscillationWorkload::new(48, 4, sigma, 1 << 20, eps.halved(), 17);
        let rows: Vec<Vec<u64>> = (0..100).map(|_| w.next_step()).collect();
        group.bench_with_input(
            BenchmarkId::new("half_eps_100_steps_sigma", sigma),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut net = DeterministicEngine::new(48, 9);
                    let mut monitor = HalfEpsMonitor::new(8, eps);
                    run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_half_eps);
criterion_main!(benches);
