//! Criterion bench for `TopKProtocol` (Theorem 4.5, experiment E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topk_core::monitor::run_on_rows;
use topk_core::TopKMonitor;
use topk_gen::{GapWorkload, Workload};
use topk_model::Epsilon;
use topk_net::DeterministicEngine;

fn bench_topk_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_protocol");
    group.sample_size(10);
    for &inv_eps in &[2u32, 16, 256] {
        let eps = Epsilon::new(1, inv_eps).unwrap();
        let mut w = GapWorkload::new(40, 4, 1 << 28, 16, 40, 0, 7);
        let rows: Vec<Vec<u64>> = (0..100).map(|_| w.next_step()).collect();
        group.bench_with_input(
            BenchmarkId::new("gap_100_steps_eps", format!("1/{inv_eps}")),
            &rows,
            |b, rows| {
                b.iter(|| {
                    let mut net = DeterministicEngine::new(40, 1);
                    let mut monitor = TopKMonitor::new(4, eps);
                    run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), eps)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topk_protocol);
criterion_main!(benches);
