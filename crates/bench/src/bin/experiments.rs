//! Experiment harness binary.
//!
//! ```text
//! cargo run -p topk-bench --bin experiments --release            # all experiments, full scale
//! cargo run -p topk-bench --bin experiments --release -- e1 e5   # a subset
//! cargo run -p topk-bench --bin experiments --release -- --small # quick smoke run
//! cargo run -p topk-bench --bin experiments --release -- --json results/
//! cargo run -p topk-bench --bin experiments --release -- --throughput          # engine bench
//! cargo run -p topk-bench --bin experiments --release -- --throughput --quick  # CI smoke
//! ```
//!
//! Prints one aligned table per experiment (the tables quoted in
//! EXPERIMENTS.md) and optionally writes each as JSON into a directory.
//!
//! `--throughput` runs the engine throughput benchmark instead (baseline vs.
//! indexed engine, see `topk_bench::throughput`), writes
//! `BENCH_throughput.json` (path overridable with `--out FILE`) and exits
//! non-zero if the indexed engine regresses below the CI floors.

use std::path::PathBuf;
use topk_bench::experiments::{self, Scale};
use topk_bench::{throughput, ExperimentTable};

fn run_throughput_bench(quick: bool, out: PathBuf) -> ! {
    let report = throughput::run_throughput(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, throughput::to_json(&report)).expect("write throughput json");
    eprintln!("wrote {}", out.display());
    for s in &report.speedups_dense {
        println!(
            "speedup {:>12} n={:>7}: {:>8.1}x (indexed vs baseline, dense delivery)",
            s.generator, s.n, s.speedup
        );
    }
    let failures = throughput::check_floors(&report);
    if failures.is_empty() {
        println!(
            "floors ok: indexed >= {}x baseline and >= {} steps/s at n=1e5 (noise, dense)",
            throughput::SPEEDUP_FLOOR,
            throughput::ABSOLUTE_FLOOR
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut throughput_mode = false;
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => scale = Scale::Small,
            "--throughput" => throughput_mode = true,
            "--quick" => quick = true,
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    std::process::exit(2);
                };
                out = Some(PathBuf::from(path));
            }
            "--json" => {
                json_dir = iter.next().map(PathBuf::from);
                if json_dir.is_none() {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--small] [--json DIR] [e1 e2 ... e8]\n       experiments --throughput [--quick] [--out FILE]"
                );
                return;
            }
            other => wanted.push(other.to_lowercase()),
        }
    }
    if throughput_mode {
        if scale == Scale::Small || json_dir.is_some() || !wanted.is_empty() {
            eprintln!("--throughput does not combine with --small/--json/experiment ids (use --quick and --out instead)");
            std::process::exit(2);
        }
        run_throughput_bench(
            quick,
            out.unwrap_or_else(|| PathBuf::from("BENCH_throughput.json")),
        );
    }
    if quick || out.is_some() {
        eprintln!("--quick/--out only apply to --throughput (did you mean --small/--json?)");
        std::process::exit(2);
    }

    let run = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);
    let mut tables: Vec<ExperimentTable> = Vec::new();
    if run("e1") {
        tables.push(experiments::e1_existence(scale));
    }
    if run("e2") {
        tables.push(experiments::e2_maximum(scale));
    }
    if run("e3") {
        tables.push(experiments::e3_exact_topk(scale));
    }
    if run("e4") {
        tables.push(experiments::e4_topk_protocol(scale));
    }
    if run("e5") {
        tables.push(experiments::e5_lower_bound(scale));
    }
    if run("e6") {
        tables.push(experiments::e6_dense(scale));
    }
    if run("e7") {
        tables.push(experiments::e7_half_eps(scale));
    }
    if run("e8") {
        tables.push(experiments::e8_crossover(scale));
    }

    for table in &tables {
        println!("{table}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output directory");
        for table in &tables {
            let path = dir.join(format!("{}.json", table.id.to_lowercase()));
            std::fs::write(&path, table.to_json()).expect("write json table");
            eprintln!("wrote {}", path.display());
        }
    }
}
