//! Experiment harness binary.
//!
//! ```text
//! cargo run -p topk-bench --bin experiments --release            # all experiments, full scale
//! cargo run -p topk-bench --bin experiments --release -- e1 e5   # a subset
//! cargo run -p topk-bench --bin experiments --release -- --small # quick smoke run
//! cargo run -p topk-bench --bin experiments --release -- --json results/
//! cargo run -p topk-bench --bin experiments --release -- --throughput               # engine bench
//! cargo run -p topk-bench --bin experiments --release -- --throughput --quick       # CI smoke
//! cargo run -p topk-bench --bin experiments --release -- --throughput --sharded 8   # 8 workers
//! cargo run -p topk-bench --bin experiments --release -- --scaling --quick          # scaling smoke
//! cargo run -p topk-bench --bin experiments --release -- --check-floors FILE.json   # validate only
//! cargo run -p topk-bench --bin experiments --release -- --campaign                 # scenario grid
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick         # CI smoke
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick --faults-only
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick --membership-only
//! cargo run -p topk-bench --bin experiments --release -- --check-competitive-floors FILE.json
//! ```
//!
//! Prints one aligned table per experiment (the tables quoted in
//! EXPERIMENTS.md) and optionally writes each as JSON into a directory.
//!
//! `--throughput` runs the engine throughput benchmark instead (baseline vs.
//! indexed vs. sharded engine, see `topk_bench::throughput`), writes
//! `BENCH_throughput.json` (path overridable with `--out FILE`) and exits
//! non-zero if an engine regresses below the CI floors. `--sharded <threads>`
//! sets the sharded engine's worker count (default 4). `--remote <conns>`
//! measures the TCP-loopback `RemoteEngine` on `<conns>` shard connections —
//! steps/sec plus the wire-level frames/sec and bytes per model message —
//! and writes `BENCH_remote.json`; on its own it runs just that axis,
//! combined with `--throughput` it runs after the in-process matrix.
//! `--check-floors FILE` re-validates an existing report — CI uses it to
//! hold the *committed* full-scale `BENCH_throughput.json` to the `n = 10⁶`
//! floors without re-measuring on shared runners.
//!
//! `--scaling` measures just the multi-core scaling curve (the sharded engine
//! across worker counts on the noise/dense cell), writes
//! `BENCH_scaling.json` — or `BENCH_scaling_quick.json` with `--quick` — and
//! exits non-zero if a point misses the parallel-efficiency floor. The CI
//! scaling-smoke job runs the quick curve on every push; the committed
//! full-scale curve is embedded in `BENCH_throughput.json` and guarded by
//! `--check-floors`.
//!
//! `--campaign` runs the scenario campaign (see `topk_bench::campaign`): the
//! full generator × protocol × ε × n grid with empirical competitive ratios
//! against OPT, written to `BENCH_competitive.json` (overridable with `--out`)
//! and self-validated against the floor table. `--baseline COMMITTED.json`
//! additionally holds every freshly measured cell to the ceilings of the
//! committed report — the CI ratchet (the full grid contains the quick grid
//! verbatim, and the cells are bit-deterministic, so a regression past the
//! committed headroom fails the run). `--faults-only` re-measures just the
//! fault axis (`topk_bench::campaign::run_faults_report`) — the cheap smoke
//! CI runs on every push, written to `BENCH_faults_quick.json` by default and
//! ratcheted against the committed full report's fault cells via
//! `--baseline`. `--membership-only` is the same smoke mode for the
//! membership axis (`topk_bench::campaign::run_membership_report`): the
//! churn grid re-measured and ratcheted against the committed report's
//! membership cells, written to `BENCH_membership_quick.json` by default.
//! `--check-competitive-floors FILE` re-validates a committed
//! campaign report without re-measuring. All numeric bars of both check
//! modes live in `topk_bench::floors::FloorTable`.

use std::path::PathBuf;
use topk_bench::experiments::{self, Scale};
use topk_bench::{campaign, throughput, ExperimentTable, FloorTable};

fn report_floors(report: &throughput::ThroughputReport) -> ! {
    let failures = throughput::check_floors(report);
    if failures.is_empty() {
        let floors = FloorTable::STANDARD.throughput;
        println!(
            "floors ok: indexed >= {}x baseline (and >= {} steps/s) at n=1e5, sharded >= {}x indexed at n=1e6 (or >= {}x at n=1e5 for quick runs), noise/dense; scaling curve >= {} worker counts with parallel efficiency >= {}",
            floors.indexed_speedup,
            floors.indexed_absolute_steps_per_sec,
            floors.sharded_speedup_full,
            floors.sharded_speedup_quick,
            floors.scaling_min_worker_counts,
            floors.scaling_efficiency_full,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn report_competitive_floors(report: &campaign::CompetitiveReport) -> ! {
    let failures = campaign::check_competitive_floors(report);
    if failures.is_empty() {
        let floors = FloorTable::STANDARD.competitive;
        println!(
            "competitive floors ok: {} cells, >= {} protocols x >= {} families, 0 invalid steps, every ratio within its ceiling",
            report.cells.len(),
            floors.min_protocols,
            floors.min_generators,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("COMPETITIVE FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_faults_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_faults_report(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write fault campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The fault ratchet: hold the freshly measured fault cells to the
        // ratio and degradation ceilings committed in the full report.
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAULT FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} fault cells within the ceilings committed in {}",
            report.fault_cells.len(),
            path.display()
        );
    }
    let floors = FloorTable::STANDARD.competitive;
    let failures = campaign::check_fault_cells(&report.fault_cells, &floors, &report.scale);
    if failures.is_empty() {
        println!(
            "fault floors ok: {} fault cells across >= {} families, every ratio/degradation within its ceiling, damage within {}‰ of steps",
            report.fault_cells.len(),
            floors.min_fault_families,
            floors.fault_invalid_fraction_permille,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("FAULT FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_membership_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_membership_report(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write membership campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The membership ratchet: hold the freshly measured membership cells
        // to the ratio and degradation ceilings committed in the full report.
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("MEMBERSHIP FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} membership cells within the ceilings committed in {}",
            report.membership_cells.len(),
            path.display()
        );
    }
    let floors = FloorTable::STANDARD.competitive;
    let failures =
        campaign::check_membership_cells(&report.membership_cells, &floors, &report.scale);
    if failures.is_empty() {
        println!(
            "membership floors ok: {} membership cells across >= {} churn plans, every ratio/degradation within its ceiling, invalid steps within {}‰",
            report.membership_cells.len(),
            floors.min_membership_plans,
            floors.membership_invalid_fraction_permille,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("MEMBERSHIP FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_campaign_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_campaign(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The ratchet: hold the freshly measured cells to the ceilings of the
        // committed report (the full grid contains the quick grid verbatim).
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("COMPETITIVE FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} measured cells within the ceilings committed in {}",
            report.cells.len(),
            path.display()
        );
    }
    report_competitive_floors(&report)
}

fn check_competitive_floors_only(path: PathBuf) -> ! {
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report: campaign::CompetitiveReport = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    eprintln!(
        "checking competitive floors of {} ({} scale, {} cells)",
        path.display(),
        report.scale,
        report.cells.len()
    );
    // The committed report this mode guards must be a full-scale run — a
    // quick-scale file would cover a thinner grid than the acceptance bar.
    if report.scale != "full" {
        eprintln!(
            "COMPETITIVE FLOOR REGRESSION: {} is a '{}'-scale report; the committed report must be full-scale",
            path.display(),
            report.scale
        );
        std::process::exit(1);
    }
    report_competitive_floors(&report)
}

fn run_scaling_bench(quick: bool, out: PathBuf) -> ! {
    let report = throughput::run_scaling(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, throughput::scaling_to_json(&report)).expect("write scaling json");
    eprintln!("wrote {}", out.display());
    let failures = throughput::check_scaling_floors(&report);
    if failures.is_empty() {
        let floors = FloorTable::STANDARD.throughput;
        println!(
            "scaling floors ok: {} worker counts on {} cores, every point's parallel efficiency >= {} (full) / {} (quick)",
            report.rows.len(),
            report.cores,
            floors.scaling_efficiency_full,
            floors.scaling_efficiency_quick,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("SCALING FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_remote_bench(quick: bool, conns: usize) {
    let remote = throughput::run_remote(quick, conns, |line| eprintln!("{line}"));
    let remote_out = PathBuf::from("BENCH_remote.json");
    std::fs::write(&remote_out, throughput::remote_to_json(&remote)).expect("write remote json");
    eprintln!("wrote {}", remote_out.display());
}

fn run_throughput_bench(
    quick: bool,
    sharded_workers: usize,
    remote_conns: Option<usize>,
    out: PathBuf,
) -> ! {
    let report = throughput::run_throughput(quick, sharded_workers, |line| eprintln!("{line}"));
    std::fs::write(&out, throughput::to_json(&report)).expect("write throughput json");
    eprintln!("wrote {}", out.display());
    if let Some(conns) = remote_conns {
        run_remote_bench(quick, conns);
    }
    for s in &report.speedups_dense {
        println!(
            "speedup {:>12} n={:>8}: {:>8.1}x (indexed vs baseline, dense delivery)",
            s.generator, s.n, s.speedup
        );
    }
    for s in &report.speedups_sharded {
        println!(
            "speedup {:>12} n={:>8}: {:>8.1}x (sharded vs indexed, dense delivery)",
            s.generator, s.n, s.speedup
        );
    }
    report_floors(&report)
}

fn check_floors_only(path: PathBuf) -> ! {
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report: throughput::ThroughputReport = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    eprintln!(
        "checking floors of {} ({} scale, {} rows)",
        path.display(),
        report.scale,
        report.rows.len()
    );
    // The committed report this mode guards must be a full-scale run — a
    // quick-scale file would only ever be held to the loose smoke floors.
    if report.scale != "full" {
        eprintln!(
            "FLOOR REGRESSION: {} is a '{}'-scale report; the committed benchmark must be full-scale",
            path.display(),
            report.scale
        );
        std::process::exit(1);
    }
    report_floors(&report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut throughput_mode = false;
    let mut scaling_mode = false;
    let mut campaign_mode = false;
    let mut faults_only = false;
    let mut membership_only = false;
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut sharded_workers = 4usize;
    let mut sharded_set = false;
    let mut remote_conns: Option<usize> = None;
    let mut check_floors_path: Option<PathBuf> = None;
    let mut check_competitive_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => scale = Scale::Small,
            "--throughput" => throughput_mode = true,
            "--scaling" => scaling_mode = true,
            "--campaign" => campaign_mode = true,
            "--faults-only" => faults_only = true,
            "--membership-only" => membership_only = true,
            "--quick" => quick = true,
            "--sharded" => {
                let parsed = iter.next().and_then(|w| w.parse::<usize>().ok());
                let Some(workers) = parsed.filter(|&w| w >= 1) else {
                    eprintln!("--sharded requires a worker count >= 1");
                    std::process::exit(2);
                };
                sharded_workers = workers;
                sharded_set = true;
            }
            "--remote" => {
                let parsed = iter.next().and_then(|w| w.parse::<usize>().ok());
                let Some(conns) = parsed.filter(|&w| w >= 1) else {
                    eprintln!("--remote requires a connection count >= 1");
                    std::process::exit(2);
                };
                remote_conns = Some(conns);
            }
            "--check-floors" => {
                let Some(path) = iter.next() else {
                    eprintln!("--check-floors requires a json file argument");
                    std::process::exit(2);
                };
                check_floors_path = Some(PathBuf::from(path));
            }
            "--check-competitive-floors" => {
                let Some(path) = iter.next() else {
                    eprintln!("--check-competitive-floors requires a json file argument");
                    std::process::exit(2);
                };
                check_competitive_path = Some(PathBuf::from(path));
            }
            "--baseline" => {
                let Some(path) = iter.next() else {
                    eprintln!("--baseline requires a json file argument");
                    std::process::exit(2);
                };
                baseline_path = Some(PathBuf::from(path));
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    std::process::exit(2);
                };
                out = Some(PathBuf::from(path));
            }
            "--json" => {
                json_dir = iter.next().map(PathBuf::from);
                if json_dir.is_none() {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--small] [--json DIR] [e1 e2 ... e8]\n       experiments --throughput [--quick] [--sharded THREADS] [--remote CONNS] [--out FILE]\n       experiments --scaling [--quick] [--out FILE]\n       experiments --campaign [--quick] [--faults-only | --membership-only] [--out FILE] [--baseline COMMITTED.json]\n       experiments --check-floors FILE.json\n       experiments --check-competitive-floors FILE.json"
                );
                return;
            }
            other => wanted.push(other.to_lowercase()),
        }
    }
    if let Some(path) = check_floors_path {
        if throughput_mode
            || scaling_mode
            || campaign_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || quick
            || out.is_some()
            || sharded_set
            || remote_conns.is_some()
            || check_competitive_path.is_some()
            || baseline_path.is_some()
            || faults_only
            || membership_only
        {
            eprintln!("--check-floors does not combine with other modes or flags");
            std::process::exit(2);
        }
        check_floors_only(path);
    }
    if let Some(path) = check_competitive_path {
        if throughput_mode
            || scaling_mode
            || campaign_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || quick
            || out.is_some()
            || sharded_set
            || remote_conns.is_some()
            || baseline_path.is_some()
            || faults_only
            || membership_only
        {
            eprintln!("--check-competitive-floors does not combine with other modes or flags");
            std::process::exit(2);
        }
        check_competitive_floors_only(path);
    }
    if campaign_mode {
        if throughput_mode
            || scaling_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || sharded_set
            || remote_conns.is_some()
        {
            eprintln!("--campaign does not combine with --throughput/--small/--json/--sharded/--remote/experiment ids (use --quick, --out and --baseline)");
            std::process::exit(2);
        }
        if faults_only && membership_only {
            eprintln!("--faults-only and --membership-only are mutually exclusive");
            std::process::exit(2);
        }
        // Quick runs default to their own file: a bare `--campaign --quick`
        // must never clobber the committed full-scale report.
        let default_out = if faults_only {
            if quick {
                "BENCH_faults_quick.json"
            } else {
                "BENCH_faults.json"
            }
        } else if membership_only {
            if quick {
                "BENCH_membership_quick.json"
            } else {
                "BENCH_membership.json"
            }
        } else if quick {
            "BENCH_competitive_quick.json"
        } else {
            "BENCH_competitive.json"
        };
        let out = out.unwrap_or_else(|| PathBuf::from(default_out));
        if faults_only {
            run_faults_bench(quick, out, baseline_path);
        }
        if membership_only {
            run_membership_bench(quick, out, baseline_path);
        }
        run_campaign_bench(quick, out, baseline_path);
    }
    if faults_only {
        eprintln!("--faults-only only applies to --campaign");
        std::process::exit(2);
    }
    if membership_only {
        eprintln!("--membership-only only applies to --campaign");
        std::process::exit(2);
    }
    if baseline_path.is_some() {
        eprintln!("--baseline only applies to --campaign");
        std::process::exit(2);
    }
    if scaling_mode {
        if throughput_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || sharded_set
            || remote_conns.is_some()
        {
            eprintln!("--scaling does not combine with --throughput/--small/--json/--sharded/--remote/experiment ids (use --quick and --out)");
            std::process::exit(2);
        }
        // Quick runs default to their own file so a smoke run never clobbers
        // a committed full-scale curve.
        let default_out = if quick {
            "BENCH_scaling_quick.json"
        } else {
            "BENCH_scaling.json"
        };
        run_scaling_bench(quick, out.unwrap_or_else(|| PathBuf::from(default_out)));
    }
    if throughput_mode {
        if scale == Scale::Small || json_dir.is_some() || !wanted.is_empty() {
            eprintln!("--throughput does not combine with --small/--json/experiment ids (use --quick and --out instead)");
            std::process::exit(2);
        }
        run_throughput_bench(
            quick,
            sharded_workers,
            remote_conns,
            out.unwrap_or_else(|| PathBuf::from("BENCH_throughput.json")),
        );
    }
    if let Some(conns) = remote_conns {
        // `--remote` on its own: just the transport axis, no in-process matrix.
        if scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || out.is_some()
            || sharded_set
        {
            eprintln!(
                "--remote on its own does not combine with --small/--json/--out/--sharded/experiment ids"
            );
            std::process::exit(2);
        }
        run_remote_bench(quick, conns);
        return;
    }
    if quick || out.is_some() {
        eprintln!(
            "--quick/--out only apply to --throughput/--scaling/--remote (did you mean --small/--json?)"
        );
        std::process::exit(2);
    }

    let run = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);
    let mut tables: Vec<ExperimentTable> = Vec::new();
    if run("e1") {
        tables.push(experiments::e1_existence(scale));
    }
    if run("e2") {
        tables.push(experiments::e2_maximum(scale));
    }
    if run("e3") {
        tables.push(experiments::e3_exact_topk(scale));
    }
    if run("e4") {
        tables.push(experiments::e4_topk_protocol(scale));
    }
    if run("e5") {
        tables.push(experiments::e5_lower_bound(scale));
    }
    if run("e6") {
        tables.push(experiments::e6_dense(scale));
    }
    if run("e7") {
        tables.push(experiments::e7_half_eps(scale));
    }
    if run("e8") {
        tables.push(experiments::e8_crossover(scale));
    }

    for table in &tables {
        println!("{table}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output directory");
        for table in &tables {
            let path = dir.join(format!("{}.json", table.id.to_lowercase()));
            std::fs::write(&path, table.to_json()).expect("write json table");
            eprintln!("wrote {}", path.display());
        }
    }
}
