//! Experiment harness binary.
//!
//! ```text
//! cargo run -p topk-bench --bin experiments --release            # all experiments, full scale
//! cargo run -p topk-bench --bin experiments --release -- e1 e5   # a subset
//! cargo run -p topk-bench --bin experiments --release -- --small # quick smoke run
//! cargo run -p topk-bench --bin experiments --release -- --json results/
//! ```
//!
//! Prints one aligned table per experiment (the tables quoted in
//! EXPERIMENTS.md) and optionally writes each as JSON into a directory.

use std::path::PathBuf;
use topk_bench::experiments::{self, Scale};
use topk_bench::ExperimentTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => scale = Scale::Small,
            "--json" => {
                json_dir = iter.next().map(PathBuf::from);
                if json_dir.is_none() {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!("usage: experiments [--small] [--json DIR] [e1 e2 ... e8]");
                return;
            }
            other => wanted.push(other.to_lowercase()),
        }
    }

    let run = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);
    let mut tables: Vec<ExperimentTable> = Vec::new();
    if run("e1") {
        tables.push(experiments::e1_existence(scale));
    }
    if run("e2") {
        tables.push(experiments::e2_maximum(scale));
    }
    if run("e3") {
        tables.push(experiments::e3_exact_topk(scale));
    }
    if run("e4") {
        tables.push(experiments::e4_topk_protocol(scale));
    }
    if run("e5") {
        tables.push(experiments::e5_lower_bound(scale));
    }
    if run("e6") {
        tables.push(experiments::e6_dense(scale));
    }
    if run("e7") {
        tables.push(experiments::e7_half_eps(scale));
    }
    if run("e8") {
        tables.push(experiments::e8_crossover(scale));
    }

    for table in &tables {
        println!("{table}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output directory");
        for table in &tables {
            let path = dir.join(format!("{}.json", table.id.to_lowercase()));
            std::fs::write(&path, table.to_json()).expect("write json table");
            eprintln!("wrote {}", path.display());
        }
    }
}
