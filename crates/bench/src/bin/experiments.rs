//! Experiment harness binary.
//!
//! ```text
//! cargo run -p topk-bench --bin experiments --release            # all experiments, full scale
//! cargo run -p topk-bench --bin experiments --release -- e1 e5   # a subset
//! cargo run -p topk-bench --bin experiments --release -- --small # quick smoke run
//! cargo run -p topk-bench --bin experiments --release -- --json results/
//! cargo run -p topk-bench --bin experiments --release -- --throughput               # engine bench
//! cargo run -p topk-bench --bin experiments --release -- --throughput --quick       # CI smoke
//! cargo run -p topk-bench --bin experiments --release -- --throughput --sharded 8   # 8 workers
//! cargo run -p topk-bench --bin experiments --release -- --scaling --quick          # scaling smoke
//! cargo run -p topk-bench --bin experiments --release -- --check-floors FILE.json   # validate only
//! cargo run -p topk-bench --bin experiments --release -- --campaign                 # scenario grid
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick         # CI smoke
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick --faults-only
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick --membership-only
//! cargo run -p topk-bench --bin experiments --release -- --campaign --quick --multiquery-only
//! cargo run -p topk-bench --bin experiments --release -- --check-competitive-floors FILE.json
//! ```
//!
//! Prints one aligned table per experiment (the tables quoted in
//! EXPERIMENTS.md) and optionally writes each as JSON into a directory.
//!
//! `--throughput` runs the engine throughput benchmark instead (baseline vs.
//! indexed vs. sharded engine, see `topk_bench::throughput`), writes
//! `BENCH_throughput.json` (path overridable with `--out FILE`) and exits
//! non-zero if an engine regresses below the CI floors. `--sharded <threads>`
//! sets the sharded engine's worker count (default 4). `--remote <conns>`
//! measures the TCP-loopback `RemoteEngine` on `<conns>` shard connections —
//! steps/sec plus the wire-level frames/sec and bytes per model message —
//! and writes `BENCH_remote.json`; on its own it runs just that axis,
//! combined with `--throughput` it runs after the in-process matrix.
//! `--check-floors FILE` re-validates an existing report — CI uses it to
//! hold the *committed* full-scale `BENCH_throughput.json` to the `n = 10⁶`
//! floors without re-measuring on shared runners.
//!
//! `--scaling` measures just the multi-core scaling curve (the sharded engine
//! across worker counts on the noise/dense cell), writes
//! `BENCH_scaling.json` — or `BENCH_scaling_quick.json` with `--quick` — and
//! exits non-zero if a point misses the parallel-efficiency floor. The CI
//! scaling-smoke job runs the quick curve on every push; the committed
//! full-scale curve is embedded in `BENCH_throughput.json` and guarded by
//! `--check-floors`.
//!
//! `--campaign` runs the scenario campaign (see `topk_bench::campaign`): the
//! full generator × protocol × ε × n grid with empirical competitive ratios
//! against OPT, written to `BENCH_competitive.json` (overridable with `--out`)
//! and self-validated against the floor table. `--baseline COMMITTED.json`
//! additionally holds every freshly measured cell to the ceilings of the
//! committed report — the CI ratchet (the full grid contains the quick grid
//! verbatim, and the cells are bit-deterministic, so a regression past the
//! committed headroom fails the run). `--faults-only` re-measures just the
//! fault axis (`topk_bench::campaign::run_faults_report`) — the cheap smoke
//! CI runs on every push, written to `BENCH_faults_quick.json` by default and
//! ratcheted against the committed full report's fault cells via
//! `--baseline`. `--membership-only` is the same smoke mode for the
//! membership axis (`topk_bench::campaign::run_membership_report`): the
//! churn grid re-measured and ratcheted against the committed report's
//! membership cells, written to `BENCH_membership_quick.json` by default.
//! `--multiquery-only` is the same smoke mode for the multi-query axis
//! (`topk_bench::campaign::run_multiquery_report`): the shared-population
//! plan grid re-measured, its amortization held to the committed ceilings,
//! written to `BENCH_multiquery_quick.json` by default.
//! `--check-competitive-floors FILE` re-validates a committed
//! campaign report without re-measuring. All numeric bars of both check
//! modes live in `topk_bench::floors::FloorTable`.
//!
//! The *scenario-file* modes work on the declarative JSON scenarios under
//! `scenarios/` (schema in `docs/SCENARIOS.md`, loader in
//! `topk_bench::scenario`): `--scenario FILE` runs one cell under every
//! protocol (its fault/membership companions included), `--scenario-dir DIR`
//! runs a whole library (`--quick` caps the horizon and skips the largest
//! populations, logging every cap). `--emit-scenarios DIR` regenerates the
//! canonical library from the compiled-in grids, and `--check-scenarios DIR`
//! fails when the directory differs from that derivation by a single byte —
//! the CI guard that keeps `scenarios/` and `standard_grid` the same object.
//!
//! The *trace* modes record and re-drive full runs (`topk_bench::replay`,
//! wire format in `topk_wire::trace`): `--scenario FILE --record OUT.trace`
//! records the run (protocol selectable with `--protocol NAME`), and
//! `--replay FILE.trace` re-drives the recording through all six engines —
//! or one, with `--engine NAME` — and exits non-zero unless every reply,
//! message counter and the final filter/value state match bit for bit.

use std::path::{Path, PathBuf};
use topk_bench::experiments::{self, Scale};
use topk_bench::{campaign, replay, scenario, throughput, ExperimentTable, FloorTable};
use topk_offline::PhaseSolver;

fn report_floors(report: &throughput::ThroughputReport) -> ! {
    let failures = throughput::check_floors(report);
    if failures.is_empty() {
        let floors = FloorTable::STANDARD.throughput;
        println!(
            "floors ok: indexed >= {}x baseline (and >= {} steps/s) at n=1e5, sharded >= {}x indexed at n=1e6 (or >= {}x at n=1e5 for quick runs), noise/dense; scaling curve >= {} worker counts with parallel efficiency >= {}",
            floors.indexed_speedup,
            floors.indexed_absolute_steps_per_sec,
            floors.sharded_speedup_full,
            floors.sharded_speedup_quick,
            floors.scaling_min_worker_counts,
            floors.scaling_efficiency_full,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn report_competitive_floors(report: &campaign::CompetitiveReport) -> ! {
    let failures = campaign::check_competitive_floors(report);
    if failures.is_empty() {
        let floors = FloorTable::STANDARD.competitive;
        println!(
            "competitive floors ok: {} cells, >= {} protocols x >= {} families, 0 invalid steps, every ratio within its ceiling",
            report.cells.len(),
            floors.min_protocols,
            floors.min_generators,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("COMPETITIVE FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_faults_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_faults_report(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write fault campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The fault ratchet: hold the freshly measured fault cells to the
        // ratio and degradation ceilings committed in the full report.
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAULT FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} fault cells within the ceilings committed in {}",
            report.fault_cells.len(),
            path.display()
        );
    }
    let floors = FloorTable::STANDARD.competitive;
    let failures = campaign::check_fault_cells(&report.fault_cells, &floors, &report.scale);
    if failures.is_empty() {
        println!(
            "fault floors ok: {} fault cells across >= {} families, every ratio/degradation within its ceiling, damage within {}‰ of steps",
            report.fault_cells.len(),
            floors.min_fault_families,
            floors.fault_invalid_fraction_permille,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("FAULT FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_membership_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_membership_report(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write membership campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The membership ratchet: hold the freshly measured membership cells
        // to the ratio and degradation ceilings committed in the full report.
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("MEMBERSHIP FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} membership cells within the ceilings committed in {}",
            report.membership_cells.len(),
            path.display()
        );
    }
    let floors = FloorTable::STANDARD.competitive;
    let failures =
        campaign::check_membership_cells(&report.membership_cells, &floors, &report.scale);
    if failures.is_empty() {
        println!(
            "membership floors ok: {} membership cells across >= {} churn plans, every ratio/degradation within its ceiling, invalid steps within {}‰",
            report.membership_cells.len(),
            floors.min_membership_plans,
            floors.membership_invalid_fraction_permille,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("MEMBERSHIP FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_multiquery_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_multiquery_report(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write multiquery campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The multi-query ratchet: hold the freshly measured amortization of
        // every cell to the ceiling committed in the full report.
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("MULTIQUERY FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} multi-query cells within the amortization ceilings committed in {}",
            report.multiquery_cells.len(),
            path.display()
        );
    }
    let floors = FloorTable::STANDARD.competitive;
    let failures =
        campaign::check_multiquery_cells(&report.multiquery_cells, &floors, &report.scale);
    if failures.is_empty() {
        println!(
            "multiquery floors ok: {} multi-query cells across twin/overlap/disjoint plans, every amortization within its ceiling, invalid steps within {}‰, shared runs amortize on at least one cell",
            report.multiquery_cells.len(),
            floors.multiquery_invalid_fraction_permille,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("MULTIQUERY FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_campaign_bench(quick: bool, out: PathBuf, baseline: Option<PathBuf>) -> ! {
    let report = campaign::run_campaign(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, campaign::to_json(&report)).expect("write campaign json");
    eprintln!("wrote {}", out.display());
    if let Some(path) = baseline {
        // The ratchet: hold the freshly measured cells to the ceilings of the
        // committed report (the full grid contains the quick grid verbatim).
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", path.display()));
        let committed: campaign::CompetitiveReport = serde_json::from_str(&json)
            .unwrap_or_else(|e| panic!("cannot parse baseline {}: {e}", path.display()));
        let failures = campaign::check_against_baseline(&report, &committed);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("COMPETITIVE FLOOR REGRESSION: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "baseline ok: all {} measured cells within the ceilings committed in {}",
            report.cells.len(),
            path.display()
        );
    }
    report_competitive_floors(&report)
}

fn check_competitive_floors_only(path: PathBuf) -> ! {
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report: campaign::CompetitiveReport = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    eprintln!(
        "checking competitive floors of {} ({} scale, {} cells)",
        path.display(),
        report.scale,
        report.cells.len()
    );
    // The committed report this mode guards must be a full-scale run — a
    // quick-scale file would cover a thinner grid than the acceptance bar.
    if report.scale != "full" {
        eprintln!(
            "COMPETITIVE FLOOR REGRESSION: {} is a '{}'-scale report; the committed report must be full-scale",
            path.display(),
            report.scale
        );
        std::process::exit(1);
    }
    report_competitive_floors(&report)
}

fn run_scaling_bench(quick: bool, out: PathBuf) -> ! {
    let report = throughput::run_scaling(quick, |line| eprintln!("{line}"));
    std::fs::write(&out, throughput::scaling_to_json(&report)).expect("write scaling json");
    eprintln!("wrote {}", out.display());
    let failures = throughput::check_scaling_floors(&report);
    if failures.is_empty() {
        let floors = FloorTable::STANDARD.throughput;
        println!(
            "scaling floors ok: {} worker counts on {} cores, every point's parallel efficiency >= {} (full) / {} (quick)",
            report.rows.len(),
            report.cores,
            floors.scaling_efficiency_full,
            floors.scaling_efficiency_quick,
        );
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("SCALING FLOOR REGRESSION: {f}");
    }
    std::process::exit(1);
}

fn run_remote_bench(quick: bool, conns: usize) {
    let remote = throughput::run_remote(quick, conns, |line| eprintln!("{line}"));
    let remote_out = PathBuf::from("BENCH_remote.json");
    std::fs::write(&remote_out, throughput::remote_to_json(&remote)).expect("write remote json");
    eprintln!("wrote {}", remote_out.display());
}

fn run_throughput_bench(
    quick: bool,
    sharded_workers: usize,
    remote_conns: Option<usize>,
    out: PathBuf,
) -> ! {
    let report = throughput::run_throughput(quick, sharded_workers, |line| eprintln!("{line}"));
    std::fs::write(&out, throughput::to_json(&report)).expect("write throughput json");
    eprintln!("wrote {}", out.display());
    if let Some(conns) = remote_conns {
        run_remote_bench(quick, conns);
    }
    for s in &report.speedups_dense {
        println!(
            "speedup {:>12} n={:>8}: {:>8.1}x (indexed vs baseline, dense delivery)",
            s.generator, s.n, s.speedup
        );
    }
    for s in &report.speedups_sharded {
        println!(
            "speedup {:>12} n={:>8}: {:>8.1}x (sharded vs indexed, dense delivery)",
            s.generator, s.n, s.speedup
        );
    }
    report_floors(&report)
}

fn check_floors_only(path: PathBuf) -> ! {
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report: throughput::ThroughputReport = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e}", path.display()));
    eprintln!(
        "checking floors of {} ({} scale, {} rows)",
        path.display(),
        report.scale,
        report.rows.len()
    );
    // The committed report this mode guards must be a full-scale run — a
    // quick-scale file would only ever be held to the loose smoke floors.
    if report.scale != "full" {
        eprintln!(
            "FLOOR REGRESSION: {} is a '{}'-scale report; the committed benchmark must be full-scale",
            path.display(),
            report.scale
        );
        std::process::exit(1);
    }
    report_floors(&report)
}

fn run_emit_scenarios(dir: PathBuf) -> ! {
    match scenario::emit_library(&dir) {
        Ok(names) => {
            println!(
                "wrote {} scenario files into {} (canonical derivation of the standard grids)",
                names.len(),
                dir.display()
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("--emit-scenarios failed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_check_scenarios(dir: PathBuf) -> ! {
    let problems = scenario::check_library_sync(&dir);
    if problems.is_empty() {
        println!(
            "scenario library ok: {} canonical files, byte-identical to the compiled-in grids",
            scenario::standard_library().len()
        );
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("SCENARIO LIBRARY DRIFT: {p}");
    }
    eprintln!(
        "{} problem(s); regenerate with: experiments --emit-scenarios {}",
        problems.len(),
        dir.display()
    );
    std::process::exit(1);
}

fn load_scenario_or_exit(path: &Path) -> scenario::ScenarioFile {
    match scenario::load_scenario(path) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("invalid scenario: {e}");
            std::process::exit(1);
        }
    }
}

fn run_record(scenario_path: PathBuf, out: PathBuf, protocol_name: Option<String>) -> ! {
    let file = load_scenario_or_exit(&scenario_path);
    if file.queries.is_some() {
        eprintln!("--record takes a single-query scenario (traces record one monitor's run)");
        std::process::exit(2);
    }
    let name = protocol_name.unwrap_or_else(|| "topk_protocol".to_string());
    let Some(protocol) = campaign::ProtocolKind::from_name(&name) else {
        eprintln!(
            "--protocol: unknown protocol `{name}` (one of: {})",
            campaign::ProtocolKind::ALL.map(|p| p.name()).join(", ")
        );
        std::process::exit(2);
    };
    let (report, records) = replay::record_run(&file, protocol);
    if let Err(e) = replay::save_trace(&out, &records) {
        eprintln!("cannot write trace {}: {e}", out.display());
        std::process::exit(1);
    }
    println!(
        "recorded {}: {} under {} — {} steps, {} messages, {} records -> {}",
        file.name,
        scenario_path.display(),
        protocol.name(),
        report.steps,
        report.messages(),
        records.len(),
        out.display()
    );
    std::process::exit(0);
}

fn run_replay(path: PathBuf, engine_name: Option<String>) -> ! {
    let records = match replay::load_trace(&path) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("cannot read trace {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let kinds: Vec<replay::EngineKind> = match &engine_name {
        None => replay::EngineKind::ALL.to_vec(),
        Some(name) => {
            let Some(kind) = replay::EngineKind::ALL
                .into_iter()
                .find(|k| k.name() == *name)
            else {
                eprintln!(
                    "--engine: unknown engine `{name}` (one of: {})",
                    replay::EngineKind::ALL.map(|k| k.name()).join(", ")
                );
                std::process::exit(2);
            };
            vec![kind]
        }
    };
    let mut diverged = false;
    for kind in kinds {
        match replay::replay_trace(&records, kind) {
            Ok(outcome) if outcome.is_identical() => {
                println!(
                    "replay {:>13} ok: {} — {} steps bit-identical",
                    outcome.engine, outcome.label, outcome.steps
                );
            }
            Ok(outcome) => {
                diverged = true;
                for m in &outcome.mismatches {
                    eprintln!("REPLAY DIVERGENCE [{}]: {m}", outcome.engine);
                }
            }
            Err(e) => {
                eprintln!("replay through {} failed: {e}", kind.name());
                std::process::exit(1);
            }
        }
    }
    std::process::exit(i32::from(diverged));
}

/// Caps one scenario for a `--quick` smoke run. Returns `None` (with a log
/// line) when the cell is too large to smoke at all.
fn quick_cap(mut file: scenario::ScenarioFile) -> Option<scenario::ScenarioFile> {
    const MAX_QUICK_N: usize = 1024;
    const MAX_QUICK_STEPS: usize = 60;
    if file.spec.n > MAX_QUICK_N {
        eprintln!(
            "skip {} (n = {} exceeds the quick cap of {MAX_QUICK_N})",
            file.name, file.spec.n
        );
        return None;
    }
    if file.spec.steps > MAX_QUICK_STEPS {
        eprintln!(
            "cap  {} ({} steps -> {MAX_QUICK_STEPS} for the quick run)",
            file.name, file.spec.steps
        );
        file.spec.steps = MAX_QUICK_STEPS;
    }
    Some(file)
}

fn run_scenario_cells(files: Vec<scenario::ScenarioFile>, quick: bool) -> ! {
    let mut solver = PhaseSolver::new();
    let mut failures: Vec<String> = Vec::new();
    let mut cells = 0usize;
    for file in files {
        let Some(file) = (if quick { quick_cap(file) } else { Some(file) }) else {
            continue;
        };
        // Per-scenario floor overrides (schema v2) take effect here: the
        // file's `floors` block replaces the corresponding standard bars.
        let floors = file.effective_floors();
        if let Some(queries) = &file.queries {
            // A multi-query scenario is one shared-engine cell, not a
            // per-protocol loop — the plan embeds each query's protocol.
            let plan = campaign::MultiQueryPlanSpec {
                name: file.name.clone(),
                queries: queries.clone(),
            };
            let cell = campaign::run_multiquery_cell(&file.spec, &plan, &floors);
            cells += 1;
            println!(
                "{:<44} queries={:<2} messages={:>9} independent={:>9} amortization={:>6.3} invalid={}",
                file.name,
                queries.len(),
                cell.messages,
                cell.independent_messages,
                cell.amortization,
                cell.invalid_steps
            );
            let step_budget = (file.spec.steps * queries.len()) as u64;
            let allowed = floors.multiquery_invalid_fraction_permille * step_budget / 1000;
            if cell.invalid_steps > allowed {
                failures.push(format!(
                    "{}: {} invalid steps exceed the {}‰ multi-query bar ({} allowed)",
                    file.name,
                    cell.invalid_steps,
                    floors.multiquery_invalid_fraction_permille,
                    allowed
                ));
            }
            continue;
        }
        for protocol in campaign::ProtocolKind::ALL {
            // The clean cell is both the base measurement and the reference
            // the fault/membership companions are compared against.
            let clean = campaign::run_cell(&file.spec, protocol, &floors, &mut solver);
            cells += 1;
            if let Some(fault) = &file.fault {
                let cell = campaign::run_fault_cell(
                    &file.spec,
                    fault,
                    protocol,
                    &floors,
                    &mut solver,
                    clean.messages,
                );
                println!(
                    "{:<44} {:>13} fault={:<7} messages={:>9} ratio={:>7.2} degradation={:>5.2} invalid={}",
                    file.name,
                    protocol.name(),
                    cell.fault_family,
                    cell.messages,
                    cell.ratio,
                    cell.degradation,
                    cell.invalid_steps
                );
            } else if let Some(plan) = &file.membership {
                let cell = campaign::run_membership_cell(
                    &file.spec,
                    plan,
                    protocol,
                    &floors,
                    &mut solver,
                    clean.messages,
                );
                println!(
                    "{:<44} {:>13} churn={:<9} messages={:>9} ratio={:>7.2} degradation={:>5.2} invalid={}",
                    file.name,
                    protocol.name(),
                    plan.name(),
                    cell.messages,
                    cell.ratio,
                    cell.degradation,
                    cell.invalid_steps
                );
            } else {
                println!(
                    "{:<44} {:>13} messages={:>9} ratio={:>7.2} invalid={}",
                    file.name,
                    protocol.name(),
                    clean.messages,
                    clean.ratio,
                    clean.invalid_steps
                );
                if clean.invalid_steps > 0 {
                    failures.push(format!(
                        "{} under {}: {} invalid steps on a fault-free run",
                        file.name,
                        protocol.name(),
                        clean.invalid_steps
                    ));
                }
                // An overridden poll-factor bar gates the clean cells of
                // exactly this scenario (the standard bar only gates the
                // compiled-in campaign grid).
                if file.floors.is_some() {
                    let poll = (file.spec.n * file.spec.steps).max(1) as f64;
                    let factor = clean.messages as f64 / poll;
                    if factor > floors.max_poll_factor {
                        failures.push(format!(
                            "{} under {}: poll factor {factor:.3} exceeds the scenario's {:.3} bar",
                            file.name,
                            protocol.name(),
                            floors.max_poll_factor
                        ));
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        println!("scenario run ok: {cells} cells, every fault-free cell valid at every step");
        std::process::exit(0);
    }
    for f in &failures {
        eprintln!("SCENARIO FAILURE: {f}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut json_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut throughput_mode = false;
    let mut scaling_mode = false;
    let mut campaign_mode = false;
    let mut faults_only = false;
    let mut membership_only = false;
    let mut multiquery_only = false;
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut sharded_workers = 4usize;
    let mut sharded_set = false;
    let mut remote_conns: Option<usize> = None;
    let mut check_floors_path: Option<PathBuf> = None;
    let mut check_competitive_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut scenario_path: Option<PathBuf> = None;
    let mut scenario_dir: Option<PathBuf> = None;
    let mut record_path: Option<PathBuf> = None;
    let mut replay_path: Option<PathBuf> = None;
    let mut emit_scenarios_dir: Option<PathBuf> = None;
    let mut check_scenarios_dir: Option<PathBuf> = None;
    let mut protocol_name: Option<String> = None;
    let mut engine_name: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--small" => scale = Scale::Small,
            "--throughput" => throughput_mode = true,
            "--scaling" => scaling_mode = true,
            "--campaign" => campaign_mode = true,
            "--faults-only" => faults_only = true,
            "--membership-only" => membership_only = true,
            "--multiquery-only" => multiquery_only = true,
            "--quick" => quick = true,
            "--sharded" => {
                let parsed = iter.next().and_then(|w| w.parse::<usize>().ok());
                let Some(workers) = parsed.filter(|&w| w >= 1) else {
                    eprintln!("--sharded requires a worker count >= 1");
                    std::process::exit(2);
                };
                sharded_workers = workers;
                sharded_set = true;
            }
            "--remote" => {
                let parsed = iter.next().and_then(|w| w.parse::<usize>().ok());
                let Some(conns) = parsed.filter(|&w| w >= 1) else {
                    eprintln!("--remote requires a connection count >= 1");
                    std::process::exit(2);
                };
                remote_conns = Some(conns);
            }
            "--check-floors" => {
                let Some(path) = iter.next() else {
                    eprintln!("--check-floors requires a json file argument");
                    std::process::exit(2);
                };
                check_floors_path = Some(PathBuf::from(path));
            }
            "--check-competitive-floors" => {
                let Some(path) = iter.next() else {
                    eprintln!("--check-competitive-floors requires a json file argument");
                    std::process::exit(2);
                };
                check_competitive_path = Some(PathBuf::from(path));
            }
            "--baseline" => {
                let Some(path) = iter.next() else {
                    eprintln!("--baseline requires a json file argument");
                    std::process::exit(2);
                };
                baseline_path = Some(PathBuf::from(path));
            }
            "--out" => {
                let Some(path) = iter.next() else {
                    eprintln!("--out requires a file argument");
                    std::process::exit(2);
                };
                out = Some(PathBuf::from(path));
            }
            "--scenario" => {
                let Some(path) = iter.next() else {
                    eprintln!("--scenario requires a scenario json file argument");
                    std::process::exit(2);
                };
                scenario_path = Some(PathBuf::from(path));
            }
            "--scenario-dir" => {
                let Some(path) = iter.next() else {
                    eprintln!("--scenario-dir requires a directory argument");
                    std::process::exit(2);
                };
                scenario_dir = Some(PathBuf::from(path));
            }
            "--record" => {
                let Some(path) = iter.next() else {
                    eprintln!("--record requires an output trace file argument");
                    std::process::exit(2);
                };
                record_path = Some(PathBuf::from(path));
            }
            "--replay" => {
                let Some(path) = iter.next() else {
                    eprintln!("--replay requires a trace file argument");
                    std::process::exit(2);
                };
                replay_path = Some(PathBuf::from(path));
            }
            "--emit-scenarios" => {
                let Some(path) = iter.next() else {
                    eprintln!("--emit-scenarios requires a directory argument");
                    std::process::exit(2);
                };
                emit_scenarios_dir = Some(PathBuf::from(path));
            }
            "--check-scenarios" => {
                let Some(path) = iter.next() else {
                    eprintln!("--check-scenarios requires a directory argument");
                    std::process::exit(2);
                };
                check_scenarios_dir = Some(PathBuf::from(path));
            }
            "--protocol" => {
                let Some(name) = iter.next() else {
                    eprintln!("--protocol requires a protocol name argument");
                    std::process::exit(2);
                };
                protocol_name = Some(name);
            }
            "--engine" => {
                let Some(name) = iter.next() else {
                    eprintln!("--engine requires an engine name argument");
                    std::process::exit(2);
                };
                engine_name = Some(name);
            }
            "--json" => {
                json_dir = iter.next().map(PathBuf::from);
                if json_dir.is_none() {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--small] [--json DIR] [e1 e2 ... e8]\n       experiments --throughput [--quick] [--sharded THREADS] [--remote CONNS] [--out FILE]\n       experiments --scaling [--quick] [--out FILE]\n       experiments --campaign [--quick] [--faults-only | --membership-only | --multiquery-only] [--out FILE] [--baseline COMMITTED.json]\n       experiments --check-floors FILE.json\n       experiments --check-competitive-floors FILE.json\n       experiments --scenario FILE.json [--quick]\n       experiments --scenario FILE.json --record OUT.trace [--protocol NAME]\n       experiments --scenario-dir DIR [--quick]\n       experiments --replay FILE.trace [--engine NAME]\n       experiments --emit-scenarios DIR\n       experiments --check-scenarios DIR"
                );
                return;
            }
            other => wanted.push(other.to_lowercase()),
        }
    }
    if let Some(path) = check_floors_path {
        if throughput_mode
            || scaling_mode
            || campaign_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || quick
            || out.is_some()
            || sharded_set
            || remote_conns.is_some()
            || check_competitive_path.is_some()
            || baseline_path.is_some()
            || faults_only
            || membership_only
        {
            eprintln!("--check-floors does not combine with other modes or flags");
            std::process::exit(2);
        }
        check_floors_only(path);
    }
    if let Some(path) = check_competitive_path {
        if throughput_mode
            || scaling_mode
            || campaign_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || quick
            || out.is_some()
            || sharded_set
            || remote_conns.is_some()
            || baseline_path.is_some()
            || faults_only
            || membership_only
        {
            eprintln!("--check-competitive-floors does not combine with other modes or flags");
            std::process::exit(2);
        }
        check_competitive_floors_only(path);
    }
    let scenario_mode = scenario_path.is_some()
        || scenario_dir.is_some()
        || record_path.is_some()
        || replay_path.is_some()
        || emit_scenarios_dir.is_some()
        || check_scenarios_dir.is_some();
    if scenario_mode {
        if throughput_mode
            || scaling_mode
            || campaign_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || sharded_set
            || remote_conns.is_some()
            || baseline_path.is_some()
            || faults_only
            || membership_only
            || out.is_some()
        {
            eprintln!(
                "the scenario/trace modes do not combine with the benchmark modes or their flags"
            );
            std::process::exit(2);
        }
        if scenario_path.is_some() && scenario_dir.is_some() {
            eprintln!("--scenario and --scenario-dir are mutually exclusive");
            std::process::exit(2);
        }
        if protocol_name.is_some() && record_path.is_none() {
            eprintln!("--protocol only applies to --record");
            std::process::exit(2);
        }
        if engine_name.is_some() && replay_path.is_none() {
            eprintln!("--engine only applies to --replay");
            std::process::exit(2);
        }
        if let Some(dir) = emit_scenarios_dir {
            if scenario_path.is_some()
                || scenario_dir.is_some()
                || record_path.is_some()
                || replay_path.is_some()
                || check_scenarios_dir.is_some()
                || quick
            {
                eprintln!("--emit-scenarios is a standalone mode");
                std::process::exit(2);
            }
            run_emit_scenarios(dir);
        }
        if let Some(dir) = check_scenarios_dir {
            if scenario_path.is_some()
                || scenario_dir.is_some()
                || record_path.is_some()
                || replay_path.is_some()
                || quick
            {
                eprintln!("--check-scenarios is a standalone mode");
                std::process::exit(2);
            }
            run_check_scenarios(dir);
        }
        if let Some(path) = replay_path {
            if scenario_path.is_some() || scenario_dir.is_some() || record_path.is_some() || quick {
                eprintln!("--replay only combines with --engine");
                std::process::exit(2);
            }
            run_replay(path, engine_name);
        }
        if let Some(out_path) = record_path {
            let Some(path) = scenario_path else {
                eprintln!("--record needs --scenario FILE to know what to run");
                std::process::exit(2);
            };
            if scenario_dir.is_some() || quick {
                eprintln!("--record only combines with --scenario and --protocol");
                std::process::exit(2);
            }
            run_record(path, out_path, protocol_name);
        }
        if let Some(path) = scenario_path {
            run_scenario_cells(vec![load_scenario_or_exit(&path)], quick);
        }
        if let Some(dir) = scenario_dir {
            match scenario::load_scenario_dir(&dir) {
                Ok(files) if files.is_empty() => {
                    eprintln!("{}: no scenario files found", dir.display());
                    std::process::exit(1);
                }
                Ok(files) => run_scenario_cells(files, quick),
                Err(e) => {
                    eprintln!("invalid scenario library: {e}");
                    std::process::exit(1);
                }
            }
        }
        unreachable!("every scenario mode dispatches above");
    }
    if protocol_name.is_some() || engine_name.is_some() {
        eprintln!("--protocol/--engine only apply to the scenario/trace modes");
        std::process::exit(2);
    }
    if campaign_mode {
        if throughput_mode
            || scaling_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || sharded_set
            || remote_conns.is_some()
        {
            eprintln!("--campaign does not combine with --throughput/--small/--json/--sharded/--remote/experiment ids (use --quick, --out and --baseline)");
            std::process::exit(2);
        }
        if (faults_only as u8) + (membership_only as u8) + (multiquery_only as u8) > 1 {
            eprintln!(
                "--faults-only, --membership-only and --multiquery-only are mutually exclusive"
            );
            std::process::exit(2);
        }
        // Quick runs default to their own file: a bare `--campaign --quick`
        // must never clobber the committed full-scale report.
        let default_out = if faults_only {
            if quick {
                "BENCH_faults_quick.json"
            } else {
                "BENCH_faults.json"
            }
        } else if membership_only {
            if quick {
                "BENCH_membership_quick.json"
            } else {
                "BENCH_membership.json"
            }
        } else if multiquery_only {
            if quick {
                "BENCH_multiquery_quick.json"
            } else {
                "BENCH_multiquery.json"
            }
        } else if quick {
            "BENCH_competitive_quick.json"
        } else {
            "BENCH_competitive.json"
        };
        let out = out.unwrap_or_else(|| PathBuf::from(default_out));
        if faults_only {
            run_faults_bench(quick, out, baseline_path);
        }
        if membership_only {
            run_membership_bench(quick, out, baseline_path);
        }
        if multiquery_only {
            run_multiquery_bench(quick, out, baseline_path);
        }
        run_campaign_bench(quick, out, baseline_path);
    }
    if faults_only {
        eprintln!("--faults-only only applies to --campaign");
        std::process::exit(2);
    }
    if membership_only {
        eprintln!("--membership-only only applies to --campaign");
        std::process::exit(2);
    }
    if multiquery_only {
        eprintln!("--multiquery-only only applies to --campaign");
        std::process::exit(2);
    }
    if baseline_path.is_some() {
        eprintln!("--baseline only applies to --campaign");
        std::process::exit(2);
    }
    if scaling_mode {
        if throughput_mode
            || scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || sharded_set
            || remote_conns.is_some()
        {
            eprintln!("--scaling does not combine with --throughput/--small/--json/--sharded/--remote/experiment ids (use --quick and --out)");
            std::process::exit(2);
        }
        // Quick runs default to their own file so a smoke run never clobbers
        // a committed full-scale curve.
        let default_out = if quick {
            "BENCH_scaling_quick.json"
        } else {
            "BENCH_scaling.json"
        };
        run_scaling_bench(quick, out.unwrap_or_else(|| PathBuf::from(default_out)));
    }
    if throughput_mode {
        if scale == Scale::Small || json_dir.is_some() || !wanted.is_empty() {
            eprintln!("--throughput does not combine with --small/--json/experiment ids (use --quick and --out instead)");
            std::process::exit(2);
        }
        run_throughput_bench(
            quick,
            sharded_workers,
            remote_conns,
            out.unwrap_or_else(|| PathBuf::from("BENCH_throughput.json")),
        );
    }
    if let Some(conns) = remote_conns {
        // `--remote` on its own: just the transport axis, no in-process matrix.
        if scale == Scale::Small
            || json_dir.is_some()
            || !wanted.is_empty()
            || out.is_some()
            || sharded_set
        {
            eprintln!(
                "--remote on its own does not combine with --small/--json/--out/--sharded/experiment ids"
            );
            std::process::exit(2);
        }
        run_remote_bench(quick, conns);
        return;
    }
    if quick || out.is_some() {
        eprintln!(
            "--quick/--out only apply to --throughput/--scaling/--remote (did you mean --small/--json?)"
        );
        std::process::exit(2);
    }

    let run = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);
    let mut tables: Vec<ExperimentTable> = Vec::new();
    if run("e1") {
        tables.push(experiments::e1_existence(scale));
    }
    if run("e2") {
        tables.push(experiments::e2_maximum(scale));
    }
    if run("e3") {
        tables.push(experiments::e3_exact_topk(scale));
    }
    if run("e4") {
        tables.push(experiments::e4_topk_protocol(scale));
    }
    if run("e5") {
        tables.push(experiments::e5_lower_bound(scale));
    }
    if run("e6") {
        tables.push(experiments::e6_dense(scale));
    }
    if run("e7") {
        tables.push(experiments::e7_half_eps(scale));
    }
    if run("e8") {
        tables.push(experiments::e8_crossover(scale));
    }

    for table in &tables {
        println!("{table}");
    }
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(&dir).expect("create json output directory");
        for table in &tables {
            let path = dir.join(format!("{}.json", table.id.to_lowercase()));
            std::fs::write(&path, table.to_json()).expect("write json table");
            eprintln!("wrote {}", path.display());
        }
    }
}
