//! The regression-floor table — every numeric bar CI holds a benchmark to.
//!
//! Historically the throughput floors lived as loose `pub const`s whose values
//! were duplicated between doc comments, CI comments and the check code, and
//! drifted. This module hoists them into one serialisable table,
//! [`FloorTable::STANDARD`], shared by both gate modes of the `experiments`
//! binary:
//!
//! * `--check-floors` validates a throughput report against
//!   [`ThroughputFloors`] (speedup and absolute steps/sec bars);
//! * `--check-competitive-floors` validates a campaign report against
//!   [`CompetitiveFloors`] (coverage, correctness, per-cell ratio ceilings).
//!
//! Campaign reports embed the competitive half of the table, so a committed
//! `BENCH_competitive.json` documents the exact gate it was held to — and the
//! checker rejects reports generated against a different table, which makes
//! relaxing a floor an explicit, reviewable diff of this file rather than a
//! silent edit of a JSON artifact.

use serde::{Deserialize, Serialize};

/// Floors for the engine throughput benchmark (`--check-floors`).
///
/// All speedups are steps/sec ratios on the noise generator with dense
/// delivery — the workload/mode cell every engine must populate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputFloors {
    /// Indexed-over-baseline speedup floor at `n = 10⁵`.
    pub indexed_speedup: f64,
    /// Absolute indexed steps/sec sanity floor at `n = 10⁵` (conservative:
    /// release builds measure orders of magnitude more).
    pub indexed_absolute_steps_per_sec: f64,
    /// Sharded-over-indexed floor at `n = 10⁶`, applied to full-scale reports
    /// (i.e. the committed `BENCH_throughput.json`).
    pub sharded_speedup_full: f64,
    /// Sharded-over-indexed floor at `n = 10⁵`, applied to quick-scale (CI
    /// smoke) reports. Deliberately loose: at quick scale the per-step work is
    /// small enough that pool synchronisation and measurement noise eat into
    /// the ratio; the real bar is `sharded_speedup_full` on the committed
    /// report.
    pub sharded_speedup_quick: f64,
    /// Worker count the full-scale sharded floor is stated for. A committed
    /// report whose sharded rows were generated with a different `--sharded`
    /// value must not satisfy the gate.
    pub sharded_floor_workers: u64,
    /// Minimum number of distinct worker counts a full-scale report's scaling
    /// curve must cover (quick smoke curves need only 2).
    pub scaling_min_worker_counts: usize,
    /// Parallel-efficiency floor — `(steps/sec ratio over workers = 1) /
    /// min(workers, cores)` — every multi-worker point of a full-scale
    /// scaling curve must clear. On a many-core machine this demands real
    /// speedup; on a 1-core runner it bounds the sharding *overhead* (a
    /// worker-pool layout must not halve single-core throughput).
    pub scaling_efficiency_full: f64,
    /// Parallel-efficiency floor for quick-scale (CI smoke) curves. Looser:
    /// at `n = 10⁵` the per-step work is small enough that pool
    /// synchronisation and measurement noise eat into the ratio.
    pub scaling_efficiency_quick: f64,
}

/// Floors for the scenario campaign (`--check-competitive-floors`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompetitiveFloors {
    /// Minimum number of distinct protocols the report must cover.
    pub min_protocols: usize,
    /// Minimum number of distinct generator families the report must cover.
    pub min_generators: usize,
    /// Maximum tolerated invalid output steps per cell (0: the ε-top-k
    /// definition must hold at *every* step of *every* cell).
    pub max_invalid_steps: u64,
    /// Headroom written into each cell's ratio ceiling at generation time, in
    /// permille of the measured ratio (300 = the ceiling is 1.3 × ratio plus
    /// the absolute slack below).
    pub ceiling_headroom_permille: u64,
    /// Absolute slack added to every ceiling, in thousandths of a ratio unit
    /// (absorbs the quantisation of tiny OPT lower bounds).
    pub ceiling_slack_permille: u64,
    /// Hard upper bound on any cell's message count as a multiple of naive
    /// per-step polling (`n × steps` messages). Filters exist to beat polling;
    /// a protocol that exceeds this factor has regressed catastrophically no
    /// matter what ceiling a freshly regenerated report would launder in.
    /// (The bar is well above 1 because on dense-σ and heavy-churn inputs at
    /// small `n` the protocols legitimately approach — the combined monitor on
    /// the 8 %-churn cell slightly exceeds 2× — polling cost; the paper
    /// promises them nothing there.)
    pub max_poll_factor: f64,
    /// Minimum number of distinct fault families the report's fault axis must
    /// cover (the degradation study needs latency, drop and crash at least).
    pub min_fault_families: usize,
    /// Maximum tolerated invalid output steps in a *fault* cell, in permille
    /// of the cell's steps. Unlike the fault-free bar (`max_invalid_steps`,
    /// which stays 0), faults legitimately break the ε-top-k guarantee — a
    /// crashed node cannot report, a dropped report is information the server
    /// never had. The bar documents how much breakage the injected fault
    /// magnitudes are *allowed* to cause; more indicates the recovery
    /// machinery regressed.
    pub fault_invalid_fraction_permille: u64,
    /// `max_poll_factor` analogue for fault cells: recovery traffic (rejoin
    /// replays) and fault-driven violation churn may cost more than the
    /// fault-free protocols, but staying within a constant factor of naive
    /// polling is still the point of the filter approach.
    pub fault_poll_factor: f64,
    /// Minimum number of distinct membership churn plans the report's
    /// membership axis must cover (a mild and an aggressive plan at least —
    /// one intensity cannot show whether recovery cost scales with churn).
    pub min_membership_plans: usize,
    /// Maximum tolerated invalid output steps in a *membership* cell, in
    /// permille of the cell's steps. Both driver and engines validate against
    /// the masked row (dead slots pinned to 0), so unlike the fault axis the
    /// churn itself never excuses an invalid output — the small bar only
    /// absorbs the single-step re-resolution transient when a top-k member
    /// departs and the violation machinery replaces it.
    pub membership_invalid_fraction_permille: u64,
    /// `max_poll_factor` analogue for membership cells: every join replays
    /// the leaver's group and filter under the `Recovery` label and the
    /// protocols re-resolve the vacated ranks, but the total must still stay
    /// within a constant factor of naive polling.
    pub membership_poll_factor: f64,
    /// Minimum number of multi-query cells the report's multi-query axis must
    /// cover (the twin / overlapping / disjoint plan shapes at least —
    /// sharing, partial sharing and isolation are three different claims).
    pub min_multiquery_cells: usize,
    /// Maximum tolerated invalid output steps in a *multi-query* cell, in
    /// permille of the cell's per-query step total. Every query is validated
    /// against its own subset-restricted row, so sharing a transport never
    /// excuses an invalid output; the bar only absorbs the same single-step
    /// re-resolution transients the single-query battery tolerates.
    pub multiquery_invalid_fraction_permille: u64,
}

impl CompetitiveFloors {
    /// The ratio ceiling recorded for a cell that measured `ratio`.
    pub fn ceiling(&self, ratio: f64) -> f64 {
        ratio * (1.0 + self.ceiling_headroom_permille as f64 / 1000.0)
            + self.ceiling_slack_permille as f64 / 1000.0
    }
}

/// The complete floor table CI enforces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloorTable {
    /// Engine throughput floors (`--check-floors`).
    pub throughput: ThroughputFloors,
    /// Campaign floors (`--check-competitive-floors`).
    pub competitive: CompetitiveFloors,
}

impl FloorTable {
    /// The table in force. Changing a bar means changing this constant — a
    /// reviewable source diff, never a JSON edit.
    pub const STANDARD: FloorTable = FloorTable {
        throughput: ThroughputFloors {
            indexed_speedup: 10.0,
            indexed_absolute_steps_per_sec: 50.0,
            sharded_speedup_full: 2.0,
            sharded_speedup_quick: 1.2,
            sharded_floor_workers: 4,
            scaling_min_worker_counts: 3,
            scaling_efficiency_full: 0.5,
            scaling_efficiency_quick: 0.35,
        },
        competitive: CompetitiveFloors {
            min_protocols: 5,
            min_generators: 7,
            max_invalid_steps: 0,
            ceiling_headroom_permille: 300,
            ceiling_slack_permille: 500,
            max_poll_factor: 3.0,
            min_fault_families: 3,
            fault_invalid_fraction_permille: 250,
            fault_poll_factor: 4.0,
            min_membership_plans: 2,
            membership_invalid_fraction_permille: 100,
            membership_poll_factor: 4.0,
            min_multiquery_cells: 3,
            multiquery_invalid_fraction_permille: 0,
        },
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_applies_headroom_and_slack() {
        let f = FloorTable::STANDARD.competitive;
        let c = f.ceiling(10.0);
        assert!((c - 13.5).abs() < 1e-9, "ceiling(10) = {c}");
        // Zero-message cells still get a positive ceiling from the slack.
        assert!(f.ceiling(0.0) > 0.0);
    }

    #[test]
    fn table_round_trips_through_json() {
        let json = serde_json::to_string_pretty(&FloorTable::STANDARD).unwrap();
        let back: FloorTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back, FloorTable::STANDARD);
    }

    #[test]
    fn standard_table_is_coherent() {
        let t = FloorTable::STANDARD;
        assert!(t.throughput.sharded_speedup_quick <= t.throughput.sharded_speedup_full);
        assert!(t.throughput.indexed_speedup > 1.0);
        assert!(t.throughput.scaling_min_worker_counts >= 3);
        assert!(t.throughput.scaling_efficiency_quick <= t.throughput.scaling_efficiency_full);
        assert!(t.throughput.scaling_efficiency_quick > 0.0);
        // Efficiency is normalised by min(workers, cores), so > 1.0 would be
        // demanding super-linear scaling.
        assert!(t.throughput.scaling_efficiency_full <= 1.0);
        assert!(t.competitive.min_protocols >= 5);
        assert!(t.competitive.min_generators >= 7);
        assert_eq!(t.competitive.max_invalid_steps, 0);
        // Faults relax the *fault-axis* bars only; the fault-free bars above
        // must never loosen to accommodate them.
        assert!(t.competitive.min_fault_families >= 3);
        assert!(t.competitive.fault_invalid_fraction_permille < 1000);
        assert!(t.competitive.fault_poll_factor >= t.competitive.max_poll_factor);
        // The membership axis validates against masked rows, so its invalid
        // bar must be strictly tighter than the fault axis's.
        assert!(t.competitive.min_membership_plans >= 2);
        assert!(
            t.competitive.membership_invalid_fraction_permille
                < t.competitive.fault_invalid_fraction_permille
        );
        assert!(t.competitive.membership_poll_factor >= t.competitive.max_poll_factor);
        // The multi-query axis shares a clean transport, so its invalid bar
        // must be at least as tight as the membership axis's.
        assert!(t.competitive.min_multiquery_cells >= 3);
        assert!(
            t.competitive.multiquery_invalid_fraction_permille
                <= t.competitive.membership_invalid_fraction_permille
        );
    }
}
