//! The scenario campaign: a declarative grid of workloads × protocols whose
//! empirical competitive ratios are ratcheted in CI.
//!
//! The paper's entire contribution is *competitive analysis* — message counts
//! of the online protocols measured against the offline OPT (Cor. 3.3,
//! Thm. 4.5, Thm. 5.8) — yet a benchmark that only tracks steps/sec would
//! happily wave through a protocol change that doubles message counts. The
//! campaign closes that gap: a grid of [`ScenarioSpec`]s (generator family ×
//! regime parameters × `ε` × `n`, expressed as plain data and serialised into
//! the report) is run under **every** protocol, each cell's message count is
//! divided by the OPT lower bound computed by `topk-offline` on the very trace
//! the protocol saw, and the resulting ratios — with a headroom ceiling per
//! cell — are committed as `BENCH_competitive.json`.
//!
//! `--check-competitive-floors` then re-validates the committed report:
//! correctness (zero invalid output steps anywhere), coverage (at least the
//! [`crate::floors::CompetitiveFloors`] protocol × family grid), ceiling
//! consistency (every ceiling is exactly the formula of the floor table in
//! force — hand-raised ceilings are rejected), and the paper-shape invariant
//! that `DenseProtocol` beats the exact monitor on dense inputs (Thm. 5.8).
//! Because every generator, engine and protocol is deterministic under its
//! seed, regenerating the report on any machine reproduces identical message
//! counts — a regression shows up as a reviewable diff of the committed JSON,
//! not as noise.
//!
//! Adaptive families (the Theorem 5.1 adversary) are handled by recording the
//! rows the adversary actually emitted against each protocol's filters and
//! decomposing *that* trace: the ratio is per-realised-instance, exactly the
//! quantity the lower-bound proof bounds.
//!
//! ## The fault axis
//!
//! The paper proves its bounds under reliable synchronous channels and a
//! fixed population; the campaign's *fault axis* measures what happens when
//! those assumptions break (ROADMAP item 2). [`standard_fault_grid`] pairs
//! non-adaptive base scenarios with one [`FaultSpec`] per fault family —
//! reply latency, upstream message drop, node crash/rejoin — and
//! [`run_fault_cell`] re-runs each protocol on a
//! [`FaultyTransport`]-wrapped engine. A [`FaultCell`] records the absolute
//! ratio (against the same OPT lower bound, computed on the *intended*
//! trace), the **degradation** (messages relative to the fault-free run of
//! the identical scenario), the recovery traffic, and the fraction of steps
//! whose output broke the ε-top-k definition — faults legitimately break
//! validity (a crashed node cannot report), so fault cells get their own
//! permille bar instead of the fault-free `max_invalid_steps = 0` gate.
//! Every fault plan is seed-driven and deterministic, so fault cells ratchet
//! in CI exactly like the base cells.
//!
//! ## The membership axis
//!
//! The fault axis keeps the population fixed; the *membership axis* churns it
//! (ROADMAP item: dynamic membership). [`standard_membership_grid`] pairs the
//! same non-adaptive base scenarios with a [`MembershipPlanSpec`] — a seeded
//! churn plan (`topk_gen::MembershipWorkload::churn`) under which live nodes
//! leave and rejoin with filter reassignment — and [`run_membership_cell`]
//! drives each protocol through `run_with_membership` on a normal engine. A
//! [`MembershipCell`] records the absolute ratio against the OPT decomposition
//! of the **masked** trace (dead slots pinned to 0 — the value vector the
//! model actually holds, and the trace an offline algorithm facing the same
//! churn would see), the degradation against the churn-free twin, the
//! `Recovery`-labelled rejoin replay traffic, and the join/leave counts of the
//! plan. Churn plans are pure functions of their seeds, so membership cells
//! ratchet in CI exactly like the base and fault cells
//! ([`check_membership_cells`], `--membership-only`).

use crate::floors::{CompetitiveFloors, FloorTable};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use topk_core::monitor::{run_adaptive_observed, run_with_membership_observed, Monitor};
use topk_core::queryset::{run_query_set, QuerySet};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor};
use topk_gen::{
    AdaptiveWorkload, ChurnFlatlineWorkload, CorrelatedBurstWorkload, GapWorkload,
    LowerBoundAdversary, MembershipWorkload, NoiseOscillationWorkload, RandomWalkWorkload,
    RegimeSwitchWorkload, Trace, ZipfLoadWorkload,
};
use topk_model::prelude::*;
use topk_net::{FaultyTransport, IndexedEngine};
use topk_offline::{ApproxOfflineOpt, ExactOfflineOpt, OfflineCost, PhaseSolver};

/// A workload generator plus its regime parameters, as serialisable data.
///
/// `build` instantiates the corresponding `topk-gen` generator; the scenario's
/// `n`, `k`, `ε` and seed are supplied by the surrounding [`ScenarioSpec`] so
/// one generator description can be swept over population sizes and errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GeneratorSpec {
    /// Heavy-tailed web-server loads with independent per-node bursts.
    Zipf {
        /// Approximate load of the busiest node at the seasonal peak.
        peak_load: Value,
    },
    /// Dense ε-neighbourhood oscillation (`sigma` nodes around pivot `z`).
    Noise {
        /// Number of oscillating nodes.
        sigma: usize,
        /// Pivot value of the neighbourhood.
        z: Value,
    },
    /// Lazy bounded random walks on `{0, …, delta}`.
    RandomWalk {
        /// Upper bound of the walk.
        delta: Value,
        /// Largest single-step displacement.
        max_step: Value,
        /// Per-step move probability in permille.
        move_permille: u32,
    },
    /// Persistent multiplicative gap between ranks `k` and `k + 1`.
    Gap {
        /// Centre of the top group's values.
        high_base: Value,
    },
    /// The adaptive lower-bound adversary of Theorem 5.1.
    Adversarial {
        /// Number of nodes starting at the common value (`k < sigma ≤ n`).
        sigma: usize,
        /// The common starting value `y₀`.
        y0: Value,
    },
    /// Quiet → dense → adversarial regime cycling.
    RegimeSwitch {
        /// Size of the switching pack.
        sigma: usize,
        /// Pivot value of the dense segments.
        z: Value,
        /// Steps per regime segment.
        segment_len: u64,
    },
    /// Flash crowds hitting whole contiguous node groups at once.
    CorrelatedBurst {
        /// Approximate per-node base load.
        base_load: Value,
        /// Load multiplier while bursting.
        factor: u64,
        /// Nodes per burst group.
        group: usize,
        /// Per-step probability of a new burst, in permille.
        burst_permille: u32,
    },
    /// ε-neighbourhood population churn (nodes flat-line and come back).
    Churn {
        /// Pivot of the neighbourhood live nodes oscillate in.
        z: Value,
        /// Per-node per-step flip probability, in permille.
        churn_permille: u32,
    },
    /// Heavy-tailed web loads with an explicit seasonal period (the
    /// `examples/load_balancer.rs` workload; [`GeneratorSpec::Zipf`] pins the
    /// campaign's 200-step period).
    ZipfWeb {
        /// Approximate load of the busiest node at the seasonal peak.
        peak_load: Value,
        /// Steps per seasonal cycle.
        period: u64,
    },
    /// Dense oscillation with an explicit high-group size (the
    /// `examples/sensor_noise.rs` workload; [`GeneratorSpec::Noise`] derives
    /// the high group from `k`).
    NoiseField {
        /// Number of clearly-leading nodes.
        high: usize,
        /// Number of oscillating nodes.
        sigma: usize,
        /// Pivot value of the neighbourhood.
        z: Value,
    },
}

impl GeneratorSpec {
    /// Stable family name used as the coverage key in reports.
    pub fn family(&self) -> &'static str {
        match self {
            GeneratorSpec::Zipf { .. } => "zipf",
            GeneratorSpec::Noise { .. } => "noise",
            GeneratorSpec::RandomWalk { .. } => "random-walk",
            GeneratorSpec::Gap { .. } => "gap",
            GeneratorSpec::Adversarial { .. } => "adversarial",
            GeneratorSpec::RegimeSwitch { .. } => "regime-switch",
            GeneratorSpec::CorrelatedBurst { .. } => "correlated-burst",
            GeneratorSpec::Churn { .. } => "churn",
            GeneratorSpec::ZipfWeb { .. } => "zipf-web",
            GeneratorSpec::NoiseField { .. } => "noise-field",
        }
    }

    /// Instantiates the generator for one scenario.
    pub fn build(&self, n: usize, k: usize, eps: Epsilon, seed: u64) -> Box<dyn AdaptiveWorkload> {
        match *self {
            GeneratorSpec::Zipf { peak_load } => {
                Box::new(ZipfLoadWorkload::new(n, 1.1, peak_load, 200, 0.005, seed))
            }
            GeneratorSpec::Noise { sigma, z } => Box::new(NoiseOscillationWorkload::new(
                n,
                (k / 2).max(1),
                sigma,
                z,
                eps,
                seed,
            )),
            GeneratorSpec::RandomWalk {
                delta,
                max_step,
                move_permille,
            } => Box::new(RandomWalkWorkload::new(
                n,
                delta,
                max_step,
                f64::from(move_permille) / 1000.0,
                seed,
            )),
            GeneratorSpec::Gap { high_base } => {
                Box::new(GapWorkload::new(n, k, high_base, 16, 40, 0, seed))
            }
            // The adversary is deterministic given the filter history; the
            // seed intentionally plays no role (cf. Theorem 5.1).
            GeneratorSpec::Adversarial { sigma, y0 } => {
                Box::new(LowerBoundAdversary::new(n, k, sigma, y0, eps))
            }
            GeneratorSpec::RegimeSwitch {
                sigma,
                z,
                segment_len,
            } => Box::new(RegimeSwitchWorkload::new(
                n,
                k,
                sigma,
                z,
                eps,
                segment_len,
                seed,
            )),
            GeneratorSpec::CorrelatedBurst {
                base_load,
                factor,
                group,
                burst_permille,
            } => Box::new(CorrelatedBurstWorkload::new(
                n,
                base_load,
                factor,
                group,
                f64::from(burst_permille) / 1000.0,
                seed,
            )),
            GeneratorSpec::Churn { z, churn_permille } => Box::new(ChurnFlatlineWorkload::new(
                n,
                (k / 2).max(1),
                z,
                eps,
                f64::from(churn_permille) / 1000.0,
                seed,
            )),
            GeneratorSpec::ZipfWeb { peak_load, period } => Box::new(ZipfLoadWorkload::new(
                n, 1.1, peak_load, period, 0.005, seed,
            )),
            GeneratorSpec::NoiseField { high, sigma, z } => {
                Box::new(NoiseOscillationWorkload::new(n, high, sigma, z, eps, seed))
            }
        }
    }
}

/// Which offline adversary a protocol's competitive ratio is measured against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Adversary {
    /// The exact offline OPT (Cor. 3.3, Thm. 4.5).
    Exact,
    /// The ε-approximate offline OPT (Thm. 5.8).
    Approx,
    /// The ε/2-approximate offline OPT (Cor. 5.9).
    HalfEps,
}

/// One of the five online protocols of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// `ExactTopKMonitor` — Corollary 3.3.
    ExactTopK,
    /// `TopKMonitor` (`TopKProtocol`) — Theorem 4.5.
    TopKProtocol,
    /// `DenseMonitor` (`DenseProtocol`) — Theorem 5.8.
    Dense,
    /// `CombinedMonitor` — the Theorem 5.8 dispatcher.
    Combined,
    /// `HalfEpsMonitor` — Corollary 5.9.
    HalfEps,
}

impl ProtocolKind {
    /// Every protocol, in report order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::ExactTopK,
        ProtocolKind::TopKProtocol,
        ProtocolKind::Dense,
        ProtocolKind::Combined,
        ProtocolKind::HalfEps,
    ];

    /// Stable protocol name used as the coverage key in reports.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::ExactTopK => "exact_topk",
            ProtocolKind::TopKProtocol => "topk_protocol",
            ProtocolKind::Dense => "dense",
            ProtocolKind::Combined => "combined",
            ProtocolKind::HalfEps => "half_eps",
        }
    }

    /// Parses a protocol from its [`ProtocolKind::name`] — the inverse used
    /// when rebuilding a monitor from a recorded trace header.
    pub fn from_name(name: &str) -> Option<ProtocolKind> {
        ProtocolKind::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Instantiates the protocol's monitor.
    pub fn build_monitor(self, k: usize, eps: Epsilon) -> Box<dyn Monitor> {
        match self {
            ProtocolKind::ExactTopK => Box::new(ExactTopKMonitor::new(k)),
            ProtocolKind::TopKProtocol => Box::new(TopKMonitor::new(k, eps)),
            ProtocolKind::Dense => Box::new(DenseMonitor::new(k, eps)),
            ProtocolKind::Combined => Box::new(CombinedMonitor::new(k, eps)),
            ProtocolKind::HalfEps => Box::new(HalfEpsMonitor::new(k, eps)),
        }
    }

    /// The adversary the paper states each protocol's guarantee against.
    fn adversary(self) -> Adversary {
        match self {
            // Cor. 3.3 and Thm. 4.5 are stated against the exact OPT.
            ProtocolKind::ExactTopK | ProtocolKind::TopKProtocol => Adversary::Exact,
            // Thm. 5.8 is stated against the ε-approximate OPT.
            ProtocolKind::Dense | ProtocolKind::Combined => Adversary::Approx,
            // Cor. 5.9 is stated against the ε/2-approximate OPT.
            ProtocolKind::HalfEps => Adversary::HalfEps,
        }
    }
}

/// One cell of the scenario grid: a generator configuration at a concrete
/// population size, `k`, error and seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The workload family and its regime parameters.
    pub generator: GeneratorSpec,
    /// Number of nodes.
    pub n: usize,
    /// Monitored `k`.
    pub k: usize,
    /// The online algorithms' error (also the validation error).
    pub eps: Epsilon,
    /// Number of observation steps.
    pub steps: usize,
    /// Workload seed (the engine derives its RNG streams from it too).
    pub seed: u64,
}

/// A `(label, count)` pair — the vendored serde stand-in encodes string-keyed
/// breakdowns as explicit pair lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCount {
    /// Breakdown key (a protocol-phase label or a workload regime name).
    pub label: String,
    /// Messages attributed to the key.
    pub count: u64,
}

fn label_counts(map: BTreeMap<String, u64>) -> Vec<LabelCount> {
    map.into_iter()
        .map(|(label, count)| LabelCount { label, count })
        .collect()
}

/// One measured cell: a scenario run under one protocol, with its competitive
/// ratio against the paper's adversary for that protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// The scenario that was run (embedded verbatim for reproducibility).
    pub scenario: ScenarioSpec,
    /// Protocol name (see [`ProtocolKind::name`]).
    pub protocol: String,
    /// Total messages the online protocol sent.
    pub messages: u64,
    /// Interactive protocol rounds used.
    pub rounds: u64,
    /// Steps at which the output violated the ε-top-k definition (gated to 0).
    pub invalid_steps: u64,
    /// OPT lower bound (phase count) on the realised trace.
    pub opt_lower: u64,
    /// OPT upper bound (`(k + 1)` messages per phase) on the realised trace.
    pub opt_upper: u64,
    /// The offline adversary's error (`None` = exact adversary).
    pub opt_eps: Option<Epsilon>,
    /// Empirical competitive ratio: `messages / max(opt_lower, 1)`.
    pub ratio: f64,
    /// Ratcheted ratio ceiling (`CompetitiveFloors::ceiling(ratio)` at
    /// generation time) enforced by `--check-competitive-floors`.
    pub ceiling: f64,
    /// Message attribution by protocol phase (the `CostMeter` label taxonomy).
    pub messages_by_label: Vec<LabelCount>,
    /// Message attribution by workload regime (non-empty only for families
    /// that expose regime segments, i.e. `regime-switch`).
    pub messages_by_regime: Vec<LabelCount>,
}

impl CampaignCell {
    /// The generator family of this cell.
    pub fn family(&self) -> &'static str {
        self.scenario.generator.family()
    }
}

/// One fault-axis cell: a scenario run under one protocol on a faulty
/// transport, with both its absolute competitive ratio and its degradation
/// relative to the fault-free run of the identical scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultCell {
    /// The scenario that was run (embedded verbatim for reproducibility).
    pub scenario: ScenarioSpec,
    /// Protocol name (see [`ProtocolKind::name`]).
    pub protocol: String,
    /// The fault plan in force (embedded verbatim; fully determines the run
    /// together with the scenario).
    pub fault: FaultSpec,
    /// The fault family ([`FaultSpec::family`]) — the coverage key.
    pub fault_family: String,
    /// Total messages the online protocol sent, recovery traffic included.
    pub messages: u64,
    /// Messages of the fault-free run of the identical scenario/protocol.
    pub clean_messages: u64,
    /// Messages attributed to fault recovery (rejoin replays).
    pub recovery_messages: u64,
    /// Steps at which the output violated the ε-top-k definition. Unlike
    /// base cells this may be non-zero — gated as a permille fraction of
    /// `scenario.steps` by `fault_invalid_fraction_permille`.
    pub invalid_steps: u64,
    /// OPT lower bound on the *intended* trace (what the nodes would have
    /// observed on a reliable network — the adversary's cost is fault-free).
    pub opt_lower: u64,
    /// Empirical competitive ratio: `messages / max(opt_lower, 1)`.
    pub ratio: f64,
    /// Ratcheted ratio ceiling, same formula as base cells.
    pub ceiling: f64,
    /// Degradation factor: `messages / max(clean_messages, 1)`.
    pub degradation: f64,
    /// Ratcheted degradation ceiling (`CompetitiveFloors::ceiling` applied
    /// to the degradation) — a recovery-machinery regression shows up here
    /// even when the absolute ratio stays under its own ceiling.
    pub degradation_ceiling: f64,
    /// Node crashes the fault plan executed.
    pub crashes: u64,
    /// Node rejoins (each preceded by a recovery replay).
    pub rejoins: u64,
    /// Messages lost in transit (charged but never delivered).
    pub dropped_messages: u64,
}

/// A seeded membership churn plan, as serialisable data.
///
/// `build` instantiates `topk_gen::MembershipWorkload::churn` for a concrete
/// population and horizon; the spec pins everything else, so one spec plus a
/// [`ScenarioSpec`] fully determines the schedule (and therefore the cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipPlanSpec {
    /// Churn plan seed.
    pub seed: u64,
    /// Per-live-node per-step leave probability, in permille.
    pub leave_permille: u32,
    /// Steps a leaver stays away before rejoining.
    pub downtime: u64,
    /// Floor on the live population (departures below it are skipped).
    pub min_live: usize,
}

impl MembershipPlanSpec {
    /// Instantiates the validated per-step schedule for one scenario.
    pub fn build(&self, n: usize, steps: u64) -> MembershipWorkload {
        MembershipWorkload::churn(
            n,
            steps,
            self.seed,
            self.leave_permille,
            self.downtime,
            self.min_live,
        )
    }

    /// Stable plan name used as the coverage key in reports.
    pub fn name(&self) -> String {
        format!(
            "churn-{}permille-d{}-floor{}",
            self.leave_permille, self.downtime, self.min_live
        )
    }
}

/// One membership-axis cell: a scenario run under one protocol while the
/// population churns, with both its absolute competitive ratio (against the
/// OPT decomposition of the masked trace) and its degradation relative to the
/// churn-free run of the identical scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipCell {
    /// The scenario that was run (embedded verbatim for reproducibility).
    pub scenario: ScenarioSpec,
    /// Protocol name (see [`ProtocolKind::name`]).
    pub protocol: String,
    /// The churn plan in force (embedded verbatim; fully determines the
    /// schedule together with the scenario).
    pub plan: MembershipPlanSpec,
    /// The plan name ([`MembershipPlanSpec::name`]) — the coverage key.
    pub plan_name: String,
    /// Total messages the online protocol sent, rejoin replays included.
    pub messages: u64,
    /// Messages of the churn-free run of the identical scenario/protocol.
    pub clean_messages: u64,
    /// Messages attributed to rejoin replays (the `Recovery` label).
    pub recovery_messages: u64,
    /// Steps at which the output violated the ε-top-k definition **on the
    /// masked row**. Gated as a permille fraction of `scenario.steps` by
    /// `membership_invalid_fraction_permille` (strictly tighter than the
    /// fault bar: churn is visible to the validator, so only the departure
    /// re-resolution transient is excused).
    pub invalid_steps: u64,
    /// Leave events the plan executed within the horizon.
    pub leaves: u64,
    /// Join events the plan executed within the horizon.
    pub joins: u64,
    /// OPT lower bound on the *masked* trace (dead slots pinned to 0 — the
    /// offline adversary faces the same churn the online protocol does).
    pub opt_lower: u64,
    /// Empirical competitive ratio: `messages / max(opt_lower, 1)`.
    pub ratio: f64,
    /// Ratcheted ratio ceiling, same formula as base cells.
    pub ceiling: f64,
    /// Degradation factor: `messages / max(clean_messages, 1)`.
    pub degradation: f64,
    /// Ratcheted degradation ceiling — a rejoin-replay regression shows up
    /// here even when the absolute ratio stays under its own ceiling.
    pub degradation_ceiling: f64,
}

/// A multi-query plan, as serialisable data: the query set registered against
/// one shared engine. Together with a [`ScenarioSpec`] it fully determines a
/// multi-query cell — specs embed the protocol name, `k`, `ε` and subset of
/// every query in registration order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiQueryPlanSpec {
    /// Stable plan name — the coverage key (`twin` / `overlap` / `disjoint`).
    pub name: String,
    /// The queries, in registration order.
    pub queries: Vec<QuerySpec>,
}

/// One multi-query cell: a scenario run under a [`MultiQueryPlanSpec`] on one
/// shared engine, measured against the sum of the same queries run
/// independently — the amortization the shared-filter design claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiQueryCell {
    /// The scenario that was run (embedded verbatim for reproducibility).
    pub scenario: ScenarioSpec,
    /// The query plan in force (embedded verbatim; fully determines the run
    /// together with the scenario).
    pub plan: MultiQueryPlanSpec,
    /// The plan name ([`MultiQueryPlanSpec::name`]) — the coverage key.
    pub plan_name: String,
    /// Total messages of the joint run (everything on one engine).
    pub messages: u64,
    /// Sum of the message counts of each query run independently on its own
    /// fresh engine over the identical rows — the un-amortized baseline.
    pub independent_messages: u64,
    /// Per-query attributed cost in [`SPLIT_SCALE`]-ths of a message, in
    /// registration order. Sums to exactly `messages × SPLIT_SCALE` (the
    /// ledger invariant the query-set driver itself asserts).
    pub per_query_units: Vec<u64>,
    /// Reports the joint run delivered (routing volume, for context).
    pub deliveries: u64,
    /// Invalid output steps summed over the queries, each validated against
    /// its own subset-restricted row. Gated as a permille fraction of
    /// `steps × queries` by `multiquery_invalid_fraction_permille`.
    pub invalid_steps: u64,
    /// Amortization factor: `messages / max(independent_messages, 1)`.
    /// Below 1 the shared run is cheaper than its independent baseline.
    pub amortization: f64,
    /// Ratcheted amortization ceiling (`CompetitiveFloors::ceiling` applied
    /// to the amortization) — a sharing regression shows up here even though
    /// no OPT ratio exists for the joint run.
    pub amortization_ceiling: f64,
}

/// The campaign output, serialised to `BENCH_competitive.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompetitiveReport {
    /// Schema identifier (`"competitive"`).
    pub bench: String,
    /// `"quick"` (CI smoke) or `"full"` (the committed report).
    pub scale: String,
    /// The competitive floor table the report was generated against.
    pub floors: CompetitiveFloors,
    /// All measured fault-free cells.
    pub cells: Vec<CampaignCell>,
    /// All measured fault-axis cells (see [`FaultCell`]).
    pub fault_cells: Vec<FaultCell>,
    /// All measured membership-axis cells (see [`MembershipCell`]).
    pub membership_cells: Vec<MembershipCell>,
    /// All measured multi-query-axis cells (see [`MultiQueryCell`]).
    pub multiquery_cells: Vec<MultiQueryCell>,
}

/// The standard scenario grid.
///
/// Every family appears at `n = 64`. The full grid is a strict **superset**
/// of the quick grid: it contains every quick cell verbatim (same steps and
/// seeds) plus longer-horizon variants, a second error (`ε = 1/4`), a larger
/// population per family, and two large-`n` tractability probes that exercise
/// the buffer-reusing OPT solver at campaign scale. The superset property is
/// what gives the CI smoke run its ratchet: every quick cell it measures has
/// a committed counterpart with a committed ceiling to compare against
/// (see [`check_against_baseline`]).
pub fn standard_grid(quick: bool) -> Vec<ScenarioSpec> {
    let quick_steps = 60usize;
    let steps = 240usize;
    let k = 4usize;
    // The dense-neighbourhood family runs at the Theorem 5.8 operating point
    // (k = 8, the E6 configuration): the dense-vs-exact separation the floor
    // check asserts needs the k-th value to sit well inside the pack.
    let dense_k = 8usize;
    let families: [GeneratorSpec; 8] = [
        GeneratorSpec::Zipf { peak_load: 100_000 },
        GeneratorSpec::Noise {
            sigma: 12,
            z: 1 << 18,
        },
        GeneratorSpec::RandomWalk {
            delta: 1 << 20,
            max_step: 1 << 10,
            move_permille: 300,
        },
        GeneratorSpec::Gap { high_base: 1 << 20 },
        GeneratorSpec::Adversarial {
            sigma: 16,
            y0: 1 << 20,
        },
        GeneratorSpec::RegimeSwitch {
            sigma: 12,
            z: 1 << 18,
            segment_len: 20,
        },
        GeneratorSpec::CorrelatedBurst {
            base_load: 50_000,
            factor: 8,
            group: 8,
            burst_permille: 100,
        },
        GeneratorSpec::Churn {
            z: 1 << 18,
            churn_permille: 80,
        },
    ];
    let eps_base = Epsilon::TENTH;
    let mut grid = Vec::new();
    for (i, generator) in families.into_iter().enumerate() {
        let seed = 0xCA3C + i as u64;
        let k = match generator {
            GeneratorSpec::Noise { .. } => dense_k,
            _ => k,
        };
        // The quick cell — identical in both grids (the ratchet anchor).
        grid.push(ScenarioSpec {
            generator,
            n: 64,
            k,
            eps: eps_base,
            steps: quick_steps,
            seed,
        });
        if !quick {
            grid.push(ScenarioSpec {
                generator,
                n: 64,
                k,
                eps: eps_base,
                steps,
                seed,
            });
            grid.push(ScenarioSpec {
                generator,
                n: 64,
                k,
                eps: Epsilon::new(1, 4).unwrap(),
                steps,
                seed,
            });
            grid.push(ScenarioSpec {
                generator,
                n: 256,
                k,
                eps: eps_base,
                steps,
                seed,
            });
        }
    }
    if !quick {
        // Tractability probes: the OPT decomposition (and the engines) must
        // stay fast at n = 10⁵ — quiet walks and churn keep the message volume
        // sane while still exercising full-width rows.
        grid.push(ScenarioSpec {
            generator: GeneratorSpec::RandomWalk {
                delta: 1 << 30,
                max_step: 1 << 10,
                move_permille: 10,
            },
            n: 100_000,
            k,
            eps: eps_base,
            steps: 100,
            seed: 0xB16,
        });
        // The churn probe stops at 2·10⁴: `DenseProtocol`'s server-side
        // regrouping makes per-step churn at 10⁵ nodes a minutes-per-cell
        // affair (an engine-side optimisation target, not a campaign one).
        grid.push(ScenarioSpec {
            generator: GeneratorSpec::Churn {
                z: 1 << 18,
                churn_permille: 2,
            },
            n: 20_000,
            k,
            eps: eps_base,
            steps: 100,
            seed: 0xB17,
        });
    }
    grid
}

/// Runs one scenario under one protocol and measures its competitive ratio.
pub fn run_cell(
    spec: &ScenarioSpec,
    protocol: ProtocolKind,
    floors: &CompetitiveFloors,
    solver: &mut PhaseSolver,
) -> CampaignCell {
    let mut workload = spec.generator.build(spec.n, spec.k, spec.eps, spec.seed);
    let mut monitor = protocol.build_monitor(spec.k, spec.eps);
    let mut net = IndexedEngine::new(spec.n, spec.seed);
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(spec.steps);
    // A second, never-stepped instance of the regime-switching generator
    // serves as the step → regime oracle, so the attribution below uses the
    // generator's own `regime_of_step` instead of a re-derived formula.
    let regime_probe = match spec.generator {
        GeneratorSpec::RegimeSwitch {
            sigma,
            z,
            segment_len,
        } => Some(RegimeSwitchWorkload::new(
            spec.n,
            spec.k,
            sigma,
            z,
            spec.eps,
            segment_len,
            spec.seed,
        )),
        _ => None,
    };
    let mut regime_msgs: BTreeMap<String, u64> = BTreeMap::new();
    let mut prev_total = 0u64;
    let mut emitted = 0usize;
    let report = run_adaptive_observed(
        monitor.as_mut(),
        &mut net,
        spec.eps,
        |filters| {
            if emitted == spec.steps {
                return None;
            }
            emitted += 1;
            let row = workload.next_step_adaptive(filters);
            rows.push(row.clone());
            Some(row)
        },
        |obs| {
            if let Some(probe) = &regime_probe {
                let regime = probe.regime_of_step(obs.step);
                *regime_msgs.entry(regime.name().to_string()).or_insert(0) +=
                    obs.messages_total - prev_total;
                prev_total = obs.messages_total;
            }
        },
    );
    let trace = Trace::new(rows).expect("campaign rows are rectangular and non-empty");
    let opt: OfflineCost = match protocol.adversary() {
        Adversary::Exact => ExactOfflineOpt::new(spec.k).cost_with(solver, &trace),
        Adversary::Approx => ApproxOfflineOpt::new(spec.k, spec.eps).cost_with(solver, &trace),
        Adversary::HalfEps => ApproxOfflineOpt::half_of(spec.k, spec.eps).cost_with(solver, &trace),
    }
    .expect("grid scenarios always satisfy 1 <= k < n");
    let ratio = opt.competitive_ratio(report.messages());
    let mut by_label: BTreeMap<String, u64> = BTreeMap::new();
    for ((label, _kind), count) in &report.stats.by_label_kind {
        *by_label.entry(label.to_string()).or_insert(0) += count;
    }
    CampaignCell {
        scenario: *spec,
        protocol: protocol.name().to_string(),
        messages: report.messages(),
        rounds: report.stats.rounds,
        invalid_steps: report.invalid_steps,
        opt_lower: opt.lower_bound,
        opt_upper: opt.upper_bound,
        opt_eps: opt.eps,
        ratio,
        ceiling: floors.ceiling(ratio),
        messages_by_label: label_counts(by_label),
        messages_by_regime: label_counts(regime_msgs),
    }
}

/// The standard fault grid: base scenarios × one spec per fault family.
///
/// The base scenarios are **non-adaptive** families (noise at the dense
/// operating point, random walks), so the intended trace — and therefore the
/// OPT lower bound and the fault-free `clean_messages` — is identical with
/// and without the fault layer; the difference between a fault cell and its
/// clean twin is purely what the fault plan did. The three fault families
/// are chosen to stay within the protocols' *monitoring* invariants: upstream
/// drops lose reports the server simply never learns of, same-run latency
/// delays truthful replies, and crash/rejoin re-syncs filters before a node's
/// next observation is admitted. (Downstream drops and reply reordering are
/// harness capabilities exercised by the raw-`Network` fault tests; steering
/// them through the full monitors could violate protocol preconditions the
/// paper assumes, which would measure broken plumbing rather than graceful
/// degradation.)
///
/// Like [`standard_grid`], the full grid contains every quick cell verbatim
/// (the ratchet anchor) plus longer-horizon variants.
pub fn standard_fault_grid(quick: bool) -> Vec<(ScenarioSpec, FaultSpec)> {
    let bases = [
        (
            GeneratorSpec::Noise {
                sigma: 12,
                z: 1 << 18,
            },
            8usize, // the Theorem 5.8 dense operating point
        ),
        (
            GeneratorSpec::RandomWalk {
                delta: 1 << 20,
                max_step: 1 << 10,
                move_permille: 300,
            },
            4usize,
        ),
    ];
    // Intensities are calibrated against the floor bars at the *full*
    // 240-step horizon (see the ignored `calibrate_fault_grid` test): the
    // crash churn is stationary — per-node 10‰/step with 5-step outages
    // settles near 3 of 64 nodes down — so the steady-state invalid
    // fraction, not the quick 60-step transient, is what must clear
    // `fault_invalid_fraction_permille`.
    let faults = [
        FaultSpec::latency_rounds(0xFA01, 0, 1),
        FaultSpec::drop_upstream(0xFA02, 150),
        FaultSpec::crash_rejoin(0xFA03, 10, 5, 8),
    ];
    let mut grid = Vec::new();
    for (i, (generator, k)) in bases.into_iter().enumerate() {
        let seed = 0xFA10 + i as u64;
        for fault in faults {
            // The quick cell — identical in both grids (the ratchet anchor).
            grid.push((
                ScenarioSpec {
                    generator,
                    n: 64,
                    k,
                    eps: Epsilon::TENTH,
                    steps: 60,
                    seed,
                },
                fault,
            ));
            if !quick {
                grid.push((
                    ScenarioSpec {
                        generator,
                        n: 64,
                        k,
                        eps: Epsilon::TENTH,
                        steps: 240,
                        seed,
                    },
                    fault,
                ));
            }
        }
    }
    grid
}

/// Runs one fault cell: the scenario under `protocol` on a
/// [`FaultyTransport`]-wrapped engine executing `fault`.
///
/// `clean_messages` is the message count of the fault-free run of the same
/// scenario/protocol (the caller measures it once per pair and reuses it
/// across the pair's fault cells).
pub fn run_fault_cell(
    spec: &ScenarioSpec,
    fault: &FaultSpec,
    protocol: ProtocolKind,
    floors: &CompetitiveFloors,
    solver: &mut PhaseSolver,
    clean_messages: u64,
) -> FaultCell {
    let mut workload = spec.generator.build(spec.n, spec.k, spec.eps, spec.seed);
    let mut monitor = protocol.build_monitor(spec.k, spec.eps);
    let mut net = FaultyTransport::new(IndexedEngine::new(spec.n, spec.seed), *fault);
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(spec.steps);
    let mut emitted = 0usize;
    let report = run_adaptive_observed(
        monitor.as_mut(),
        &mut net,
        spec.eps,
        |filters| {
            if emitted == spec.steps {
                return None;
            }
            emitted += 1;
            let row = workload.next_step_adaptive(filters);
            rows.push(row.clone());
            Some(row)
        },
        |_| {},
    );
    // The adversary decomposes the *intended* trace: OPT runs on a reliable
    // network, so the fault cell's ratio is online-under-faults vs
    // offline-without-faults — the degradation the paper cannot bound.
    let trace = Trace::new(rows).expect("campaign rows are rectangular and non-empty");
    let opt: OfflineCost = match protocol.adversary() {
        Adversary::Exact => ExactOfflineOpt::new(spec.k).cost_with(solver, &trace),
        Adversary::Approx => ApproxOfflineOpt::new(spec.k, spec.eps).cost_with(solver, &trace),
        Adversary::HalfEps => ApproxOfflineOpt::half_of(spec.k, spec.eps).cost_with(solver, &trace),
    }
    .expect("grid scenarios always satisfy 1 <= k < n");
    let ratio = opt.competitive_ratio(report.messages());
    let degradation = report.messages() as f64 / clean_messages.max(1) as f64;
    let fs = net.fault_stats();
    FaultCell {
        scenario: *spec,
        protocol: protocol.name().to_string(),
        fault: *fault,
        fault_family: fault.family().to_string(),
        messages: report.messages(),
        clean_messages,
        recovery_messages: report.stats.messages_of_label(ProtocolLabel::Recovery),
        invalid_steps: report.invalid_steps,
        opt_lower: opt.lower_bound,
        ratio,
        ceiling: floors.ceiling(ratio),
        degradation,
        degradation_ceiling: floors.ceiling(degradation),
        crashes: fs.crashes,
        rejoins: fs.rejoins,
        dropped_messages: fs.dropped(),
    }
}

/// Runs the fault axis: every [`standard_fault_grid`] pair × every protocol,
/// measuring each pair's fault-free twin once for the degradation baseline.
pub fn run_fault_campaign(
    quick: bool,
    floors: &CompetitiveFloors,
    solver: &mut PhaseSolver,
    log: impl Fn(&str),
) -> Vec<FaultCell> {
    let mut clean_cache: BTreeMap<String, u64> = BTreeMap::new();
    let mut cells = Vec::new();
    for (spec, fault) in standard_fault_grid(quick) {
        for protocol in ProtocolKind::ALL {
            let clean_key = format!("{spec:?}/{}", protocol.name());
            let clean_messages = *clean_cache
                .entry(clean_key)
                .or_insert_with(|| run_cell(&spec, protocol, floors, solver).messages);
            let cell = run_fault_cell(&spec, &fault, protocol, floors, solver, clean_messages);
            log(&format!(
                "campaign: {:>16} n={:>6} fault={:>7} {:>13}: {:>8} msgs (clean {:>8}) = degradation {:>6.2}, ratio {:>8.2}, {:>2} invalid steps",
                cell.scenario.generator.family(),
                spec.n,
                cell.fault_family,
                cell.protocol,
                cell.messages,
                cell.clean_messages,
                cell.degradation,
                cell.ratio,
                cell.invalid_steps,
            ));
            cells.push(cell);
        }
    }
    cells
}

/// The standard membership grid: base scenarios × one churn plan per
/// intensity.
///
/// The bases are the same **non-adaptive** families as
/// [`standard_fault_grid`] (noise at the dense operating point, random
/// walks), so the churn-free `clean_messages` twin is exactly a base-campaign
/// run of the scenario. Two plans cover the coverage floor
/// (`min_membership_plans`): a *mild* plan (about one departure per step
/// somewhere in the population, brief outages) and an *aggressive* plan
/// (several concurrent outages, the live floor doing real work). Both floors
/// stay far above `k = 8`, so the monitored top-k is always defined. Like the
/// other grids, the full grid contains every quick cell verbatim (the ratchet
/// anchor) plus longer-horizon variants.
pub fn standard_membership_grid(quick: bool) -> Vec<(ScenarioSpec, MembershipPlanSpec)> {
    let bases = [
        (
            GeneratorSpec::Noise {
                sigma: 12,
                z: 1 << 18,
            },
            8usize, // the Theorem 5.8 dense operating point
        ),
        (
            GeneratorSpec::RandomWalk {
                delta: 1 << 20,
                max_step: 1 << 10,
                move_permille: 300,
            },
            4usize,
        ),
    ];
    let plans = [
        MembershipPlanSpec {
            seed: 0xAB01,
            leave_permille: 15,
            downtime: 4,
            min_live: 56,
        },
        MembershipPlanSpec {
            seed: 0xAB02,
            leave_permille: 60,
            downtime: 8,
            min_live: 40,
        },
    ];
    let mut grid = Vec::new();
    for (i, (generator, k)) in bases.into_iter().enumerate() {
        let seed = 0xAB10 + i as u64;
        for plan in plans {
            // The quick cell — identical in both grids (the ratchet anchor).
            grid.push((
                ScenarioSpec {
                    generator,
                    n: 64,
                    k,
                    eps: Epsilon::TENTH,
                    steps: 60,
                    seed,
                },
                plan,
            ));
            if !quick {
                grid.push((
                    ScenarioSpec {
                        generator,
                        n: 64,
                        k,
                        eps: Epsilon::TENTH,
                        steps: 240,
                        seed,
                    },
                    plan,
                ));
            }
        }
    }
    grid
}

/// Runs one membership cell: the scenario under `protocol` while the
/// population churns according to `plan`.
///
/// The OPT decomposition runs on the **masked** trace — the rows as the model
/// holds them, dead slots pinned to 0 — because an offline algorithm facing
/// the same churn sees exactly those values; decomposing the raw workload
/// output would charge OPT for phase changes among values nobody observed.
/// `clean_messages` is the message count of the churn-free run of the same
/// scenario/protocol (the caller measures it once per pair and reuses it
/// across the pair's membership cells).
pub fn run_membership_cell(
    spec: &ScenarioSpec,
    plan: &MembershipPlanSpec,
    protocol: ProtocolKind,
    floors: &CompetitiveFloors,
    solver: &mut PhaseSolver,
    clean_messages: u64,
) -> MembershipCell {
    let mut workload = spec.generator.build(spec.n, spec.k, spec.eps, spec.seed);
    let schedule = plan.build(spec.n, spec.steps as u64);
    let mut monitor = protocol.build_monitor(spec.k, spec.eps);
    let mut net = IndexedEngine::new(spec.n, spec.seed);
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(spec.steps);
    let mut emitted = 0usize;
    let report = run_with_membership_observed(
        monitor.as_mut(),
        &mut net,
        spec.eps,
        |filters| {
            if emitted == spec.steps {
                return None;
            }
            emitted += 1;
            Some(workload.next_step_adaptive(filters))
        },
        schedule.driver(),
        // The observer sees the masked row (the driver masks before
        // delivery) — record that as the trace OPT decomposes.
        |obs| rows.push(obs.row.to_vec()),
    );
    let trace = Trace::new(rows).expect("campaign rows are rectangular and non-empty");
    let opt: OfflineCost = match protocol.adversary() {
        Adversary::Exact => ExactOfflineOpt::new(spec.k).cost_with(solver, &trace),
        Adversary::Approx => ApproxOfflineOpt::new(spec.k, spec.eps).cost_with(solver, &trace),
        Adversary::HalfEps => ApproxOfflineOpt::half_of(spec.k, spec.eps).cost_with(solver, &trace),
    }
    .expect("grid scenarios always satisfy 1 <= k < n");
    let ratio = opt.competitive_ratio(report.messages());
    let degradation = report.messages() as f64 / clean_messages.max(1) as f64;
    let mut leaves = 0u64;
    let mut joins = 0u64;
    for t in 0..spec.steps as u64 {
        for event in schedule.events_at(t) {
            match event {
                MembershipEvent::Leave(_) => leaves += 1,
                MembershipEvent::Join(_) => joins += 1,
            }
        }
    }
    MembershipCell {
        scenario: *spec,
        protocol: protocol.name().to_string(),
        plan: *plan,
        plan_name: plan.name(),
        messages: report.messages(),
        clean_messages,
        recovery_messages: report.stats.messages_of_label(ProtocolLabel::Recovery),
        invalid_steps: report.invalid_steps,
        leaves,
        joins,
        opt_lower: opt.lower_bound,
        ratio,
        ceiling: floors.ceiling(ratio),
        degradation,
        degradation_ceiling: floors.ceiling(degradation),
    }
}

/// Runs the membership axis: every [`standard_membership_grid`] pair × every
/// protocol, measuring each pair's churn-free twin once for the degradation
/// baseline.
pub fn run_membership_campaign(
    quick: bool,
    floors: &CompetitiveFloors,
    solver: &mut PhaseSolver,
    log: impl Fn(&str),
) -> Vec<MembershipCell> {
    let mut clean_cache: BTreeMap<String, u64> = BTreeMap::new();
    let mut cells = Vec::new();
    for (spec, plan) in standard_membership_grid(quick) {
        for protocol in ProtocolKind::ALL {
            let clean_key = format!("{spec:?}/{}", protocol.name());
            let clean_messages = *clean_cache
                .entry(clean_key)
                .or_insert_with(|| run_cell(&spec, protocol, floors, solver).messages);
            let cell = run_membership_cell(&spec, &plan, protocol, floors, solver, clean_messages);
            log(&format!(
                "campaign: {:>16} n={:>6} plan={:>24} {:>13}: {:>8} msgs (clean {:>8}) = degradation {:>6.2}, ratio {:>8.2}, {:>3} leaves, {:>2} invalid steps",
                cell.scenario.generator.family(),
                spec.n,
                cell.plan_name,
                cell.protocol,
                cell.messages,
                cell.clean_messages,
                cell.degradation,
                cell.ratio,
                cell.leaves,
                cell.invalid_steps,
            ));
            cells.push(cell);
        }
    }
    cells
}

/// The standard multi-query grid: base scenarios × one plan per query-set
/// shape.
///
/// The bases are **non-adaptive** families so the joint run and its
/// independent baseline see the identical rows. The noise-field base puts the
/// top-k boundary inside a small oscillating pack — every step has a
/// violation and its resolution is cheap, the regime where sharing one
/// violation report among queries amortizes best. Three plan shapes cover the
/// three claims of the design: `twin` (identical full-population queries —
/// maximal sharing), `overlap` (partially overlapping subsets), `disjoint`
/// (non-overlapping subsets — pure isolation, no sharing possible). Like the
/// other grids, the full grid contains every quick cell verbatim (the ratchet
/// anchor) plus longer-horizon variants.
pub fn standard_multiquery_grid(quick: bool) -> Vec<(ScenarioSpec, MultiQueryPlanSpec)> {
    let topk = ProtocolKind::TopKProtocol.name();
    let eps = Epsilon::TENTH;
    let k = 4usize;
    let twin = MultiQueryPlanSpec {
        name: "twin".to_string(),
        queries: vec![QuerySpec::new(k, eps, topk), QuerySpec::new(k, eps, topk)],
    };
    let overlap = MultiQueryPlanSpec {
        name: "overlap".to_string(),
        queries: vec![
            QuerySpec::new(k, eps, topk).with_subset(NodeSubset::range(0, 48)),
            QuerySpec::new(k, eps, topk).with_subset(NodeSubset::range(16, 48)),
        ],
    };
    let disjoint = MultiQueryPlanSpec {
        name: "disjoint".to_string(),
        queries: vec![
            QuerySpec::new(k, eps, topk).with_subset(NodeSubset::range(0, 32)),
            QuerySpec::new(k, eps, topk).with_subset(NodeSubset::range(32, 32)),
        ],
    };
    // The boundary-oscillation operating point: 3 clear leaders, a pack of 2
    // oscillating across the rank-4 boundary.
    let noise = GeneratorSpec::NoiseField {
        high: 3,
        sigma: 2,
        z: 1 << 18,
    };
    let walk = GeneratorSpec::RandomWalk {
        delta: 1 << 20,
        max_step: 1 << 10,
        move_permille: 300,
    };
    let mut grid = Vec::new();
    let pairs: [(GeneratorSpec, &MultiQueryPlanSpec); 4] = [
        (noise, &twin),
        (noise, &overlap),
        (noise, &disjoint),
        (walk, &twin),
    ];
    for (i, (generator, plan)) in pairs.into_iter().enumerate() {
        let seed = 0xA110 + i as u64;
        // The quick cell — identical in both grids (the ratchet anchor).
        grid.push((
            ScenarioSpec {
                generator,
                n: 64,
                k,
                eps,
                steps: 60,
                seed,
            },
            plan.clone(),
        ));
        if !quick {
            grid.push((
                ScenarioSpec {
                    generator,
                    n: 64,
                    k,
                    eps,
                    steps: 240,
                    seed,
                },
                plan.clone(),
            ));
        }
    }
    grid
}

/// Runs one multi-query cell: the plan's query set jointly on one shared
/// engine, then each query independently on its own fresh engine over the
/// identical rows, recording the amortization factor between the two.
pub fn run_multiquery_cell(
    spec: &ScenarioSpec,
    plan: &MultiQueryPlanSpec,
    floors: &CompetitiveFloors,
) -> MultiQueryCell {
    // Pre-generate the rows once so the joint run and every independent
    // baseline see the identical trace (the grid families are non-adaptive,
    // so the filters passed to the generator are irrelevant).
    let mut workload = spec.generator.build(spec.n, spec.k, spec.eps, spec.seed);
    let full = vec![Filter::FULL; spec.n];
    let rows: Vec<Vec<Value>> = (0..spec.steps)
        .map(|_| workload.next_step_adaptive(&full))
        .collect();

    let build_set = |queries: &[QuerySpec]| {
        let mut set = QuerySet::new(spec.n);
        for q in queries {
            let protocol = ProtocolKind::from_name(&q.protocol)
                .unwrap_or_else(|| panic!("unknown protocol `{}` in multi-query plan", q.protocol));
            set.register(q.clone(), protocol.build_monitor(q.k, q.eps));
        }
        set
    };

    let mut set = build_set(&plan.queries);
    let mut net = IndexedEngine::new(spec.n, spec.seed);
    let report = run_query_set(&mut set, &mut net, rows.iter().cloned());

    let mut independent_messages = 0u64;
    for q in &plan.queries {
        let mut solo_set = build_set(std::slice::from_ref(q));
        let mut solo_net = IndexedEngine::new(spec.n, spec.seed);
        let solo = run_query_set(&mut solo_set, &mut solo_net, rows.iter().cloned());
        independent_messages += solo.messages();
    }

    let messages = report.messages();
    let amortization = messages as f64 / independent_messages.max(1) as f64;
    MultiQueryCell {
        scenario: *spec,
        plan: plan.clone(),
        plan_name: plan.name.clone(),
        messages,
        independent_messages,
        per_query_units: report.per_query.iter().map(|r| r.units).collect(),
        deliveries: report.deliveries.len() as u64,
        invalid_steps: report.per_query.iter().map(|r| r.invalid_steps).sum(),
        amortization,
        amortization_ceiling: floors.ceiling(amortization),
    }
}

/// Runs the multi-query axis: every [`standard_multiquery_grid`] pair (the
/// protocol of every query is embedded in the plan, so there is no outer
/// protocol loop).
pub fn run_multiquery_campaign(
    quick: bool,
    floors: &CompetitiveFloors,
    log: impl Fn(&str),
) -> Vec<MultiQueryCell> {
    let mut cells = Vec::new();
    for (spec, plan) in standard_multiquery_grid(quick) {
        let cell = run_multiquery_cell(&spec, &plan, floors);
        log(&format!(
            "campaign: {:>16} n={:>6} plan={:>9} x{}: {:>8} msgs (independent {:>8}) = amortization {:>6.3}, {:>4} deliveries, {:>2} invalid steps",
            cell.scenario.generator.family(),
            spec.n,
            cell.plan_name,
            cell.plan.queries.len(),
            cell.messages,
            cell.independent_messages,
            cell.amortization,
            cell.deliveries,
            cell.invalid_steps,
        ));
        cells.push(cell);
    }
    cells
}

/// Runs only the multi-query axis and wraps it in a report whose other cell
/// lists are empty — the `--campaign --multiquery-only` smoke mode, which CI
/// uses to re-measure the multi-query grid and ratchet it against the
/// committed full-scale report without re-running the base campaign. The
/// bench id is `"competitive-multiquery"` so the partial report can never be
/// mistaken for (or committed as) a full campaign report.
pub fn run_multiquery_report(quick: bool, log: impl Fn(&str)) -> CompetitiveReport {
    let floors = FloorTable::STANDARD.competitive;
    let multiquery_cells = run_multiquery_campaign(quick, &floors, log);
    CompetitiveReport {
        bench: "competitive-multiquery".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        floors,
        cells: Vec::new(),
        fault_cells: Vec::new(),
        membership_cells: Vec::new(),
        multiquery_cells,
    }
}

/// Runs only the membership axis and wraps it in a report whose other cell
/// lists are empty — the `--campaign --membership-only` smoke mode, which CI
/// uses to re-measure the membership grid and ratchet it against the
/// committed full-scale report without re-running the base campaign. The
/// bench id is `"competitive-membership"` so the partial report can never be
/// mistaken for (or committed as) a full campaign report.
pub fn run_membership_report(quick: bool, log: impl Fn(&str)) -> CompetitiveReport {
    let floors = FloorTable::STANDARD.competitive;
    let mut solver = PhaseSolver::new();
    let membership_cells = run_membership_campaign(quick, &floors, &mut solver, log);
    CompetitiveReport {
        bench: "competitive-membership".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        floors,
        cells: Vec::new(),
        fault_cells: Vec::new(),
        membership_cells,
        multiquery_cells: Vec::new(),
    }
}

/// Runs only the fault axis and wraps it in a report whose `cells` are empty
/// — the `--campaign --faults-only` smoke mode, which CI uses to re-measure
/// the (much cheaper) fault grid and ratchet it against the committed
/// full-scale report without re-running the base campaign. The bench id is
/// `"competitive-faults"` so the partial report can never be mistaken for (or
/// committed as) a full campaign report.
pub fn run_faults_report(quick: bool, log: impl Fn(&str)) -> CompetitiveReport {
    let floors = FloorTable::STANDARD.competitive;
    let mut solver = PhaseSolver::new();
    let fault_cells = run_fault_campaign(quick, &floors, &mut solver, log);
    CompetitiveReport {
        bench: "competitive-faults".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        floors,
        cells: Vec::new(),
        fault_cells,
        membership_cells: Vec::new(),
        multiquery_cells: Vec::new(),
    }
}

/// Runs the whole campaign grid (every scenario × every protocol), plus the
/// fault axis ([`run_fault_campaign`]) and the membership axis
/// ([`run_membership_campaign`]).
pub fn run_campaign(quick: bool, log: impl Fn(&str)) -> CompetitiveReport {
    let floors = FloorTable::STANDARD.competitive;
    let mut solver = PhaseSolver::new();
    let mut cells = Vec::new();
    for spec in standard_grid(quick) {
        for protocol in ProtocolKind::ALL {
            let cell = run_cell(&spec, protocol, &floors, &mut solver);
            log(&format!(
                "campaign: {:>16} n={:>6} eps={} {:>13}: {:>8} msgs / opt {:>5} = ratio {:>8.2} (ceiling {:.2})",
                cell.family(),
                spec.n,
                spec.eps,
                cell.protocol,
                cell.messages,
                cell.opt_lower,
                cell.ratio,
                cell.ceiling,
            ));
            cells.push(cell);
        }
    }
    let fault_cells = run_fault_campaign(quick, &floors, &mut solver, &log);
    let membership_cells = run_membership_campaign(quick, &floors, &mut solver, &log);
    let multiquery_cells = run_multiquery_campaign(quick, &floors, &log);
    CompetitiveReport {
        bench: "competitive".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        floors,
        cells,
        fault_cells,
        membership_cells,
        multiquery_cells,
    }
}

/// Validates a campaign report against the floor table in force. Returns
/// human-readable failures (empty = pass).
///
/// The checks, in order: the report's embedded floor table must *be* the
/// standard one (a report generated against a relaxed table is rejected);
/// every cell must be correct (zero invalid steps), within its ceiling, and
/// its ceiling must match the standard formula (no hand-raised ceilings);
/// coverage must span the protocol × family grid; and on dense-neighbourhood
/// inputs `DenseProtocol` must not send more than the exact monitor
/// (the Theorem 5.8 separation, the paper's raison d'être).
pub fn check_competitive_floors(report: &CompetitiveReport) -> Vec<String> {
    let floors = FloorTable::STANDARD.competitive;
    let mut failures = Vec::new();
    if report.bench != "competitive" {
        failures.push(format!(
            "report has bench id `{}`, expected `competitive`",
            report.bench
        ));
    }
    if report.floors != floors {
        failures.push(
            "report was generated against a different floor table; regenerate with --campaign"
                .to_string(),
        );
    }
    if report.cells.is_empty() {
        failures.push("report contains no cells".to_string());
        return failures;
    }
    let mut protocols = BTreeSet::new();
    let mut families = BTreeSet::new();
    let mut pairs = BTreeSet::new();
    for cell in &report.cells {
        let id = format!(
            "{}/{} (n={}, eps={})",
            cell.family(),
            cell.protocol,
            cell.scenario.n,
            cell.scenario.eps
        );
        protocols.insert(cell.protocol.clone());
        families.insert(cell.family());
        pairs.insert((cell.family(), cell.protocol.clone()));
        if cell.invalid_steps > floors.max_invalid_steps {
            failures.push(format!(
                "{id}: {} invalid output steps (tolerated: {})",
                cell.invalid_steps, floors.max_invalid_steps
            ));
        }
        if !cell.ratio.is_finite() || cell.ratio < 0.0 {
            failures.push(format!("{id}: ratio {} is not a sane number", cell.ratio));
            continue;
        }
        // The ratio must actually BE messages / opt_lower — otherwise editing
        // `ratio` and `ceiling` together would bypass every ceiling check
        // while the regressed `messages` sits in the same cell.
        let recomputed = cell.messages as f64 / cell.opt_lower.max(1) as f64;
        if (cell.ratio - recomputed).abs() > 1e-9 {
            failures.push(format!(
                "{id}: ratio {} does not match messages/opt_lower = {recomputed} — the cell was edited or corrupted",
                cell.ratio
            ));
        }
        if cell.ratio > cell.ceiling {
            failures.push(format!(
                "{id}: ratio {:.2} exceeds the committed ceiling {:.2}",
                cell.ratio, cell.ceiling
            ));
        }
        if cell.ceiling > floors.ceiling(cell.ratio) + 1e-9 {
            failures.push(format!(
                "{id}: ceiling {:.2} is looser than the standard formula allows ({:.2})",
                cell.ceiling,
                floors.ceiling(cell.ratio)
            ));
        }
        let poll_cost = cell.scenario.n as f64 * cell.scenario.steps as f64;
        if cell.messages as f64 > floors.max_poll_factor * poll_cost {
            failures.push(format!(
                "{id}: {} messages exceeds {} x the naive polling cost ({} x {} steps) — filters have stopped paying for themselves",
                cell.messages, floors.max_poll_factor, cell.scenario.n, cell.scenario.steps
            ));
        }
    }
    if protocols.len() < floors.min_protocols {
        failures.push(format!(
            "only {} protocols covered, need {}",
            protocols.len(),
            floors.min_protocols
        ));
    }
    if families.len() < floors.min_generators {
        failures.push(format!(
            "only {} generator families covered, need {}",
            families.len(),
            floors.min_generators
        ));
    }
    if pairs.len() < protocols.len() * families.len() {
        failures.push(format!(
            "grid has holes: {} protocol × family pairs covered, expected {} ({} protocols × {} families)",
            pairs.len(),
            protocols.len() * families.len(),
            protocols.len(),
            families.len()
        ));
    }
    // A full-scale report must contain exactly the cells the current code's
    // grid produces — one per `standard_grid(false)` scenario × protocol.
    // This both catches hand-deleted individual cells (the pair coverage
    // above cannot: another scenario of the same family still covers the
    // pair) and fails loudly when the grid definition changed without the
    // committed report being regenerated.
    if report.scale == "full" {
        let expected = standard_grid(false);
        for spec in &expected {
            for protocol in ProtocolKind::ALL {
                if !report
                    .cells
                    .iter()
                    .any(|c| c.scenario == *spec && c.protocol == protocol.name())
                {
                    failures.push(format!(
                        "full-scale report is missing the {}/{} cell (n={}, eps={}) the current grid defines — regenerate with --campaign",
                        spec.generator.family(),
                        protocol.name(),
                        spec.n,
                        spec.eps
                    ));
                }
            }
        }
        let expected_cells = expected.len() * ProtocolKind::ALL.len();
        if report.cells.len() != expected_cells {
            failures.push(format!(
                "full-scale report has {} cells, the current grid defines {} — regenerate with --campaign",
                report.cells.len(),
                expected_cells
            ));
        }
    }
    // Theorem 5.8 separation: on every dense-neighbourhood scenario the dense
    // protocol must not send more messages than the exact monitor.
    for cell in &report.cells {
        if cell.family() != "noise" || cell.protocol != "dense" {
            continue;
        }
        let exact = report
            .cells
            .iter()
            .find(|c| c.scenario == cell.scenario && c.protocol == ProtocolKind::ExactTopK.name());
        if let Some(exact) = exact {
            if cell.messages > exact.messages {
                failures.push(format!(
                    "noise n={}: dense sent {} messages but the exact monitor only {} — the Thm. 5.8 separation is gone",
                    cell.scenario.n, cell.messages, exact.messages
                ));
            }
        }
    }
    failures.extend(check_fault_cells(
        &report.fault_cells,
        &floors,
        &report.scale,
    ));
    failures.extend(check_membership_cells(
        &report.membership_cells,
        &floors,
        &report.scale,
    ));
    failures.extend(check_multiquery_cells(
        &report.multiquery_cells,
        &floors,
        &report.scale,
    ));
    failures
}

/// Validates the fault axis of a report: per-cell consistency and ceilings,
/// fault-family coverage, and (full scale) exact grid sync. Shared between
/// [`check_competitive_floors`] and the `--faults-only` smoke mode.
pub fn check_fault_cells(
    cells: &[FaultCell],
    floors: &CompetitiveFloors,
    scale: &str,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut fault_families = BTreeSet::new();
    for cell in cells {
        let id = format!(
            "{}+{}/{} (n={}, steps={})",
            cell.scenario.generator.family(),
            cell.fault_family,
            cell.protocol,
            cell.scenario.n,
            cell.scenario.steps
        );
        fault_families.insert(cell.fault_family.clone());
        if cell.fault_family != cell.fault.family() {
            failures.push(format!(
                "{id}: fault_family `{}` does not match the embedded spec's family `{}`",
                cell.fault_family,
                cell.fault.family()
            ));
        }
        if !cell.ratio.is_finite() || cell.ratio < 0.0 {
            failures.push(format!("{id}: ratio {} is not a sane number", cell.ratio));
            continue;
        }
        // The same anti-tamper consistency rules as base cells, for both the
        // ratio and the degradation factor.
        let recomputed = cell.messages as f64 / cell.opt_lower.max(1) as f64;
        if (cell.ratio - recomputed).abs() > 1e-9 {
            failures.push(format!(
                "{id}: ratio {} does not match messages/opt_lower = {recomputed} — the cell was edited or corrupted",
                cell.ratio
            ));
        }
        let redegraded = cell.messages as f64 / cell.clean_messages.max(1) as f64;
        if (cell.degradation - redegraded).abs() > 1e-9 {
            failures.push(format!(
                "{id}: degradation {} does not match messages/clean_messages = {redegraded} — the cell was edited or corrupted",
                cell.degradation
            ));
        }
        if cell.ratio > cell.ceiling {
            failures.push(format!(
                "{id}: ratio {:.2} exceeds the committed ceiling {:.2}",
                cell.ratio, cell.ceiling
            ));
        }
        if cell.ceiling > floors.ceiling(cell.ratio) + 1e-9 {
            failures.push(format!(
                "{id}: ceiling {:.2} is looser than the standard formula allows ({:.2})",
                cell.ceiling,
                floors.ceiling(cell.ratio)
            ));
        }
        if cell.degradation > cell.degradation_ceiling {
            failures.push(format!(
                "{id}: degradation {:.2} exceeds the committed ceiling {:.2} — recovery traffic regressed",
                cell.degradation, cell.degradation_ceiling
            ));
        }
        if cell.degradation_ceiling > floors.ceiling(cell.degradation) + 1e-9 {
            failures.push(format!(
                "{id}: degradation ceiling {:.2} is looser than the standard formula allows ({:.2})",
                cell.degradation_ceiling,
                floors.ceiling(cell.degradation)
            ));
        }
        // Faults may break validity, but only as much as the injected fault
        // magnitudes explain: the permille bar is the regression guard for
        // the recovery machinery (a stale-filter leak shows up here).
        let tolerated = floors.fault_invalid_fraction_permille * cell.scenario.steps as u64 / 1000;
        if cell.invalid_steps > tolerated {
            failures.push(format!(
                "{id}: {} of {} output steps invalid (tolerated: {} = {}‰) — recovery no longer contains the damage",
                cell.invalid_steps,
                cell.scenario.steps,
                tolerated,
                floors.fault_invalid_fraction_permille
            ));
        }
        let poll_cost = cell.scenario.n as f64 * cell.scenario.steps as f64;
        if cell.messages as f64 > floors.fault_poll_factor * poll_cost {
            failures.push(format!(
                "{id}: {} messages exceeds {} x the naive polling cost — even under faults, filters must beat polling",
                cell.messages, floors.fault_poll_factor
            ));
        }
    }
    if fault_families.len() < floors.min_fault_families {
        failures.push(format!(
            "only {} fault families covered ({:?}), need {}",
            fault_families.len(),
            fault_families,
            floors.min_fault_families
        ));
    }
    // A full-scale report must contain exactly the current fault grid.
    if scale == "full" {
        let expected = standard_fault_grid(false);
        for (spec, fault) in &expected {
            for protocol in ProtocolKind::ALL {
                if !cells.iter().any(|c| {
                    c.scenario == *spec && c.fault == *fault && c.protocol == protocol.name()
                }) {
                    failures.push(format!(
                        "full-scale report is missing the {}+{}/{} fault cell (steps={}) the current grid defines — regenerate with --campaign",
                        spec.generator.family(),
                        fault.family(),
                        protocol.name(),
                        spec.steps
                    ));
                }
            }
        }
        let expected_cells = expected.len() * ProtocolKind::ALL.len();
        if cells.len() != expected_cells {
            failures.push(format!(
                "full-scale report has {} fault cells, the current grid defines {} — regenerate with --campaign",
                cells.len(),
                expected_cells
            ));
        }
    }
    failures
}

/// Validates the membership axis of a report: per-cell consistency and
/// ceilings, churn-plan coverage, and (full scale) exact grid sync. Shared
/// between [`check_competitive_floors`] and the `--membership-only` smoke
/// mode.
pub fn check_membership_cells(
    cells: &[MembershipCell],
    floors: &CompetitiveFloors,
    scale: &str,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut plans = BTreeSet::new();
    for cell in cells {
        let id = format!(
            "{}+{}/{} (n={}, steps={})",
            cell.scenario.generator.family(),
            cell.plan_name,
            cell.protocol,
            cell.scenario.n,
            cell.scenario.steps
        );
        plans.insert(cell.plan_name.clone());
        if cell.plan_name != cell.plan.name() {
            failures.push(format!(
                "{id}: plan_name `{}` does not match the embedded spec's name `{}`",
                cell.plan_name,
                cell.plan.name()
            ));
        }
        // A churn plan that never churns measures nothing — and its quiet
        // cells would launder in as legitimate membership coverage.
        if cell.leaves == 0 {
            failures.push(format!(
                "{id}: the plan executed no leave events — the membership axis is not exercised"
            ));
        }
        if !cell.ratio.is_finite() || cell.ratio < 0.0 {
            failures.push(format!("{id}: ratio {} is not a sane number", cell.ratio));
            continue;
        }
        // The same anti-tamper consistency rules as fault cells, for both the
        // ratio and the degradation factor.
        let recomputed = cell.messages as f64 / cell.opt_lower.max(1) as f64;
        if (cell.ratio - recomputed).abs() > 1e-9 {
            failures.push(format!(
                "{id}: ratio {} does not match messages/opt_lower = {recomputed} — the cell was edited or corrupted",
                cell.ratio
            ));
        }
        let redegraded = cell.messages as f64 / cell.clean_messages.max(1) as f64;
        if (cell.degradation - redegraded).abs() > 1e-9 {
            failures.push(format!(
                "{id}: degradation {} does not match messages/clean_messages = {redegraded} — the cell was edited or corrupted",
                cell.degradation
            ));
        }
        if cell.ratio > cell.ceiling {
            failures.push(format!(
                "{id}: ratio {:.2} exceeds the committed ceiling {:.2}",
                cell.ratio, cell.ceiling
            ));
        }
        if cell.ceiling > floors.ceiling(cell.ratio) + 1e-9 {
            failures.push(format!(
                "{id}: ceiling {:.2} is looser than the standard formula allows ({:.2})",
                cell.ceiling,
                floors.ceiling(cell.ratio)
            ));
        }
        if cell.degradation > cell.degradation_ceiling {
            failures.push(format!(
                "{id}: degradation {:.2} exceeds the committed ceiling {:.2} — rejoin replay traffic regressed",
                cell.degradation, cell.degradation_ceiling
            ));
        }
        if cell.degradation_ceiling > floors.ceiling(cell.degradation) + 1e-9 {
            failures.push(format!(
                "{id}: degradation ceiling {:.2} is looser than the standard formula allows ({:.2})",
                cell.degradation_ceiling,
                floors.ceiling(cell.degradation)
            ));
        }
        // Churn is visible to the validator (masked rows), so the bar only
        // absorbs the departure re-resolution transient — far tighter than
        // the fault axis's.
        let tolerated =
            floors.membership_invalid_fraction_permille * cell.scenario.steps as u64 / 1000;
        if cell.invalid_steps > tolerated {
            failures.push(format!(
                "{id}: {} of {} output steps invalid (tolerated: {} = {}‰) — membership re-resolution no longer contains the damage",
                cell.invalid_steps,
                cell.scenario.steps,
                tolerated,
                floors.membership_invalid_fraction_permille
            ));
        }
        let poll_cost = cell.scenario.n as f64 * cell.scenario.steps as f64;
        if cell.messages as f64 > floors.membership_poll_factor * poll_cost {
            failures.push(format!(
                "{id}: {} messages exceeds {} x the naive polling cost — even under churn, filters must beat polling",
                cell.messages, floors.membership_poll_factor
            ));
        }
    }
    if plans.len() < floors.min_membership_plans {
        failures.push(format!(
            "only {} membership plans covered ({:?}), need {}",
            plans.len(),
            plans,
            floors.min_membership_plans
        ));
    }
    // A full-scale report must contain exactly the current membership grid.
    if scale == "full" {
        let expected = standard_membership_grid(false);
        for (spec, plan) in &expected {
            for protocol in ProtocolKind::ALL {
                if !cells.iter().any(|c| {
                    c.scenario == *spec && c.plan == *plan && c.protocol == protocol.name()
                }) {
                    failures.push(format!(
                        "full-scale report is missing the {}+{}/{} membership cell (steps={}) the current grid defines — regenerate with --campaign",
                        spec.generator.family(),
                        plan.name(),
                        protocol.name(),
                        spec.steps
                    ));
                }
            }
        }
        let expected_cells = expected.len() * ProtocolKind::ALL.len();
        if cells.len() != expected_cells {
            failures.push(format!(
                "full-scale report has {} membership cells, the current grid defines {} — regenerate with --campaign",
                cells.len(),
                expected_cells
            ));
        }
    }
    failures
}

/// Validates the multi-query axis of a report: per-cell consistency (the
/// attribution ledger must partition the message total exactly), amortization
/// ceilings, plan-shape coverage, the amortization-present invariant (on at
/// least one cell the joint run must beat its independent baseline — the
/// shared-filter design's reason to exist), and (full scale) exact grid sync.
/// Shared between [`check_competitive_floors`] and the `--multiquery-only`
/// smoke mode.
pub fn check_multiquery_cells(
    cells: &[MultiQueryCell],
    floors: &CompetitiveFloors,
    scale: &str,
) -> Vec<String> {
    let mut failures = Vec::new();
    let mut plans = BTreeSet::new();
    for cell in cells {
        let id = format!(
            "{}+{}x{} (n={}, steps={})",
            cell.scenario.generator.family(),
            cell.plan_name,
            cell.plan.queries.len(),
            cell.scenario.n,
            cell.scenario.steps
        );
        plans.insert(cell.plan_name.clone());
        if cell.plan_name != cell.plan.name {
            failures.push(format!(
                "{id}: plan_name `{}` does not match the embedded plan's name `{}`",
                cell.plan_name, cell.plan.name
            ));
        }
        if cell.plan.queries.len() < 2 {
            failures.push(format!(
                "{id}: a multi-query cell needs at least 2 queries, has {}",
                cell.plan.queries.len()
            ));
        }
        if cell.per_query_units.len() != cell.plan.queries.len() {
            failures.push(format!(
                "{id}: {} per-query unit entries for {} queries",
                cell.per_query_units.len(),
                cell.plan.queries.len()
            ));
        }
        // The attribution ledger must partition the wire total exactly — the
        // split-charging scheme's defining invariant.
        let units: u64 = cell.per_query_units.iter().sum();
        if units != cell.messages * SPLIT_SCALE {
            failures.push(format!(
                "{id}: per-query units sum to {units}, expected messages x {SPLIT_SCALE} = {} — attribution no longer partitions the wire total",
                cell.messages * SPLIT_SCALE
            ));
        }
        if !cell.amortization.is_finite() || cell.amortization < 0.0 {
            failures.push(format!(
                "{id}: amortization {} is not a sane number",
                cell.amortization
            ));
            continue;
        }
        // The same anti-tamper consistency rules as the other axes.
        let recomputed = cell.messages as f64 / cell.independent_messages.max(1) as f64;
        if (cell.amortization - recomputed).abs() > 1e-9 {
            failures.push(format!(
                "{id}: amortization {} does not match messages/independent_messages = {recomputed} — the cell was edited or corrupted",
                cell.amortization
            ));
        }
        if cell.amortization > cell.amortization_ceiling {
            failures.push(format!(
                "{id}: amortization {:.3} exceeds the committed ceiling {:.3}",
                cell.amortization, cell.amortization_ceiling
            ));
        }
        if cell.amortization_ceiling > floors.ceiling(cell.amortization) + 1e-9 {
            failures.push(format!(
                "{id}: amortization ceiling {:.3} is looser than the standard formula allows ({:.3})",
                cell.amortization_ceiling,
                floors.ceiling(cell.amortization)
            ));
        }
        // Every query validates against its own subset-restricted row on a
        // clean transport, so the bar is (at standard settings) zero.
        let query_steps = cell.scenario.steps as u64 * cell.plan.queries.len() as u64;
        let tolerated = floors.multiquery_invalid_fraction_permille * query_steps / 1000;
        if cell.invalid_steps > tolerated {
            failures.push(format!(
                "{id}: {} of {} per-query output steps invalid (tolerated: {} = {}‰) — query isolation broke",
                cell.invalid_steps,
                query_steps,
                tolerated,
                floors.multiquery_invalid_fraction_permille
            ));
        }
        // Polling bound per query: a shared run of Q queries must stay within
        // the same per-query polling factor as the base campaign.
        let poll_cost =
            cell.scenario.n as f64 * cell.scenario.steps as f64 * cell.plan.queries.len() as f64;
        if cell.messages as f64 > floors.max_poll_factor * poll_cost {
            failures.push(format!(
                "{id}: {} messages exceeds {} x the per-query naive polling cost — shared filters have stopped paying for themselves",
                cell.messages, floors.max_poll_factor
            ));
        }
    }
    if !cells.is_empty() {
        if cells.len() < floors.min_multiquery_cells {
            failures.push(format!(
                "only {} multi-query cells measured, need {}",
                cells.len(),
                floors.min_multiquery_cells
            ));
        }
        for shape in ["twin", "overlap", "disjoint"] {
            if !plans.contains(shape) {
                failures.push(format!(
                    "multi-query axis is missing the `{shape}` plan shape (covered: {plans:?})"
                ));
            }
        }
        // The amortization-present invariant: somewhere in the grid, sharing
        // must actually be cheaper than running the queries independently.
        if !cells.iter().any(|c| c.messages < c.independent_messages) {
            failures.push(
                "no multi-query cell beats its independent baseline — shared-filter amortization is gone"
                    .to_string(),
            );
        }
    }
    // A full-scale report must contain exactly the current multi-query grid.
    if scale == "full" {
        let expected = standard_multiquery_grid(false);
        for (spec, plan) in &expected {
            if !cells.iter().any(|c| c.scenario == *spec && c.plan == *plan) {
                failures.push(format!(
                    "full-scale report is missing the {}+{} multi-query cell (steps={}) the current grid defines — regenerate with --campaign",
                    spec.generator.family(),
                    plan.name,
                    spec.steps
                ));
            }
        }
        if cells.len() != expected.len() {
            failures.push(format!(
                "full-scale report has {} multi-query cells, the current grid defines {} — regenerate with --campaign",
                cells.len(),
                expected.len()
            ));
        }
    }
    failures
}

/// Cross-checks a freshly measured report against a committed baseline: every
/// fresh cell must have a baseline cell with the identical scenario and
/// protocol, and the fresh ratio must stay under the *committed* ceiling.
///
/// This is the teeth of the ratchet. The per-cell ceilings inside one report
/// are tautological by construction (they are computed from the ratios they
/// gate); what makes them binding is that CI re-measures the quick grid —
/// which the full grid contains verbatim, and which is bit-deterministic —
/// and holds the fresh ratios to the ceilings committed in
/// `BENCH_competitive.json`. A protocol change that regresses a cell's
/// message count past the committed headroom fails here, before any human
/// reads a JSON diff.
pub fn check_against_baseline(
    fresh: &CompetitiveReport,
    baseline: &CompetitiveReport,
) -> Vec<String> {
    let mut failures = Vec::new();
    for cell in &fresh.cells {
        let id = format!(
            "{}/{} (n={}, eps={}, steps={})",
            cell.family(),
            cell.protocol,
            cell.scenario.n,
            cell.scenario.eps,
            cell.scenario.steps
        );
        let Some(committed) = baseline
            .cells
            .iter()
            .find(|b| b.scenario == cell.scenario && b.protocol == cell.protocol)
        else {
            failures.push(format!(
                "{id}: no counterpart in the committed baseline — the grid changed; regenerate the committed report with --campaign"
            ));
            continue;
        };
        if cell.ratio > committed.ceiling {
            failures.push(format!(
                "{id}: measured ratio {:.2} exceeds the committed ceiling {:.2} (committed ratio was {:.2}) — a protocol regressed",
                cell.ratio, committed.ceiling, committed.ratio
            ));
        }
    }
    for cell in &fresh.fault_cells {
        let id = format!(
            "{}+{}/{} (n={}, steps={})",
            cell.scenario.generator.family(),
            cell.fault_family,
            cell.protocol,
            cell.scenario.n,
            cell.scenario.steps
        );
        let Some(committed) = baseline.fault_cells.iter().find(|b| {
            b.scenario == cell.scenario && b.fault == cell.fault && b.protocol == cell.protocol
        }) else {
            failures.push(format!(
                "{id}: no counterpart in the committed baseline — the fault grid changed; regenerate the committed report with --campaign"
            ));
            continue;
        };
        if cell.ratio > committed.ceiling {
            failures.push(format!(
                "{id}: measured ratio {:.2} exceeds the committed ceiling {:.2} (committed ratio was {:.2}) — a protocol regressed under faults",
                cell.ratio, committed.ceiling, committed.ratio
            ));
        }
        if cell.degradation > committed.degradation_ceiling {
            failures.push(format!(
                "{id}: measured degradation {:.2} exceeds the committed ceiling {:.2} (committed degradation was {:.2}) — fault recovery regressed",
                cell.degradation, committed.degradation_ceiling, committed.degradation
            ));
        }
    }
    for cell in &fresh.membership_cells {
        let id = format!(
            "{}+{}/{} (n={}, steps={})",
            cell.scenario.generator.family(),
            cell.plan_name,
            cell.protocol,
            cell.scenario.n,
            cell.scenario.steps
        );
        let Some(committed) = baseline.membership_cells.iter().find(|b| {
            b.scenario == cell.scenario && b.plan == cell.plan && b.protocol == cell.protocol
        }) else {
            failures.push(format!(
                "{id}: no counterpart in the committed baseline — the membership grid changed; regenerate the committed report with --campaign"
            ));
            continue;
        };
        if cell.ratio > committed.ceiling {
            failures.push(format!(
                "{id}: measured ratio {:.2} exceeds the committed ceiling {:.2} (committed ratio was {:.2}) — a protocol regressed under churn",
                cell.ratio, committed.ceiling, committed.ratio
            ));
        }
        if cell.degradation > committed.degradation_ceiling {
            failures.push(format!(
                "{id}: measured degradation {:.2} exceeds the committed ceiling {:.2} (committed degradation was {:.2}) — rejoin recovery regressed",
                cell.degradation, committed.degradation_ceiling, committed.degradation
            ));
        }
    }
    for cell in &fresh.multiquery_cells {
        let id = format!(
            "{}+{}x{} (n={}, steps={})",
            cell.scenario.generator.family(),
            cell.plan_name,
            cell.plan.queries.len(),
            cell.scenario.n,
            cell.scenario.steps
        );
        let Some(committed) = baseline
            .multiquery_cells
            .iter()
            .find(|b| b.scenario == cell.scenario && b.plan == cell.plan)
        else {
            failures.push(format!(
                "{id}: no counterpart in the committed baseline — the multi-query grid changed; regenerate the committed report with --campaign"
            ));
            continue;
        };
        if cell.amortization > committed.amortization_ceiling {
            failures.push(format!(
                "{id}: measured amortization {:.3} exceeds the committed ceiling {:.3} (committed amortization was {:.3}) — query sharing regressed",
                cell.amortization, committed.amortization_ceiling, committed.amortization
            ));
        }
    }
    failures
}

/// Serialises a campaign report as pretty JSON.
pub fn to_json(report: &CompetitiveReport) -> String {
    serde_json::to_string_pretty(report).expect("campaign reports serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(generator: GeneratorSpec) -> ScenarioSpec {
        ScenarioSpec {
            generator,
            n: 24,
            k: 4,
            eps: Epsilon::TENTH,
            steps: 25,
            seed: 9,
        }
    }

    #[test]
    fn grid_covers_the_acceptance_matrix() {
        for quick in [true, false] {
            let grid = standard_grid(quick);
            let families: BTreeSet<&str> = grid.iter().map(|s| s.generator.family()).collect();
            assert!(
                families.len() >= 7,
                "grid must span >= 7 families, got {families:?}"
            );
            assert!(ProtocolKind::ALL.len() >= 5);
        }
        // The full grid additionally sweeps a second ε and a second n.
        let full = standard_grid(false);
        let epsilons: BTreeSet<String> = full.iter().map(|s| s.eps.to_string()).collect();
        assert!(epsilons.len() >= 2, "full grid must sweep epsilon");
        let sizes: BTreeSet<usize> = full.iter().map(|s| s.n).collect();
        assert!(sizes.len() >= 3, "full grid must sweep n, got {sizes:?}");
        assert!(sizes.contains(&100_000), "full grid needs the 1e5 probes");
    }

    #[test]
    fn cells_are_deterministic_and_correct() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let spec = tiny_spec(GeneratorSpec::Noise {
            sigma: 10,
            z: 1 << 16,
        });
        let a = run_cell(&spec, ProtocolKind::Dense, &floors, &mut solver);
        let b = run_cell(&spec, ProtocolKind::Dense, &floors, &mut solver);
        assert_eq!(a, b, "campaign cells must be bit-deterministic");
        assert_eq!(a.invalid_steps, 0);
        assert!(a.messages > 0);
        assert!(a.opt_lower >= 1);
        assert!(a.ratio <= a.ceiling);
        assert!(!a.messages_by_label.is_empty());
        assert!(a.messages_by_regime.is_empty(), "noise has no regimes");
    }

    #[test]
    fn regime_cells_attribute_messages_per_regime() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let spec = ScenarioSpec {
            generator: GeneratorSpec::RegimeSwitch {
                sigma: 8,
                z: 1 << 16,
                segment_len: 10,
            },
            n: 24,
            k: 3,
            eps: Epsilon::TENTH,
            steps: 60,
            seed: 3,
        };
        let cell = run_cell(&spec, ProtocolKind::Combined, &floors, &mut solver);
        assert_eq!(cell.invalid_steps, 0);
        let by_regime: BTreeMap<&str, u64> = cell
            .messages_by_regime
            .iter()
            .map(|lc| (lc.label.as_str(), lc.count))
            .collect();
        let total: u64 = by_regime.values().sum();
        assert_eq!(
            total, cell.messages,
            "regime attribution must partition the message count"
        );
        // Two full cycles: all three regimes appear.
        for regime in ["quiet", "dense", "adversarial"] {
            assert!(
                by_regime.contains_key(regime),
                "missing {regime} in {by_regime:?}"
            );
        }
        // The adversarial segments force a leadership change per step; the
        // quiet segments converge to silence. The attribution must show it.
        assert!(
            by_regime["adversarial"] > by_regime["quiet"],
            "adversarial segments must dominate quiet ones: {by_regime:?}"
        );
    }

    #[test]
    fn adaptive_adversary_cells_use_the_realised_trace() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let spec = tiny_spec(GeneratorSpec::Adversarial {
            sigma: 12,
            y0: 1 << 20,
        });
        let cell = run_cell(&spec, ProtocolKind::Combined, &floors, &mut solver);
        assert_eq!(cell.invalid_steps, 0);
        // The adversary forces communication: the ratio is meaningfully > 1.
        assert!(
            cell.ratio > 1.0,
            "the lower-bound instance must force a nontrivial ratio, got {}",
            cell.ratio
        );
    }

    #[test]
    fn quick_campaign_passes_its_own_floors() {
        let report = run_campaign(true, |_| {});
        assert_eq!(report.scale, "quick");
        assert_eq!(
            report.cells.len(),
            standard_grid(true).len() * ProtocolKind::ALL.len()
        );
        assert_eq!(
            report.fault_cells.len(),
            standard_fault_grid(true).len() * ProtocolKind::ALL.len()
        );
        assert_eq!(
            report.membership_cells.len(),
            standard_membership_grid(true).len() * ProtocolKind::ALL.len()
        );
        assert_eq!(
            report.multiquery_cells.len(),
            standard_multiquery_grid(true).len()
        );
        let failures = check_competitive_floors(&report);
        assert!(failures.is_empty(), "quick campaign failed: {failures:?}");
    }

    #[test]
    #[ignore]
    fn calibrate_fault_grid() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        // The *full* grid: the 240-step cells reach the churn process's
        // steady state, which the 60-step quick cells undershoot — a bar
        // calibrated on quick cells alone would pass CI and still fail the
        // full regeneration.
        for (spec, fault) in standard_fault_grid(false) {
            for protocol in ProtocolKind::ALL {
                let clean = run_cell(&spec, protocol, &floors, &mut solver);
                let cell = run_fault_cell(
                    &spec,
                    &fault,
                    protocol,
                    &floors,
                    &mut solver,
                    clean.messages,
                );
                let poll = cell.messages as f64 / (spec.n as f64 * spec.steps as f64);
                println!(
                    "{:?}+{}/{:?}: msgs {} (clean {}), degr {:.2}, poll x{:.2}, invalid {}/{}, crashes {} rejoins {} rec {}",
                    spec.generator, cell.fault_family, protocol, cell.messages, cell.clean_messages,
                    cell.degradation, poll, cell.invalid_steps, spec.steps, cell.crashes,
                    cell.rejoins, cell.recovery_messages,
                );
            }
        }
    }

    #[test]
    #[ignore]
    fn calibrate_multiquery_grid() {
        let floors = FloorTable::STANDARD.competitive;
        // The *full* grid: the amortization-present invariant must hold at
        // both horizons of the committed report, not just the quick anchor.
        for (spec, plan) in standard_multiquery_grid(false) {
            let cell = run_multiquery_cell(&spec, &plan, &floors);
            println!(
                "{:?}+{} steps={}: joint {} vs independent {} = amortization {:.3}, {} deliveries, units {:?}, invalid {}",
                spec.generator, cell.plan_name, spec.steps, cell.messages,
                cell.independent_messages, cell.amortization, cell.deliveries,
                cell.per_query_units, cell.invalid_steps,
            );
        }
    }

    #[test]
    #[ignore]
    fn calibrate_membership_grid() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        // The *full* grid, for the same reason as `calibrate_fault_grid`: the
        // 240-step cells see far more churn cycles than the quick transient.
        for (spec, plan) in standard_membership_grid(false) {
            for protocol in ProtocolKind::ALL {
                let clean = run_cell(&spec, protocol, &floors, &mut solver);
                let cell = run_membership_cell(
                    &spec,
                    &plan,
                    protocol,
                    &floors,
                    &mut solver,
                    clean.messages,
                );
                let poll = cell.messages as f64 / (spec.n as f64 * spec.steps as f64);
                println!(
                    "{:?}+{}/{:?}: msgs {} (clean {}), degr {:.2}, poll x{:.2}, invalid {}/{}, leaves {} joins {} rec {}",
                    spec.generator, cell.plan_name, protocol, cell.messages, cell.clean_messages,
                    cell.degradation, poll, cell.invalid_steps, spec.steps, cell.leaves,
                    cell.joins, cell.recovery_messages,
                );
            }
        }
    }

    #[test]
    fn membership_grid_covers_two_plans_and_anchors_quick_cells() {
        let quick = standard_membership_grid(true);
        let full = standard_membership_grid(false);
        let plans: BTreeSet<String> = quick.iter().map(|(_, p)| p.name()).collect();
        assert!(
            plans.len() >= FloorTable::STANDARD.competitive.min_membership_plans,
            "membership grid must span the plan coverage floor: {plans:?}"
        );
        for pair in &quick {
            assert!(
                full.contains(pair),
                "quick membership cell missing from the full grid (the ratchet needs it): {pair:?}"
            );
        }
        for (spec, plan) in &full {
            // The live floor must keep the monitored top-k defined.
            assert!(
                plan.min_live > spec.k,
                "live floor {} must exceed k = {}",
                plan.min_live,
                spec.k
            );
            // Plans must actually churn within the quick horizon.
            assert!(plan.build(spec.n, 60).total_events() > 0);
        }
    }

    #[test]
    fn membership_cells_are_deterministic_and_attribute_recovery() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let (spec, plan) = standard_membership_grid(true)
            .into_iter()
            .next()
            .expect("membership grid is non-empty");
        let clean = run_cell(&spec, ProtocolKind::Combined, &floors, &mut solver);
        let a = run_membership_cell(
            &spec,
            &plan,
            ProtocolKind::Combined,
            &floors,
            &mut solver,
            clean.messages,
        );
        let b = run_membership_cell(
            &spec,
            &plan,
            ProtocolKind::Combined,
            &floors,
            &mut solver,
            clean.messages,
        );
        assert_eq!(a, b, "membership cells must be bit-deterministic");
        assert!(a.leaves > 0, "the plan must churn within the quick horizon");
        assert!(a.joins > 0, "4-step downtimes must rejoin within the run");
        assert!(
            a.recovery_messages > 0,
            "rejoins must replay group and filter under the recovery label"
        );
        assert_eq!(a.clean_messages, clean.messages);
        assert!((a.degradation - a.messages as f64 / clean.messages as f64).abs() < 1e-12);
    }

    #[test]
    fn membership_floor_check_rejects_tampering() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let grid = standard_membership_grid(true);
        let mut base = Vec::new();
        for (spec, plan) in grid.iter().take(2) {
            let clean = run_cell(spec, ProtocolKind::Dense, &floors, &mut solver);
            base.push(run_membership_cell(
                spec,
                plan,
                ProtocolKind::Dense,
                &floors,
                &mut solver,
                clean.messages,
            ));
        }
        assert!(
            check_membership_cells(&base, &floors, "quick").is_empty(),
            "two honest cells across two plans pass the quick check"
        );
        // Hand-raised degradation ceiling.
        let mut cells = base.clone();
        cells[0].degradation_ceiling *= 10.0;
        assert!(check_membership_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("looser than the standard formula")));
        // Masking a message regression by editing degradation too.
        let mut cells = base.clone();
        cells[0].messages *= 10;
        assert!(check_membership_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("edited or corrupted")));
        // Invalid steps beyond the permille bar.
        let mut cells = base.clone();
        cells[0].invalid_steps = cells[0].scenario.steps as u64;
        assert!(check_membership_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("re-resolution no longer contains the damage")));
        // A plan that never churned is rejected.
        let mut cells = base.clone();
        cells[0].leaves = 0;
        assert!(check_membership_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("no leave events")));
        // One plan is below the coverage floor.
        assert!(check_membership_cells(&base[..1], &floors, "quick")
            .iter()
            .any(|f| f.contains("membership plans covered")));
        // A quick grid relabelled as full is rejected.
        assert!(check_membership_cells(&base, &floors, "full")
            .iter()
            .any(|f| f.contains("regenerate with --campaign")));
    }

    #[test]
    fn fault_grid_covers_three_families_and_anchors_quick_cells() {
        let quick = standard_fault_grid(true);
        let full = standard_fault_grid(false);
        let families: BTreeSet<&str> = quick.iter().map(|(_, f)| f.family()).collect();
        assert!(
            families.len() >= 3,
            "fault grid must span latency, drop and crash: {families:?}"
        );
        assert!(families.contains("latency"));
        assert!(families.contains("drop"));
        assert!(families.contains("crash"));
        for pair in &quick {
            assert!(
                full.contains(pair),
                "quick fault cell missing from the full grid (the ratchet needs it): {pair:?}"
            );
        }
        for (spec, fault) in &full {
            fault.validate();
            assert!(
                spec.n > fault.crash.map_or(0, |c| c.max_down),
                "crash cap sane"
            );
        }
    }

    #[test]
    fn fault_cells_are_deterministic_and_attribute_recovery() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let (spec, _) = standard_fault_grid(true)
            .into_iter()
            .next()
            .expect("fault grid is non-empty");
        let fault = FaultSpec::crash_rejoin(0xFA03, 25, 5, 16);
        let clean = run_cell(&spec, ProtocolKind::Combined, &floors, &mut solver);
        let a = run_fault_cell(
            &spec,
            &fault,
            ProtocolKind::Combined,
            &floors,
            &mut solver,
            clean.messages,
        );
        let b = run_fault_cell(
            &spec,
            &fault,
            ProtocolKind::Combined,
            &floors,
            &mut solver,
            clean.messages,
        );
        assert_eq!(a, b, "fault cells must be bit-deterministic");
        assert!(
            a.crashes > 0,
            "25‰ over 64 nodes × 60 steps must crash someone"
        );
        assert!(a.rejoins > 0, "5-step outages must rejoin within the run");
        assert!(
            a.recovery_messages > 0,
            "rejoins must replay state under the recovery label"
        );
        assert_eq!(a.clean_messages, clean.messages);
        assert!((a.degradation - a.messages as f64 / clean.messages as f64).abs() < 1e-12);
        // The intended trace is fault-independent, so OPT matches the twin's.
        assert_eq!(a.opt_lower, clean.opt_lower);
    }

    #[test]
    fn fault_floor_check_rejects_tampering() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let (spec, fault) = standard_fault_grid(true)
            .into_iter()
            .find(|(_, f)| f.family() == "drop")
            .expect("drop family present");
        let clean = run_cell(&spec, ProtocolKind::Dense, &floors, &mut solver);
        let cell = run_fault_cell(
            &spec,
            &fault,
            ProtocolKind::Dense,
            &floors,
            &mut solver,
            clean.messages,
        );
        let base = vec![cell];
        assert!(
            check_fault_cells(&base, &floors, "quick")
                .iter()
                .all(|f| f.contains("fault families")),
            "a single honest cell only trips the coverage floor"
        );
        // Hand-raised degradation ceiling.
        let mut cells = base.clone();
        cells[0].degradation_ceiling *= 10.0;
        assert!(check_fault_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("looser than the standard formula")));
        // Masking a message regression by editing degradation too.
        let mut cells = base.clone();
        cells[0].messages *= 10;
        assert!(check_fault_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("edited or corrupted")));
        // Invalid steps beyond the permille bar.
        let mut cells = base.clone();
        cells[0].invalid_steps = cells[0].scenario.steps as u64;
        assert!(check_fault_cells(&cells, &floors, "quick")
            .iter()
            .any(|f| f.contains("recovery no longer contains the damage")));
        // A quick grid relabelled as full is rejected.
        assert!(check_fault_cells(&base, &floors, "full")
            .iter()
            .any(|f| f.contains("regenerate with --campaign")));
    }

    #[test]
    fn floor_check_rejects_tampering() {
        let mut report = run_campaign(true, |_| {});
        // Hand-raising a ceiling is rejected even though ratio <= ceiling.
        report.cells[0].ceiling *= 10.0;
        assert!(check_competitive_floors(&report)
            .iter()
            .any(|f| f.contains("looser than the standard formula")));
        // A regressed ratio above its committed ceiling is rejected.
        let mut report = run_campaign(true, |_| {});
        report.cells[0].ratio = report.cells[0].ceiling + 1.0;
        assert!(check_competitive_floors(&report)
            .iter()
            .any(|f| f.contains("exceeds the committed ceiling")));
        // Invalid output steps are rejected.
        let mut report = run_campaign(true, |_| {});
        report.cells[0].invalid_steps = 1;
        assert!(check_competitive_floors(&report)
            .iter()
            .any(|f| f.contains("invalid output steps")));
        // Dropping below the coverage floor is rejected (the 8-family grid
        // tolerates losing one family, not two).
        let mut report = run_campaign(true, |_| {});
        report
            .cells
            .retain(|c| c.family() != "churn" && c.family() != "zipf");
        assert!(check_competitive_floors(&report)
            .iter()
            .any(|f| f.contains("generator families")));
        // A hole in the protocol × family grid is rejected.
        let mut report = run_campaign(true, |_| {});
        let victim = report
            .cells
            .iter()
            .position(|c| c.family() == "zipf" && c.protocol == "dense")
            .unwrap();
        report.cells.remove(victim);
        assert!(check_competitive_floors(&report)
            .iter()
            .any(|f| f.contains("grid has holes")));
        // A full-scale report must carry exactly the current grid's cells —
        // a quick grid relabelled as full (or a stale/hand-pruned report)
        // is rejected cell-by-cell.
        let mut report = run_campaign(true, |_| {});
        report.scale = "full".to_string();
        let failures = check_competitive_floors(&report);
        assert!(failures
            .iter()
            .any(|f| f.contains("missing the") && f.contains("regenerate with --campaign")));
        assert!(failures
            .iter()
            .any(|f| f.contains("cells, the current grid defines")));
        // Editing ratio and ceiling together (to mask a regressed `messages`)
        // is caught by the messages/opt_lower consistency check.
        let mut report = run_campaign(true, |_| {});
        report.cells[0].messages *= 10;
        assert!(check_competitive_floors(&report)
            .iter()
            .any(|f| f.contains("edited or corrupted")));
    }

    #[test]
    fn full_grid_contains_the_quick_grid_verbatim() {
        let quick = standard_grid(true);
        let full = standard_grid(false);
        for spec in &quick {
            assert!(
                full.contains(spec),
                "quick cell missing from the full grid (the baseline ratchet needs it): {spec:?}"
            );
        }
    }

    #[test]
    fn baseline_check_is_a_real_ratchet() {
        let committed = run_campaign(true, |_| {});
        // Bit-determinism: a fresh run of the same grid matches the baseline.
        let fresh = run_campaign(true, |_| {});
        assert!(check_against_baseline(&fresh, &committed).is_empty());
        // A regressed protocol (ratio past the committed headroom) fails.
        let mut regressed = fresh.clone();
        regressed.cells[0].ratio = committed.cells[0].ceiling + 0.01;
        let failures = check_against_baseline(&regressed, &committed);
        assert!(
            failures.iter().any(|f| f.contains("a protocol regressed")),
            "{failures:?}"
        );
        // A grid change without a regenerated committed report fails loudly.
        let mut stale = committed.clone();
        stale.cells.remove(0);
        assert!(check_against_baseline(&fresh, &stale)
            .iter()
            .any(|f| f.contains("no counterpart in the committed baseline")));
        // A membership-axis regression past the committed headroom fails.
        let mut regressed = fresh.clone();
        regressed.membership_cells[0].degradation =
            committed.membership_cells[0].degradation_ceiling + 0.01;
        assert!(check_against_baseline(&regressed, &committed)
            .iter()
            .any(|f| f.contains("rejoin recovery regressed")));
    }

    #[test]
    fn report_round_trips_through_json() {
        let floors = FloorTable::STANDARD.competitive;
        let mut solver = PhaseSolver::new();
        let spec = tiny_spec(GeneratorSpec::Gap { high_base: 1 << 16 });
        let clean = run_cell(&spec, ProtocolKind::TopKProtocol, &floors, &mut solver);
        let fault_cell = run_fault_cell(
            &spec,
            &FaultSpec::drop_upstream(7, 100),
            ProtocolKind::TopKProtocol,
            &floors,
            &mut solver,
            clean.messages,
        );
        let membership_cell = run_membership_cell(
            &spec,
            &MembershipPlanSpec {
                seed: 11,
                leave_permille: 50,
                downtime: 3,
                min_live: 12,
            },
            ProtocolKind::TopKProtocol,
            &floors,
            &mut solver,
            clean.messages,
        );
        let (mq_spec, mq_plan) = standard_multiquery_grid(true)
            .into_iter()
            .next()
            .expect("the multi-query grid is non-empty");
        let multiquery_cell = run_multiquery_cell(&mq_spec, &mq_plan, &floors);
        let report = CompetitiveReport {
            bench: "competitive".into(),
            scale: "quick".into(),
            floors,
            cells: vec![clean],
            fault_cells: vec![fault_cell],
            membership_cells: vec![membership_cell],
            multiquery_cells: vec![multiquery_cell],
        };
        let json = to_json(&report);
        assert!(json.contains("\"ceiling\""));
        assert!(json.contains("Gap"));
        assert!(json.contains("\"fault_family\""));
        assert!(json.contains("\"degradation\""));
        assert!(json.contains("\"plan_name\""));
        assert!(json.contains("\"leaves\""));
        assert!(json.contains("\"amortization\""));
        assert!(json.contains("\"per_query_units\""));
        let back: CompetitiveReport = serde_json::from_str(&json).expect("reports deserialise");
        assert_eq!(back, report);
    }
}
