//! Engine throughput benchmark (`experiments --throughput`).
//!
//! The paper's point is that *communication* scales with `O(k log n + …)`, not
//! with `n` — but a simulator is only useful at scale if its *computation*
//! tracks the communication. This harness measures simulated steps per second
//! for the baseline [`DeterministicEngine`] (Θ(n log n) node invocations per
//! silent step) against the [`IndexedEngine`] (O(active) work per step) and the
//! [`ShardedEngine`] (the same O(active) algorithm on a worker-pool shard
//! layout with a tuned bulk observation path, `--sharded <threads>`) across
//! the workload generators, at `n` from 10³ to 10⁷ (the baseline stops at 10⁶
//! where its Θ(n log n) steps become minutes), and writes the result as
//! `BENCH_throughput.json` — the repo's bench trajectory.
//!
//! Each run drives a minimal but honest monitoring loop: observations arrive,
//! the Corollary 3.2 violation check (`detect_violations`) runs every step, and
//! every reported violation is repaired by assigning a widened filter. Filters
//! ratchet outward, so every workload converges to the regime the paper's
//! bounds describe — mostly silent steps with occasional violations — during
//! the untimed warm-up. Workload generation and inspection happen outside the
//! timed sections; only engine work (observation delivery, existence rounds,
//! filter repairs) is on the clock.
//!
//! Two delivery modes are measured:
//!
//! * `dense` — the classic [`Network::advance_time`] full row (the engine must
//!   at least scan `n` values);
//! * `sparse` — [`Network::advance_time_sparse`] with only the changed nodes
//!   (what a real ingest path would deliver). On quiet workloads the indexed
//!   engine's per-step cost is then near-independent of `n`.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use topk_core::existence::detect_violations_into;
use topk_gen::{
    AdaptiveWorkload, LowerBoundAdversary, NoiseOscillationWorkload, RandomWalkWorkload,
    ZipfLoadWorkload,
};
use topk_model::prelude::*;
use topk_net::{
    DeterministicEngine, IndexedEngine, Network, RemoteEngine, ShardedEngine, TransportStats,
};

/// The workload generators exercised by the throughput benchmark.
pub const GENERATORS: [&str; 4] = ["zipf", "noise", "random-walk", "adversarial"];

/// Which engine a measurement drove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// `DeterministicEngine` — reference semantics, Θ(n) per existence round.
    Baseline,
    /// `IndexedEngine` — O(active) per round, bit-identical behaviour.
    Indexed,
    /// `ShardedEngine` with the given worker count — the indexed algorithm on
    /// contiguous shards with a tuned bulk observation path, bit-identical.
    Sharded(usize),
}

impl EngineKind {
    fn label(self) -> &'static str {
        match self {
            EngineKind::Baseline => "baseline",
            EngineKind::Indexed => "indexed",
            EngineKind::Sharded(_) => "sharded",
        }
    }

    /// Worker count recorded in the report (0 for single-threaded engines).
    fn workers(self) -> u64 {
        match self {
            EngineKind::Baseline | EngineKind::Indexed => 0,
            EngineKind::Sharded(w) => w as u64,
        }
    }
}

/// Observation delivery mode of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Full row per step (`advance_time`).
    Dense,
    /// Changed nodes only (`advance_time_sparse`).
    Sparse,
}

impl DeliveryMode {
    fn label(self) -> &'static str {
        match self {
            DeliveryMode::Dense => "dense",
            DeliveryMode::Sparse => "sparse",
        }
    }
}

/// Per-phase time attribution for one measured configuration.
///
/// The monitoring loop has exactly two engine phases per step — observation
/// delivery (`advance_time`/`advance_time_sparse`) and the violation-drain
/// loop (existence rounds + filter repairs) — and this struct says where the
/// nanoseconds went, plus the protocol-level rates (rounds/sec, messages/sec,
/// ns per model message) that connect wall-clock cost back to the paper's
/// message accounting. All quantities cover the measured window only
/// (warm-up excluded), like every other field of [`ThroughputRow`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Engine nanoseconds per measured step spent delivering observations.
    pub advance_ns_per_step: f64,
    /// Engine nanoseconds per measured step spent detecting violations and
    /// assigning repaired filters.
    pub detect_repair_ns_per_step: f64,
    /// Interactive protocol rounds consumed during the measured window.
    pub rounds: u64,
    /// Protocol rounds per second of engine time.
    pub rounds_per_sec: f64,
    /// Model messages per second of engine time.
    pub messages_per_sec: f64,
    /// Engine nanoseconds per model message (0 when the window was silent).
    pub ns_per_message: f64,
    /// Violation reports drained during the measured window.
    pub violations: u64,
}

/// One measured configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Workload generator name (one of [`GENERATORS`]).
    pub generator: String,
    /// Number of nodes.
    pub n: u64,
    /// `"baseline"`, `"indexed"` or `"sharded"`.
    pub engine: String,
    /// Worker count of the sharded engine (0 for single-threaded engines).
    pub workers: u64,
    /// `"dense"` or `"sparse"` observation delivery.
    pub mode: String,
    /// Measured steps (after warm-up).
    pub steps: u64,
    /// Wall-clock seconds spent in engine work over the measured steps.
    pub elapsed_s: f64,
    /// Simulated observation steps per second of engine work.
    pub steps_per_sec: f64,
    /// Microseconds of engine work per step (the scaling-curve quantity).
    pub us_per_step: f64,
    /// Model messages sent during the measured steps (violations + repairs).
    pub messages: u64,
    /// Mean number of nodes whose value changed per step.
    pub mean_changed_per_step: f64,
    /// Where the engine time went (phase attribution and protocol rates).
    pub profile: PhaseProfile,
}

/// The full benchmark output, serialised to `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Schema/benchmark identifier.
    pub bench: String,
    /// `"quick"` (CI smoke) or `"full"`.
    pub scale: String,
    /// All measured configurations.
    pub rows: Vec<ThroughputRow>,
    /// Indexed-over-baseline steps/sec speedups per `(generator, n)`, dense mode.
    pub speedups_dense: Vec<SpeedupRow>,
    /// Sharded-over-indexed steps/sec speedups per `(generator, n)`, dense mode.
    pub speedups_sharded: Vec<SpeedupRow>,
    /// CPU cores available on the measuring machine (what
    /// `std::thread::available_parallelism` reported); the denominator the
    /// parallel-efficiency floor is normalised by. Pre-scaling reports lack
    /// this field and fail deserialisation — regenerate them.
    pub cores: u64,
    /// The multi-core scaling curve: the sharded engine re-measured on the
    /// noise/dense cell across worker counts (see [`ScalingRow`]).
    pub scaling: Vec<ScalingRow>,
}

/// One point of the multi-core scaling curve: the sharded engine on the
/// noise generator with dense delivery at a given worker count.
///
/// `efficiency` is `speedup_vs_one / min(workers, cores)` — the fraction of
/// ideal linear scaling actually delivered, normalised by the parallelism the
/// machine can physically provide so a 1-core CI runner holds the sharding
/// *overhead* to a floor instead of demanding impossible speedups. The floor
/// check recomputes it from `steps_per_sec`, so the stored field is
/// documentation, not the gate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Workload generator name (the scaling axis uses `"noise"`).
    pub generator: String,
    /// Number of nodes.
    pub n: u64,
    /// Sharded-engine worker count of this point.
    pub workers: u64,
    /// Measured steps (after warm-up).
    pub steps: u64,
    /// Simulated observation steps per second of engine work.
    pub steps_per_sec: f64,
    /// Microseconds of engine work per step.
    pub us_per_step: f64,
    /// `steps_per_sec` ratio over this curve's `workers = 1` point.
    pub speedup_vs_one: f64,
    /// `speedup_vs_one / min(workers, cores)`.
    pub efficiency: f64,
}

/// A standalone scaling-curve report (`--scaling`), written to
/// `BENCH_scaling_quick.json` by the CI smoke job. The committed full-scale
/// curve lives inside `BENCH_throughput.json` ([`ThroughputReport::scaling`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingReport {
    /// Schema/benchmark identifier (`"scaling"`).
    pub bench: String,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// CPU cores available on the measuring machine.
    pub cores: u64,
    /// The measured curve.
    pub rows: Vec<ScalingRow>,
}

/// Speedup summary entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Workload generator name.
    pub generator: String,
    /// Number of nodes.
    pub n: u64,
    /// Steps/sec ratio of the faster engine over its reference (dense
    /// delivery): indexed ÷ baseline in `speedups_dense`, sharded ÷ indexed in
    /// `speedups_sharded`.
    pub speedup: f64,
}

fn make_workload(name: &str, n: usize, seed: u64) -> Box<dyn AdaptiveWorkload> {
    match name {
        "zipf" => Box::new(ZipfLoadWorkload::new(n, 1.1, 100_000, 500, 1e-4, seed)),
        "noise" => Box::new(NoiseOscillationWorkload::new(
            n,
            8,
            32,
            100_000,
            Epsilon::TENTH,
            seed,
        )),
        "random-walk" => Box::new(RandomWalkWorkload::new(n, 1_000_000, 1_000, 0.05, seed)),
        "adversarial" => Box::new(LowerBoundAdversary::new(
            n,
            8,
            64.min(n - 1),
            1 << 20,
            Epsilon::new(1, 4).unwrap(),
        )),
        other => panic!("unknown throughput generator {other}"),
    }
}

/// The harness's filter policy, mirroring how the paper's protocols treat
/// nodes: calibrate a per-node band from a few observed steps (a deployment
/// sizes filters to the signal's variability). Steady nodes — top-k candidates
/// oscillate within a narrow multiplicative band — get a two-sided band with
/// 4× slack; nodes whose calibration range already spans a 2× ratio (noisy
/// non-candidates) get the one-sided `[0, hi]` filter the paper assigns to its
/// `Lower`/`V3` groups, so random excursions downward never report.
fn calibrated_filter(observed_lo: Value, observed_hi: Value) -> Filter {
    let hi = observed_hi.saturating_mul(4).saturating_add(64);
    let lo = if observed_hi / observed_lo.max(1) >= 2 {
        0
    } else {
        observed_lo / 4
    };
    Filter::bounded(lo, hi).expect("lo <= hi")
}

/// Repair after a violation: widen the violated side well past the violating
/// value. Every violation cuts that node's miss probability by ~4× (a crash
/// through the floor drops the lower bound to zero — the node just proved it
/// is not a stable top-k candidate), so nodes converge to silence after O(1)
/// violations instead of accumulating a backlog.
fn widened_filter(current: Filter, violating: Value) -> Filter {
    let (mut lo, mut hi) = (current.lo(), current.hi_or_max());
    if violating < lo {
        lo = if violating < lo / 4 { 0 } else { violating / 4 };
    } else {
        hi = violating.saturating_mul(4).saturating_add(64);
    }
    Filter::bounded(lo, hi.max(lo)).expect("lo <= hi")
}

/// Measured steps for the indexed and sharded engines at population `n`.
fn indexed_steps(n: usize, quick: bool) -> u64 {
    if quick {
        50
    } else if n <= 10_000 {
        200
    } else if n <= 100_000 {
        100
    } else if n <= 1_000_000 {
        30
    } else {
        15
    }
}

/// Measured steps for the baseline engine: capped so that the Θ(n log n)
/// per-step cost keeps the benchmark runnable at large `n`.
fn baseline_steps(n: usize, quick: bool) -> u64 {
    indexed_steps(n, quick).min((4_000_000 / n as u64).max(3))
}

/// The baseline engine is excluded above this population: Θ(n log n) node
/// invocations per step make even a handful of measured steps take minutes at
/// `n = 10⁷`, and the scaling question up there is indexed vs sharded anyway.
const BASELINE_MAX_N: usize = 1_000_000;

// 16 calibration samples make the band classification reliable: the chance a
// wide-ranging node's samples all land within a 2x ratio (earning it a
// two-sided filter it will keep violating) is negligible.
const CALIBRATION_STEPS: u64 = 16;
const WARMUP_STEPS: u64 = 8;

/// Outcome of the shared measurement loop, engine-agnostic.
struct LoopOutcome {
    elapsed_s: f64,
    messages: u64,
    mean_changed_per_step: f64,
    profile: PhaseProfile,
}

/// The monitoring loop every measurement drives: calibrate filters, warm up,
/// then time observation delivery plus the per-step violation check and
/// repairs. Generic over the engine so callers with engine-specific counters
/// (the remote transport axis) can snapshot them when the warm-up ends via
/// `at_warmup_end`.
fn drive<N: Network>(
    net: &mut N,
    workload: &mut dyn AdaptiveWorkload,
    n: usize,
    mode: DeliveryMode,
    steps: u64,
    mut at_warmup_end: impl FnMut(&N),
) -> LoopOutcome {
    // Setup (untimed): observe a few calibration steps under the all-embracing
    // default filters (no violations possible), then assign every node a band
    // sized to the range it actually exhibited.
    let mut filters: Vec<Filter> = Vec::new();
    net.peek_filters_into(&mut filters);
    let first = workload.next_step_adaptive(&filters);
    net.advance_time(&first);
    let mut band_lo = first.clone();
    let mut band_hi = first.clone();
    let mut prev = first;
    for _ in 0..CALIBRATION_STEPS {
        let row = workload.next_step_adaptive(&filters);
        net.advance_time(&row);
        for (i, &v) in row.iter().enumerate() {
            band_lo[i] = band_lo[i].min(v);
            band_hi[i] = band_hi[i].max(v);
        }
        prev = row;
    }
    for i in 0..n {
        net.assign_filter(NodeId(i), calibrated_filter(band_lo[i], band_hi[i]));
    }
    net.peek_filters_into(&mut filters);
    let mut changes: Vec<(NodeId, Value)> = Vec::new();
    let mut reports: Vec<NodeMessage> = Vec::new();
    let mut elapsed = Duration::ZERO;
    let mut total_changed = 0u64;
    let mut messages_at_warmup_end = 0u64;
    let mut rounds_at_warmup_end = 0u64;
    // Phase breakdown: where each timed step's engine seconds went. Reset at
    // the warm-up boundary with every other measured quantity.
    let mut phase_advance = Duration::ZERO;
    let mut phase_detect = Duration::ZERO;
    let mut violations = 0u64;

    for step in 0..(WARMUP_STEPS + steps) {
        if step == WARMUP_STEPS {
            elapsed = Duration::ZERO;
            total_changed = 0;
            phase_advance = Duration::ZERO;
            phase_detect = Duration::ZERO;
            violations = 0;
            let stats = net.stats();
            messages_at_warmup_end = stats.total_messages();
            rounds_at_warmup_end = stats.rounds;
            at_warmup_end(net);
        }
        // Workload generation and row diffing are the source's job, not the
        // engine's — kept off the clock.
        let row = workload.next_step_adaptive(&filters);
        changes.clear();
        for (i, (&new, &old)) in row.iter().zip(prev.iter()).enumerate() {
            if new != old {
                changes.push((NodeId(i), new));
            }
        }
        total_changed += changes.len() as u64;

        let t0 = Instant::now();
        match mode {
            DeliveryMode::Dense => net.advance_time(&row),
            DeliveryMode::Sparse => net.advance_time_sparse(&changes),
        }
        let t_advance = t0.elapsed();
        // Drain *all* violations before the next observation arrives, like the
        // real monitors do (each Lemma 3.1 run reports O(1) violators in
        // expectation, so a backlog takes several runs). The loop terminates
        // because the final round of a run reports with probability 1 and every
        // reported node is repaired. One report buffer serves the whole run.
        loop {
            detect_violations_into(net, &mut reports);
            if reports.is_empty() {
                break;
            }
            violations += reports.len() as u64;
            for report in &reports {
                let node = report.sender();
                let widened = widened_filter(net.peek_filter(node), report.value());
                net.assign_filter(node, widened);
            }
        }
        elapsed += t0.elapsed();
        phase_advance += t_advance;
        phase_detect += t0.elapsed() - t_advance;

        prev = row;
        net.peek_filters_into(&mut filters);
    }
    let stats = net.stats();
    let messages = stats.total_messages() - messages_at_warmup_end;
    let rounds = stats.rounds - rounds_at_warmup_end;
    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    LoopOutcome {
        elapsed_s,
        messages,
        mean_changed_per_step: total_changed as f64 / steps as f64,
        profile: PhaseProfile {
            advance_ns_per_step: phase_advance.as_secs_f64() * 1e9 / steps as f64,
            detect_repair_ns_per_step: phase_detect.as_secs_f64() * 1e9 / steps as f64,
            rounds,
            rounds_per_sec: rounds as f64 / elapsed_s,
            messages_per_sec: messages as f64 / elapsed_s,
            ns_per_message: if messages > 0 {
                elapsed_s * 1e9 / messages as f64
            } else {
                0.0
            },
            violations,
        },
    }
}

/// Runs one configuration and returns its measurement row.
pub fn measure(
    generator: &str,
    n: usize,
    kind: EngineKind,
    mode: DeliveryMode,
    steps: u64,
    seed: u64,
) -> ThroughputRow {
    let mut workload = make_workload(generator, n, seed);
    let out = match kind {
        EngineKind::Baseline => {
            let mut net = DeterministicEngine::new(n, seed);
            drive(&mut net, workload.as_mut(), n, mode, steps, |_| {})
        }
        EngineKind::Indexed => {
            let mut net = IndexedEngine::new(n, seed);
            drive(&mut net, workload.as_mut(), n, mode, steps, |_| {})
        }
        // `Dispatch::Auto`: the engine uses its worker pool when the machine
        // has usable parallelism and falls back to inline shard execution
        // otherwise — the measurement reflects what a deployment would get.
        EngineKind::Sharded(workers) => {
            let mut net = ShardedEngine::new(n, seed, workers);
            drive(&mut net, workload.as_mut(), n, mode, steps, |_| {})
        }
    };
    ThroughputRow {
        generator: generator.to_string(),
        n: n as u64,
        engine: kind.label().to_string(),
        workers: kind.workers(),
        mode: mode.label().to_string(),
        steps,
        elapsed_s: out.elapsed_s,
        steps_per_sec: steps as f64 / out.elapsed_s,
        us_per_step: out.elapsed_s * 1e6 / steps as f64,
        messages: out.messages,
        mean_changed_per_step: out.mean_changed_per_step,
        profile: out.profile,
    }
}

/// One measured remote-transport configuration (the `--remote` axis).
///
/// Extends the in-process metrics with *wire-level* quantities: frames and
/// bytes actually moved over the loopback TCP connections, and the ratio of
/// wire bytes to *model* messages — the quantity that shows how far the
/// paper's unit-cost accounting is from physical transport cost on each
/// workload regime.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoteRow {
    /// Workload generator name (one of [`GENERATORS`]).
    pub generator: String,
    /// Number of nodes.
    pub n: u64,
    /// Number of shard connections (client processes).
    pub shards: u64,
    /// `"dense"` or `"sparse"` observation delivery.
    pub mode: String,
    /// Measured steps (after warm-up).
    pub steps: u64,
    /// Wall-clock seconds of engine + transport work over the measured steps.
    pub elapsed_s: f64,
    /// Simulated observation steps per second.
    pub steps_per_sec: f64,
    /// Microseconds per step.
    pub us_per_step: f64,
    /// Model messages sent during the measured steps.
    pub messages: u64,
    /// Wire frames moved (both directions) during the measured steps.
    pub frames: u64,
    /// Wire bytes moved (both directions) during the measured steps.
    pub bytes: u64,
    /// Frames per second of wall-clock time.
    pub frames_per_sec: f64,
    /// Wire bytes per *model* message (`bytes / max(messages, 1)`): the
    /// physical cost of one unit of the paper's accounting, including the
    /// framing overhead of the silent-round schedule.
    pub bytes_per_message: f64,
}

/// The `--remote` benchmark output, serialised to `BENCH_remote.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoteReport {
    /// Schema/benchmark identifier (`"remote-transport"`).
    pub bench: String,
    /// `"quick"` or `"full"`.
    pub scale: String,
    /// All measured configurations.
    pub rows: Vec<RemoteRow>,
}

/// Runs one remote-transport configuration.
pub fn measure_remote(
    generator: &str,
    n: usize,
    shards: usize,
    mode: DeliveryMode,
    steps: u64,
    seed: u64,
) -> RemoteRow {
    let mut workload = make_workload(generator, n, seed);
    let mut net = RemoteEngine::with_shards(n, seed, shards);
    let mut transport_at_warmup_end = TransportStats::default();
    let out = drive(&mut net, workload.as_mut(), n, mode, steps, |net| {
        transport_at_warmup_end = net.transport_stats()
    });
    let transport = net.transport_stats();
    let frames = transport.frames() - transport_at_warmup_end.frames();
    let bytes = transport.bytes() - transport_at_warmup_end.bytes();
    RemoteRow {
        generator: generator.to_string(),
        n: n as u64,
        shards: shards as u64,
        mode: mode.label().to_string(),
        steps,
        elapsed_s: out.elapsed_s,
        steps_per_sec: steps as f64 / out.elapsed_s,
        us_per_step: out.elapsed_s * 1e6 / steps as f64,
        messages: out.messages,
        frames,
        bytes,
        frames_per_sec: frames as f64 / out.elapsed_s,
        bytes_per_message: bytes as f64 / out.messages.max(1) as f64,
    }
}

/// Populations the remote axis measures: every operation pays socket
/// round-trips, so the matrix stays below the in-process sizes.
fn remote_sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    }
}

/// Measured steps for the remote engine at population `n`.
fn remote_steps(n: usize, quick: bool) -> u64 {
    if quick {
        30
    } else if n <= 10_000 {
        100
    } else {
        40
    }
}

/// Runs the remote-transport benchmark matrix (the `--remote` axis).
pub fn run_remote(quick: bool, shards: usize, log: impl Fn(&str)) -> RemoteReport {
    let seed = 0xBE7C;
    let mut rows = Vec::new();
    for &n in remote_sizes(quick) {
        for generator in GENERATORS {
            let steps = remote_steps(n, quick);
            for mode in [DeliveryMode::Dense, DeliveryMode::Sparse] {
                let row = measure_remote(generator, n, shards, mode, steps, seed);
                log(&format!(
                    "remote: {generator:>12} n={n:>8} {shards} conns/{:<6} {:>10.1} steps/s {:>10.1} frames/s {:>8.1} B/msg",
                    row.mode, row.steps_per_sec, row.frames_per_sec, row.bytes_per_message
                ));
                rows.push(row);
            }
        }
    }
    RemoteReport {
        bench: "remote-transport".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        rows,
    }
}

/// Serialises a remote report as pretty JSON.
pub fn remote_to_json(report: &RemoteReport) -> String {
    serde_json::to_string_pretty(report).expect("remote reports serialise")
}

/// CPU cores the measuring machine offers — the denominator of the
/// parallel-efficiency normalisation.
pub fn available_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|c| c.get() as u64)
        .unwrap_or(1)
}

/// Worker counts the scaling curve measures.
fn scaling_worker_counts(quick: bool) -> &'static [usize] {
    if quick {
        &[1, 2]
    } else {
        &[1, 2, 4, 8]
    }
}

/// Measures the multi-core scaling curve: the sharded engine on the
/// noise/dense cell across worker counts, at `n = 10⁶` (full) or `n = 10⁵`
/// (quick). The `workers = 1` point anchors `speedup_vs_one`; `efficiency`
/// normalises by `min(workers, cores)` so the curve is meaningful on any
/// machine (on a 1-core runner it degenerates to a sharding-overhead bound).
pub fn measure_scaling(quick: bool, log: impl Fn(&str)) -> (u64, Vec<ScalingRow>) {
    let cores = available_cores();
    let n: usize = if quick { 100_000 } else { 1_000_000 };
    let steps = indexed_steps(n, quick);
    let seed = 0xBE7C;
    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut one_sps = 0.0_f64;
    for &workers in scaling_worker_counts(quick) {
        let row = measure(
            "noise",
            n,
            EngineKind::Sharded(workers),
            DeliveryMode::Dense,
            steps,
            seed,
        );
        if workers == 1 {
            one_sps = row.steps_per_sec;
        }
        let speedup_vs_one = row.steps_per_sec / one_sps.max(1e-9);
        let efficiency = speedup_vs_one / (workers as u64).min(cores).max(1) as f64;
        log(&format!(
            "scaling:    noise n={n:>8} workers={workers:>2} {:>12.1} steps/s  speedup {:>5.2}x  efficiency {:>5.2} (cores={cores})",
            row.steps_per_sec, speedup_vs_one, efficiency
        ));
        rows.push(ScalingRow {
            generator: row.generator,
            n: row.n,
            workers: workers as u64,
            steps: row.steps,
            steps_per_sec: row.steps_per_sec,
            us_per_step: row.us_per_step,
            speedup_vs_one,
            efficiency,
        });
    }
    (cores, rows)
}

/// Runs only the scaling curve and wraps it as a standalone report — the
/// `--scaling` mode the CI smoke job uses.
pub fn run_scaling(quick: bool, log: impl Fn(&str)) -> ScalingReport {
    let (cores, rows) = measure_scaling(quick, log);
    ScalingReport {
        bench: "scaling".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        cores,
        rows,
    }
}

/// Serialises a scaling report as pretty JSON.
pub fn scaling_to_json(report: &ScalingReport) -> String {
    serde_json::to_string_pretty(report).expect("scaling reports serialise")
}

/// Checks a standalone scaling report against the standard floor table:
/// same bars as the embedded curve in a throughput report of the same scale.
pub fn check_scaling_floors(report: &ScalingReport) -> Vec<String> {
    check_scaling_axis(
        &report.rows,
        report.cores,
        &report.scale,
        &crate::floors::FloorTable::STANDARD.throughput,
    )
}

/// Runs the whole benchmark matrix.
///
/// `quick` is the CI smoke configuration: `n ∈ {10³, 10⁴, 10⁵}` and fewer
/// steps. The full configuration adds `n = 10⁶` and — for the indexed and
/// sharded engines only (see `BASELINE_MAX_N`) — `n = 10⁷`.
///
/// `sharded_workers` is the worker count of the `--sharded` axis (the sharded
/// engine is measured alongside baseline and indexed at every size).
pub fn run_throughput(quick: bool, sharded_workers: usize, log: impl Fn(&str)) -> ThroughputReport {
    let sizes: &[usize] = if quick {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000, 10_000_000]
    };
    let seed = 0xBE7C;
    let mut rows = Vec::new();
    for &n in sizes {
        for generator in GENERATORS {
            for kind in [
                EngineKind::Baseline,
                EngineKind::Indexed,
                EngineKind::Sharded(sharded_workers),
            ] {
                if matches!(kind, EngineKind::Baseline) && n > BASELINE_MAX_N {
                    continue;
                }
                let steps = match kind {
                    EngineKind::Baseline => baseline_steps(n, quick),
                    EngineKind::Indexed | EngineKind::Sharded(_) => indexed_steps(n, quick),
                };
                for mode in [DeliveryMode::Dense, DeliveryMode::Sparse] {
                    let row = measure(generator, n, kind, mode, steps, seed);
                    log(&format!(
                        "throughput: {generator:>12} n={n:>8} {:>8}/{:<6} {:>12.1} steps/s ({:.1} us/step, {} msgs)",
                        row.engine, row.mode, row.steps_per_sec, row.us_per_step, row.messages
                    ));
                    rows.push(row);
                }
            }
        }
    }
    let speedups_dense = speedups(&rows, "indexed", "baseline");
    let speedups_sharded = speedups(&rows, "sharded", "indexed");
    let (cores, scaling) = measure_scaling(quick, &log);
    ThroughputReport {
        bench: "throughput".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        rows,
        speedups_dense,
        speedups_sharded,
        cores,
        scaling,
    }
}

/// Dense-mode steps/sec ratios of `engine` over `reference` per
/// `(generator, n)`.
fn speedups(rows: &[ThroughputRow], engine: &str, reference: &str) -> Vec<SpeedupRow> {
    let mut out = Vec::new();
    for row in rows {
        if row.engine != engine || row.mode != "dense" {
            continue;
        }
        let base = rows.iter().find(|r| {
            r.generator == row.generator
                && r.n == row.n
                && r.engine == reference
                && r.mode == "dense"
        });
        if let Some(b) = base {
            out.push(SpeedupRow {
                generator: row.generator.clone(),
                n: row.n,
                speedup: row.steps_per_sec / b.steps_per_sec,
            });
        }
    }
    out
}

/// Checks the CI floors against a report using the standard
/// [`FloorTable`](crate::floors::FloorTable); returns a list of human-readable
/// failures (empty = pass).
pub fn check_floors(report: &ThroughputReport) -> Vec<String> {
    check_floors_against(report, &crate::floors::FloorTable::STANDARD.throughput)
}

/// Checks the CI floors against a report with an explicit floor table — the
/// single source of the numeric bars shared with the campaign checker (the
/// values used to be duplicated between doc comments, CI comments and this
/// function).
pub fn check_floors_against(
    report: &ThroughputReport,
    floors: &crate::floors::ThroughputFloors,
) -> Vec<String> {
    let mut failures = Vec::new();
    let at = |engine: &str, n: u64| {
        report
            .rows
            .iter()
            .find(|r| r.generator == "noise" && r.n == n && r.engine == engine && r.mode == "dense")
    };
    match (at("indexed", 100_000), at("baseline", 100_000)) {
        (Some(indexed), Some(baseline)) => {
            let speedup = indexed.steps_per_sec / baseline.steps_per_sec;
            if speedup < floors.indexed_speedup {
                failures.push(format!(
                    "indexed/baseline speedup at n=1e5 (noise, dense) is {speedup:.1}x, floor is {}x",
                    floors.indexed_speedup
                ));
            }
            if indexed.steps_per_sec < floors.indexed_absolute_steps_per_sec {
                failures.push(format!(
                    "indexed steps/sec at n=1e5 (noise, dense) is {:.1}, floor is {}",
                    indexed.steps_per_sec, floors.indexed_absolute_steps_per_sec
                ));
            }
        }
        _ => failures.push("report is missing the n=1e5 noise rows the floor check needs".into()),
    }
    // Sharded floor: keyed on the report's declared scale, not on which rows
    // happen to be present — a full-scale report with its n = 1e6 rows
    // missing must *fail*, not silently fall back to the loose quick bar.
    let (n, floor) = if report.scale == "full" {
        (1_000_000, floors.sharded_speedup_full)
    } else {
        (100_000, floors.sharded_speedup_quick)
    };
    match (at("sharded", n), at("indexed", n)) {
        (Some(sharded), Some(indexed)) => {
            if report.scale == "full" && sharded.workers != floors.sharded_floor_workers {
                failures.push(format!(
                    "full-scale sharded rows were measured with {} workers; the floor is stated for {} (regenerate with --sharded {})",
                    sharded.workers, floors.sharded_floor_workers, floors.sharded_floor_workers
                ));
            }
            let speedup = sharded.steps_per_sec / indexed.steps_per_sec;
            if speedup < floor {
                failures.push(format!(
                    "sharded/indexed speedup at n={n} (noise, dense, {} workers) is {speedup:.2}x, floor is {floor}x",
                    sharded.workers
                ));
            }
        }
        _ => failures.push(format!(
            "report is missing the n={n} noise rows the sharded floor check needs"
        )),
    }
    failures.extend(check_scaling_axis(
        &report.scaling,
        report.cores,
        &report.scale,
        floors,
    ));
    failures
}

/// Validates a measured scaling curve against the floor table.
///
/// Efficiency is *recomputed* here from `steps_per_sec` and the report's
/// `cores` — the stored `efficiency` field never satisfies the gate on its
/// own, so a hand-edited JSON cannot launder a regression through it.
fn check_scaling_axis(
    rows: &[ScalingRow],
    cores: u64,
    scale: &str,
    floors: &crate::floors::ThroughputFloors,
) -> Vec<String> {
    let mut failures = Vec::new();
    let (min_counts, min_n, floor) = if scale == "full" {
        (
            floors.scaling_min_worker_counts,
            1_000_000,
            floors.scaling_efficiency_full,
        )
    } else {
        (2, 100_000, floors.scaling_efficiency_quick)
    };
    if cores == 0 {
        failures.push("report records cores = 0; regenerate it with the scaling axis".into());
    }
    let mut counts: Vec<u64> = rows.iter().map(|r| r.workers).collect();
    counts.sort_unstable();
    counts.dedup();
    if counts.len() < min_counts {
        failures.push(format!(
            "scaling curve covers {} worker counts, floor is {min_counts}",
            counts.len()
        ));
        return failures;
    }
    if let Some(r) = rows.iter().find(|r| r.n < min_n) {
        failures.push(format!(
            "{scale}-scale scaling curve has an n={} point; the floor is stated for n >= {min_n}",
            r.n
        ));
    }
    let Some(one) = rows.iter().find(|r| r.workers == 1) else {
        failures.push("scaling curve is missing its workers=1 anchor point".into());
        return failures;
    };
    for row in rows.iter().filter(|r| r.workers > 1) {
        let speedup = row.steps_per_sec / one.steps_per_sec;
        let efficiency = speedup / row.workers.min(cores.max(1)).max(1) as f64;
        if efficiency < floor {
            failures.push(format!(
                "parallel efficiency at workers={} is {efficiency:.2} ({speedup:.2}x over 1 worker on {cores} cores), floor is {floor}",
                row.workers
            ));
        }
    }
    failures
}

/// Serialises a report as pretty JSON.
pub fn to_json(report: &ThroughputReport) -> String {
    serde_json::to_string_pretty(report).expect("throughput reports serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_numbers() {
        let row = measure(
            "noise",
            256,
            EngineKind::Indexed,
            DeliveryMode::Dense,
            10,
            7,
        );
        assert_eq!(row.steps, 10);
        assert!(row.steps_per_sec > 0.0);
        assert!(row.us_per_step > 0.0);
        assert!(row.mean_changed_per_step > 0.0);
        // The phase attribution must account for the measured window: both
        // phases ran, and their sum is within the row's per-step total.
        assert!(row.profile.advance_ns_per_step > 0.0);
        assert!(row.profile.detect_repair_ns_per_step > 0.0);
        let phase_sum = row.profile.advance_ns_per_step + row.profile.detect_repair_ns_per_step;
        assert!(
            phase_sum <= row.us_per_step * 1e3 * 1.01,
            "phases ({phase_sum} ns/step) exceed the measured total ({} ns/step)",
            row.us_per_step * 1e3
        );
        assert!(row.profile.rounds > 0, "violation drains consume rounds");
        assert!(row.profile.rounds_per_sec > 0.0);
    }

    #[test]
    fn engines_send_identical_messages_in_the_harness_loop() {
        for generator in GENERATORS {
            let base = measure(
                generator,
                128,
                EngineKind::Baseline,
                DeliveryMode::Dense,
                15,
                3,
            );
            let idx = measure(
                generator,
                128,
                EngineKind::Indexed,
                DeliveryMode::Dense,
                15,
                3,
            );
            assert_eq!(
                base.messages, idx.messages,
                "{generator}: engines disagree on message counts"
            );
            let sparse = measure(
                generator,
                128,
                EngineKind::Indexed,
                DeliveryMode::Sparse,
                15,
                3,
            );
            assert_eq!(
                base.messages, sparse.messages,
                "{generator}: sparse delivery changed message counts"
            );
        }
    }

    #[test]
    fn quiet_workload_converges_to_silence() {
        // After warm-up the ratcheting filters cover the adversary's range, so
        // the measured window sends (almost) no messages.
        let row = measure(
            "adversarial",
            256,
            EngineKind::Indexed,
            DeliveryMode::Sparse,
            20,
            11,
        );
        assert!(
            row.messages < 40,
            "adversarial workload should be near-silent after warm-up, sent {}",
            row.messages
        );
        assert!(row.mean_changed_per_step < 40.0);
    }

    /// A healthy full-scale scaling curve for hand-built report fixtures.
    fn scaling_fixture() -> Vec<ScalingRow> {
        [1u64, 2, 4]
            .iter()
            .map(|&workers| ScalingRow {
                generator: "noise".into(),
                n: 1_000_000,
                workers,
                steps: 1,
                // Perfect linear scaling on the fixture's 4 "cores".
                steps_per_sec: 100.0 * workers as f64,
                us_per_step: 1.0,
                speedup_vs_one: workers as f64,
                efficiency: 1.0,
            })
            .collect()
    }

    #[test]
    fn floor_check_detects_missing_rows() {
        let empty = ThroughputReport {
            bench: "throughput".into(),
            scale: "quick".into(),
            rows: vec![],
            speedups_dense: vec![],
            speedups_sharded: vec![],
            cores: 0,
            scaling: vec![],
        };
        // The indexed and sharded floors report their missing rows; the
        // scaling gate reports the zero cores field and the empty curve.
        assert_eq!(check_floors(&empty).len(), 4);
    }

    #[test]
    fn sharded_floor_uses_full_scale_rows_when_present() {
        // The sharded axis must be built with the same worker count the
        // full-scale floor is stated for — derive it, never hard-code it, so
        // a floor-table change cannot silently diverge from this fixture.
        let floor_workers = crate::floors::FloorTable::STANDARD
            .throughput
            .sharded_floor_workers;
        let row = |engine: &str, n: u64, steps_per_sec: f64| ThroughputRow {
            generator: "noise".into(),
            n,
            engine: engine.into(),
            workers: if engine == "sharded" {
                floor_workers
            } else {
                0
            },
            mode: "dense".into(),
            steps: 1,
            elapsed_s: 1.0,
            steps_per_sec,
            us_per_step: 1.0,
            messages: 0,
            mean_changed_per_step: 0.0,
            profile: PhaseProfile::default(),
        };
        let mut report = ThroughputReport {
            bench: "throughput".into(),
            scale: "full".into(),
            rows: vec![
                row("baseline", 100_000, 10.0),
                row("indexed", 100_000, 1000.0),
                row("sharded", 100_000, 1000.0), // only 1.0x — but quick floor not used
                row("indexed", 1_000_000, 100.0),
                row("sharded", 1_000_000, 230.0), // 2.3x clears the full floor
            ],
            speedups_dense: vec![],
            speedups_sharded: vec![],
            cores: 4,
            scaling: scaling_fixture(),
        };
        assert!(check_floors(&report).is_empty());
        // Degrading the 1e6 sharded row below 2x must trip the floor.
        report.rows.last_mut().unwrap().steps_per_sec = 150.0;
        let failures = check_floors(&report);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("sharded/indexed"));
        // A full-scale report *missing* its n=1e6 rows must fail, not fall
        // back to the loose quick floor (the scale field is authoritative).
        report.rows.retain(|r| r.n != 1_000_000);
        let failures = check_floors(&report);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("missing the n=1000000"));
    }

    #[test]
    fn scaling_floor_recomputes_efficiency_from_steps_per_sec() {
        let mut report = ThroughputReport {
            bench: "throughput".into(),
            scale: "full".into(),
            rows: vec![],
            speedups_dense: vec![],
            speedups_sharded: vec![],
            cores: 4,
            scaling: scaling_fixture(),
        };
        let scaling_only = |r: &ThroughputReport| -> Vec<String> {
            check_floors(r)
                .into_iter()
                .filter(|f| {
                    f.contains("scaling") || f.contains("efficiency") || f.contains("cores")
                })
                .collect()
        };
        assert!(scaling_only(&report).is_empty());
        // Dropping workers=4 to 1.2x over workers=1 (efficiency 0.3 on 4
        // cores) must trip the 0.5 floor — even though the *stored*
        // efficiency field still says 1.0 (the gate recomputes).
        report.scaling.last_mut().unwrap().steps_per_sec = 120.0;
        let failures = scaling_only(&report);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("parallel efficiency at workers=4"));
        // On a 1-core machine the same numbers are *fine*: min(workers,
        // cores) = 1, so 1.2x over one worker is efficiency 1.2.
        report.cores = 1;
        assert!(scaling_only(&report).is_empty());
        // Fewer than 3 distinct worker counts fails a full-scale report.
        report.cores = 4;
        report.scaling.pop();
        let failures = scaling_only(&report);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("worker counts"));
        // A full-scale curve measured below n=1e6 fails.
        report.scaling = scaling_fixture();
        report.scaling[0].n = 100_000;
        assert!(scaling_only(&report)
            .iter()
            .any(|f| f.contains("n >= 1000000")));
    }

    #[test]
    fn standalone_scaling_report_round_trips_and_checks() {
        let report = ScalingReport {
            bench: "scaling".into(),
            scale: "full".into(),
            cores: 4,
            rows: scaling_fixture(),
        };
        assert!(check_scaling_floors(&report).is_empty());
        let json = scaling_to_json(&report);
        let parsed: ScalingReport = serde_json::from_str(&json).expect("scaling deserialises");
        assert_eq!(parsed.rows.len(), 3);
        assert_eq!(parsed.cores, 4);
        // A quick-scale curve is allowed 2 worker counts at n=1e5.
        let mut quick = report;
        quick.scale = "quick".into();
        quick.rows.pop();
        for r in &mut quick.rows {
            r.n = 100_000;
        }
        assert!(check_scaling_floors(&quick).is_empty());
    }

    #[test]
    fn report_serialises_and_roundtrips() {
        let row = measure(
            "random-walk",
            64,
            EngineKind::Sharded(2),
            DeliveryMode::Dense,
            5,
            1,
        );
        assert_eq!(row.workers, 2);
        let report = ThroughputReport {
            bench: "throughput".into(),
            scale: "quick".into(),
            speedups_dense: speedups(std::slice::from_ref(&row), "indexed", "baseline"),
            speedups_sharded: speedups(std::slice::from_ref(&row), "sharded", "indexed"),
            rows: vec![row],
            cores: available_cores(),
            scaling: vec![],
        };
        let json = to_json(&report);
        assert!(json.contains("\"generator\""));
        assert!(json.contains("random-walk"));
        assert!(json.contains("advance_ns_per_step"));
        let parsed: ThroughputReport = serde_json::from_str(&json).expect("reports deserialise");
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].workers, 2);
        assert!(parsed.cores >= 1);
        // A pre-scaling report (no `cores`/`scaling` keys) must fail loudly
        // at the parse, not silently pass a floor check with empty defaults.
        let legacy = json.replace("\"cores\"", "\"cpus\"");
        assert!(serde_json::from_str::<ThroughputReport>(&legacy).is_err());
    }

    #[test]
    fn remote_measure_produces_sane_numbers_and_identical_messages() {
        let base = measure(
            "noise",
            128,
            EngineKind::Baseline,
            DeliveryMode::Dense,
            10,
            5,
        );
        for mode in [DeliveryMode::Dense, DeliveryMode::Sparse] {
            let row = measure_remote("noise", 128, 2, mode, 10, 5);
            assert_eq!(row.steps, 10);
            assert_eq!(row.shards, 2);
            assert!(row.steps_per_sec > 0.0);
            assert!(row.frames > 0, "steps must move frames over the wire");
            assert!(row.bytes > 0);
            assert!(row.frames_per_sec > 0.0);
            assert_eq!(
                base.messages, row.messages,
                "the TCP transport changed model message counts in {mode:?}"
            );
        }
    }

    #[test]
    fn remote_report_serialises_and_roundtrips() {
        let report = RemoteReport {
            bench: "remote-transport".into(),
            scale: "quick".into(),
            rows: vec![measure_remote(
                "random-walk",
                64,
                2,
                DeliveryMode::Sparse,
                5,
                1,
            )],
        };
        let json = remote_to_json(&report);
        assert!(json.contains("bytes_per_message"));
        let parsed: RemoteReport = serde_json::from_str(&json).expect("remote reports deserialise");
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].shards, 2);
    }

    #[test]
    fn sharded_engine_sends_identical_messages_in_the_harness_loop() {
        for workers in [1, 3] {
            let base = measure(
                "random-walk",
                128,
                EngineKind::Baseline,
                DeliveryMode::Dense,
                15,
                3,
            );
            let sharded = measure(
                "random-walk",
                128,
                EngineKind::Sharded(workers),
                DeliveryMode::Dense,
                15,
                3,
            );
            assert_eq!(
                base.messages, sharded.messages,
                "sharded({workers}) disagrees with the baseline on message counts"
            );
            let sparse = measure(
                "random-walk",
                128,
                EngineKind::Sharded(workers),
                DeliveryMode::Sparse,
                15,
                3,
            );
            assert_eq!(base.messages, sparse.messages);
        }
    }
}
