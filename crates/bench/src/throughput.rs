//! Engine throughput benchmark (`experiments --throughput`).
//!
//! The paper's point is that *communication* scales with `O(k log n + …)`, not
//! with `n` — but a simulator is only useful at scale if its *computation*
//! tracks the communication. This harness measures simulated steps per second
//! for the baseline [`DeterministicEngine`] (Θ(n log n) node invocations per
//! silent step) against the [`IndexedEngine`] (O(active) work per step) across
//! the workload generators, at `n` from 10³ to 10⁶, and writes the result as
//! `BENCH_throughput.json` — the first entry of the repo's bench trajectory.
//!
//! Each run drives a minimal but honest monitoring loop: observations arrive,
//! the Corollary 3.2 violation check (`detect_violations`) runs every step, and
//! every reported violation is repaired by assigning a widened filter. Filters
//! ratchet outward, so every workload converges to the regime the paper's
//! bounds describe — mostly silent steps with occasional violations — during
//! the untimed warm-up. Workload generation and inspection happen outside the
//! timed sections; only engine work (observation delivery, existence rounds,
//! filter repairs) is on the clock.
//!
//! Two delivery modes are measured:
//!
//! * `dense` — the classic [`Network::advance_time`] full row (the engine must
//!   at least scan `n` values);
//! * `sparse` — [`Network::advance_time_sparse`] with only the changed nodes
//!   (what a real ingest path would deliver). On quiet workloads the indexed
//!   engine's per-step cost is then near-independent of `n`.

use serde::Serialize;
use std::time::{Duration, Instant};
use topk_core::existence::detect_violations;
use topk_gen::{
    AdaptiveWorkload, LowerBoundAdversary, NoiseOscillationWorkload, RandomWalkWorkload,
    ZipfLoadWorkload,
};
use topk_model::prelude::*;
use topk_net::{DeterministicEngine, IndexedEngine, Network};

/// The workload generators exercised by the throughput benchmark.
pub const GENERATORS: [&str; 4] = ["zipf", "noise", "random-walk", "adversarial"];

/// Which engine a measurement drove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// `DeterministicEngine` — reference semantics, Θ(n) per existence round.
    Baseline,
    /// `IndexedEngine` — O(active) per round, bit-identical behaviour.
    Indexed,
}

impl EngineKind {
    fn label(self) -> &'static str {
        match self {
            EngineKind::Baseline => "baseline",
            EngineKind::Indexed => "indexed",
        }
    }
}

/// Observation delivery mode of a measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Full row per step (`advance_time`).
    Dense,
    /// Changed nodes only (`advance_time_sparse`).
    Sparse,
}

impl DeliveryMode {
    fn label(self) -> &'static str {
        match self {
            DeliveryMode::Dense => "dense",
            DeliveryMode::Sparse => "sparse",
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Workload generator name (one of [`GENERATORS`]).
    pub generator: String,
    /// Number of nodes.
    pub n: u64,
    /// `"baseline"` or `"indexed"`.
    pub engine: String,
    /// `"dense"` or `"sparse"` observation delivery.
    pub mode: String,
    /// Measured steps (after warm-up).
    pub steps: u64,
    /// Wall-clock seconds spent in engine work over the measured steps.
    pub elapsed_s: f64,
    /// Simulated observation steps per second of engine work.
    pub steps_per_sec: f64,
    /// Microseconds of engine work per step (the scaling-curve quantity).
    pub us_per_step: f64,
    /// Model messages sent during the measured steps (violations + repairs).
    pub messages: u64,
    /// Mean number of nodes whose value changed per step.
    pub mean_changed_per_step: f64,
}

/// The full benchmark output, serialised to `BENCH_throughput.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Schema/benchmark identifier.
    pub bench: String,
    /// `"quick"` (CI smoke) or `"full"`.
    pub scale: String,
    /// All measured configurations.
    pub rows: Vec<ThroughputRow>,
    /// Indexed-over-baseline steps/sec speedups per `(generator, n)`, dense mode.
    pub speedups_dense: Vec<SpeedupRow>,
}

/// Speedup summary entry.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// Workload generator name.
    pub generator: String,
    /// Number of nodes.
    pub n: u64,
    /// `indexed steps/sec ÷ baseline steps/sec` (dense delivery).
    pub speedup: f64,
}

fn make_workload(name: &str, n: usize, seed: u64) -> Box<dyn AdaptiveWorkload> {
    match name {
        "zipf" => Box::new(ZipfLoadWorkload::new(n, 1.1, 100_000, 500, 1e-4, seed)),
        "noise" => Box::new(NoiseOscillationWorkload::new(
            n,
            8,
            32,
            100_000,
            Epsilon::TENTH,
            seed,
        )),
        "random-walk" => Box::new(RandomWalkWorkload::new(n, 1_000_000, 1_000, 0.05, seed)),
        "adversarial" => Box::new(LowerBoundAdversary::new(
            n,
            8,
            64.min(n - 1),
            1 << 20,
            Epsilon::new(1, 4).unwrap(),
        )),
        other => panic!("unknown throughput generator {other}"),
    }
}

fn make_engine(kind: EngineKind, n: usize, seed: u64) -> Box<dyn Network> {
    match kind {
        EngineKind::Baseline => Box::new(DeterministicEngine::new(n, seed)),
        EngineKind::Indexed => Box::new(IndexedEngine::new(n, seed)),
    }
}

/// The harness's filter policy, mirroring how the paper's protocols treat
/// nodes: calibrate a per-node band from a few observed steps (a deployment
/// sizes filters to the signal's variability). Steady nodes — top-k candidates
/// oscillate within a narrow multiplicative band — get a two-sided band with
/// 4× slack; nodes whose calibration range already spans a 2× ratio (noisy
/// non-candidates) get the one-sided `[0, hi]` filter the paper assigns to its
/// `Lower`/`V3` groups, so random excursions downward never report.
fn calibrated_filter(observed_lo: Value, observed_hi: Value) -> Filter {
    let hi = observed_hi.saturating_mul(4).saturating_add(64);
    let lo = if observed_hi / observed_lo.max(1) >= 2 {
        0
    } else {
        observed_lo / 4
    };
    Filter::bounded(lo, hi).expect("lo <= hi")
}

/// Repair after a violation: widen the violated side well past the violating
/// value. Every violation cuts that node's miss probability by ~4× (a crash
/// through the floor drops the lower bound to zero — the node just proved it
/// is not a stable top-k candidate), so nodes converge to silence after O(1)
/// violations instead of accumulating a backlog.
fn widened_filter(current: Filter, violating: Value) -> Filter {
    let (mut lo, mut hi) = (current.lo(), current.hi_or_max());
    if violating < lo {
        lo = if violating < lo / 4 { 0 } else { violating / 4 };
    } else {
        hi = violating.saturating_mul(4).saturating_add(64);
    }
    Filter::bounded(lo, hi.max(lo)).expect("lo <= hi")
}

/// Measured steps for the indexed engine at population `n`.
fn indexed_steps(n: usize, quick: bool) -> u64 {
    if quick {
        50
    } else if n <= 10_000 {
        200
    } else if n <= 100_000 {
        100
    } else {
        30
    }
}

/// Measured steps for the baseline engine: capped so that the Θ(n log n)
/// per-step cost keeps the benchmark runnable at large `n`.
fn baseline_steps(n: usize, quick: bool) -> u64 {
    indexed_steps(n, quick).min((4_000_000 / n as u64).max(3))
}

// 16 calibration samples make the band classification reliable: the chance a
// wide-ranging node's samples all land within a 2x ratio (earning it a
// two-sided filter it will keep violating) is negligible.
const CALIBRATION_STEPS: u64 = 16;
const WARMUP_STEPS: u64 = 8;

/// Runs one configuration and returns its measurement row.
pub fn measure(
    generator: &str,
    n: usize,
    kind: EngineKind,
    mode: DeliveryMode,
    steps: u64,
    seed: u64,
) -> ThroughputRow {
    let mut workload = make_workload(generator, n, seed);
    let mut net = make_engine(kind, n, seed);

    // Setup (untimed): observe a few calibration steps under the all-embracing
    // default filters (no violations possible), then assign every node a band
    // sized to the range it actually exhibited.
    let mut filters: Vec<Filter> = Vec::new();
    net.peek_filters_into(&mut filters);
    let first = workload.next_step_adaptive(&filters);
    net.advance_time(&first);
    let mut band_lo = first.clone();
    let mut band_hi = first.clone();
    let mut prev = first;
    for _ in 0..CALIBRATION_STEPS {
        let row = workload.next_step_adaptive(&filters);
        net.advance_time(&row);
        for (i, &v) in row.iter().enumerate() {
            band_lo[i] = band_lo[i].min(v);
            band_hi[i] = band_hi[i].max(v);
        }
        prev = row;
    }
    for i in 0..n {
        net.assign_filter(NodeId(i), calibrated_filter(band_lo[i], band_hi[i]));
    }
    net.peek_filters_into(&mut filters);
    let mut changes: Vec<(NodeId, Value)> = Vec::new();
    let mut elapsed = Duration::ZERO;
    let mut total_changed = 0u64;
    let mut messages_at_warmup_end = 0u64;
    // Phase breakdown (whole run incl. warm-up), reported via THROUGHPUT_PHASES.
    let mut phase_advance = Duration::ZERO;
    let mut phase_detect = Duration::ZERO;
    let mut violations = 0u64;

    for step in 0..(WARMUP_STEPS + steps) {
        if step == WARMUP_STEPS {
            elapsed = Duration::ZERO;
            total_changed = 0;
            messages_at_warmup_end = net.stats().total_messages();
        }
        // Workload generation and row diffing are the source's job, not the
        // engine's — kept off the clock.
        let row = workload.next_step_adaptive(&filters);
        changes.clear();
        for (i, (&new, &old)) in row.iter().zip(prev.iter()).enumerate() {
            if new != old {
                changes.push((NodeId(i), new));
            }
        }
        total_changed += changes.len() as u64;

        let t0 = Instant::now();
        match mode {
            DeliveryMode::Dense => net.advance_time(&row),
            DeliveryMode::Sparse => net.advance_time_sparse(&changes),
        }
        let t_advance = t0.elapsed();
        // Drain *all* violations before the next observation arrives, like the
        // real monitors do (each Lemma 3.1 run reports O(1) violators in
        // expectation, so a backlog takes several runs). The loop terminates
        // because the final round of a run reports with probability 1 and every
        // reported node is repaired.
        loop {
            let reports = detect_violations(net.as_mut());
            if reports.is_empty() {
                break;
            }
            violations += reports.len() as u64;
            for report in &reports {
                let node = report.sender();
                let widened = widened_filter(net.peek_filter(node), report.value());
                net.assign_filter(node, widened);
            }
        }
        elapsed += t0.elapsed();
        phase_advance += t_advance;
        phase_detect += t0.elapsed() - t_advance;

        prev = row;
        net.peek_filters_into(&mut filters);
    }
    if std::env::var_os("THROUGHPUT_PHASES").is_some() {
        eprintln!(
            "phases: {generator} n={n} {}/{}: advance {:.1}us/step, detect+repair {:.1}us/step, {} violations",
            kind.label(),
            mode.label(),
            phase_advance.as_secs_f64() * 1e6 / (WARMUP_STEPS + steps) as f64,
            phase_detect.as_secs_f64() * 1e6 / (WARMUP_STEPS + steps) as f64,
            violations,
        );
    }

    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    ThroughputRow {
        generator: generator.to_string(),
        n: n as u64,
        engine: kind.label().to_string(),
        mode: mode.label().to_string(),
        steps,
        elapsed_s,
        steps_per_sec: steps as f64 / elapsed_s,
        us_per_step: elapsed_s * 1e6 / steps as f64,
        messages: net.stats().total_messages() - messages_at_warmup_end,
        mean_changed_per_step: total_changed as f64 / steps as f64,
    }
}

/// Runs the whole benchmark matrix.
///
/// `quick` is the CI smoke configuration: `n ∈ {10³, 10⁴, 10⁵}` and fewer
/// steps. The full configuration adds `n = 10⁶`.
pub fn run_throughput(quick: bool, log: impl Fn(&str)) -> ThroughputReport {
    let sizes: &[usize] = if quick {
        &[1_000, 10_000, 100_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let seed = 0xBE7C;
    let mut rows = Vec::new();
    for &n in sizes {
        for generator in GENERATORS {
            for kind in [EngineKind::Baseline, EngineKind::Indexed] {
                let steps = match kind {
                    EngineKind::Baseline => baseline_steps(n, quick),
                    EngineKind::Indexed => indexed_steps(n, quick),
                };
                for mode in [DeliveryMode::Dense, DeliveryMode::Sparse] {
                    let row = measure(generator, n, kind, mode, steps, seed);
                    log(&format!(
                        "throughput: {generator:>12} n={n:>7} {:>8}/{:<6} {:>12.1} steps/s ({:.1} us/step, {} msgs)",
                        row.engine, row.mode, row.steps_per_sec, row.us_per_step, row.messages
                    ));
                    rows.push(row);
                }
            }
        }
    }
    let speedups_dense = speedups(&rows);
    ThroughputReport {
        bench: "throughput".to_string(),
        scale: if quick { "quick" } else { "full" }.to_string(),
        rows,
        speedups_dense,
    }
}

fn speedups(rows: &[ThroughputRow]) -> Vec<SpeedupRow> {
    let mut out = Vec::new();
    for row in rows {
        if row.engine != "indexed" || row.mode != "dense" {
            continue;
        }
        let baseline = rows.iter().find(|r| {
            r.generator == row.generator
                && r.n == row.n
                && r.engine == "baseline"
                && r.mode == "dense"
        });
        if let Some(b) = baseline {
            out.push(SpeedupRow {
                generator: row.generator.clone(),
                n: row.n,
                speedup: row.steps_per_sec / b.steps_per_sec,
            });
        }
    }
    out
}

/// The regression floor enforced in CI: at `n = 10⁵` on the noise generator the
/// indexed engine must beat the baseline by at least this factor (the issue's
/// acceptance bar), and must clear an absolute steps/sec sanity floor.
pub const SPEEDUP_FLOOR: f64 = 10.0;
/// Absolute steps/sec sanity floor for the indexed engine at `n = 10⁵`
/// (conservative: debug-free release builds measure orders of magnitude more).
pub const ABSOLUTE_FLOOR: f64 = 50.0;

/// Checks the CI floors against a report; returns a list of human-readable
/// failures (empty = pass).
pub fn check_floors(report: &ThroughputReport) -> Vec<String> {
    let mut failures = Vec::new();
    let at = |engine: &str| {
        report.rows.iter().find(|r| {
            r.generator == "noise" && r.n == 100_000 && r.engine == engine && r.mode == "dense"
        })
    };
    match (at("indexed"), at("baseline")) {
        (Some(indexed), Some(baseline)) => {
            let speedup = indexed.steps_per_sec / baseline.steps_per_sec;
            if speedup < SPEEDUP_FLOOR {
                failures.push(format!(
                    "indexed/baseline speedup at n=1e5 (noise, dense) is {speedup:.1}x, floor is {SPEEDUP_FLOOR}x"
                ));
            }
            if indexed.steps_per_sec < ABSOLUTE_FLOOR {
                failures.push(format!(
                    "indexed steps/sec at n=1e5 (noise, dense) is {:.1}, floor is {ABSOLUTE_FLOOR}",
                    indexed.steps_per_sec
                ));
            }
        }
        _ => failures.push("report is missing the n=1e5 noise rows the floor check needs".into()),
    }
    failures
}

/// Serialises a report as pretty JSON.
pub fn to_json(report: &ThroughputReport) -> String {
    serde_json::to_string_pretty(report).expect("throughput reports serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_numbers() {
        let row = measure(
            "noise",
            256,
            EngineKind::Indexed,
            DeliveryMode::Dense,
            10,
            7,
        );
        assert_eq!(row.steps, 10);
        assert!(row.steps_per_sec > 0.0);
        assert!(row.us_per_step > 0.0);
        assert!(row.mean_changed_per_step > 0.0);
    }

    #[test]
    fn engines_send_identical_messages_in_the_harness_loop() {
        for generator in GENERATORS {
            let base = measure(
                generator,
                128,
                EngineKind::Baseline,
                DeliveryMode::Dense,
                15,
                3,
            );
            let idx = measure(
                generator,
                128,
                EngineKind::Indexed,
                DeliveryMode::Dense,
                15,
                3,
            );
            assert_eq!(
                base.messages, idx.messages,
                "{generator}: engines disagree on message counts"
            );
            let sparse = measure(
                generator,
                128,
                EngineKind::Indexed,
                DeliveryMode::Sparse,
                15,
                3,
            );
            assert_eq!(
                base.messages, sparse.messages,
                "{generator}: sparse delivery changed message counts"
            );
        }
    }

    #[test]
    fn quiet_workload_converges_to_silence() {
        // After warm-up the ratcheting filters cover the adversary's range, so
        // the measured window sends (almost) no messages.
        let row = measure(
            "adversarial",
            256,
            EngineKind::Indexed,
            DeliveryMode::Sparse,
            20,
            11,
        );
        assert!(
            row.messages < 40,
            "adversarial workload should be near-silent after warm-up, sent {}",
            row.messages
        );
        assert!(row.mean_changed_per_step < 40.0);
    }

    #[test]
    fn floor_check_detects_missing_rows() {
        let empty = ThroughputReport {
            bench: "throughput".into(),
            scale: "quick".into(),
            rows: vec![],
            speedups_dense: vec![],
        };
        assert_eq!(check_floors(&empty).len(), 1);
    }

    #[test]
    fn report_serialises() {
        let row = measure(
            "random-walk",
            64,
            EngineKind::Indexed,
            DeliveryMode::Dense,
            5,
            1,
        );
        let report = ThroughputReport {
            bench: "throughput".into(),
            scale: "quick".into(),
            speedups_dense: speedups(std::slice::from_ref(&row)),
            rows: vec![row],
        };
        let json = to_json(&report);
        assert!(json.contains("\"generator\""));
        assert!(json.contains("random-walk"));
    }
}
