//! # topk-bench
//!
//! Experiment harness regenerating every result of the paper.
//!
//! The paper is purely analytical — its "evaluation" is the set of theorems
//! R1–R7 listed in DESIGN.md. Each experiment below measures the empirical
//! quantity the corresponding theorem bounds and reports it next to the
//! theoretical prediction, so the *shape* of every result can be checked:
//!
//! | experiment | reproduces | measured quantity |
//! |------------|-----------|-------------------|
//! | [`experiments::e1_existence`] | Lemma 3.1 | expected messages of the existence protocol vs `n` and the number of ones `b` |
//! | [`experiments::e2_maximum`] | Lemma 2.6 | expected messages to find the maximum vs `n` |
//! | [`experiments::e3_exact_topk`] | Corollary 3.3 | messages / competitive ratio of the exact monitor vs `Δ`, `k` |
//! | [`experiments::e4_topk_protocol`] | Theorem 4.5 | messages / competitive ratio of `TopKProtocol` vs `Δ`, `ε` |
//! | [`experiments::e5_lower_bound`] | Theorem 5.1 | forced online messages vs the `(k+1)`-per-phase offline cost on the adversarial instance |
//! | [`experiments::e6_dense`] | Theorem 5.8 | messages / competitive ratio of `DenseProtocol` (and the combined algorithm) vs `σ` |
//! | [`experiments::e7_half_eps`] | Corollary 5.9 | messages / competitive ratio of the ε/2-gap algorithm vs `σ` |
//! | [`experiments::e8_crossover`] | Cor. 3.3 vs Thm. 4.5 | exact-midpoint vs `TopKProtocol` message counts as `Δ` grows |
//!
//! The `experiments` binary (`cargo run -p topk-bench --bin experiments --release`)
//! prints the tables; the Criterion benches under `benches/` measure the
//! wall-clock cost of the same code paths.
//!
//! [`throughput`] is the engine-throughput benchmark (`experiments
//! --throughput [--sharded <threads>]`): simulated steps per second of the
//! baseline vs. the indexed vs. the sharded engine across workloads and
//! population sizes (up to 10⁷ nodes), written to `BENCH_throughput.json`.
//!
//! [`campaign`] is the scenario campaign (`experiments --campaign`): a
//! declarative grid of workload families × regime parameters × ε × n run under
//! every protocol, with empirical competitive ratios against the
//! `topk-offline` OPT written to `BENCH_competitive.json` and ratcheted by
//! `--check-competitive-floors`. [`floors`] is the single serialised table of
//! every numeric bar both check modes enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiments;
pub mod floors;
pub mod replay;
pub mod scenario;
pub mod table;
pub mod throughput;

pub use campaign::{run_campaign, CompetitiveReport};
pub use experiments::*;
pub use floors::FloorTable;
pub use replay::{record_run, replay_trace, EngineKind, ReplayOutcome};
pub use scenario::{
    check_library_sync, emit_library, load_scenario, load_scenario_dir, parse_scenario,
    scenario_to_json, standard_library, ScenarioError, ScenarioFile, SCENARIO_SCHEMA,
};
pub use table::ExperimentTable;
pub use throughput::{run_throughput, ThroughputReport};
