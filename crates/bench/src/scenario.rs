//! Declarative scenario files: the on-disk form of [`ScenarioSpec`].
//!
//! A scenario file is one campaign cell as JSON — the workload generator and
//! its regime parameters, the population size, `k`, ε, horizon and seed, plus
//! an optional fault plan and an optional membership churn plan. The committed
//! library under `scenarios/` is the single human-editable source of the
//! experiment grid: `standard_library` derives the exact same cells the
//! compiled-in [`standard_grid`] (and its fault/membership companions) runs,
//! and [`check_library_sync`] holds the directory byte-for-byte to that
//! derivation, so a stale or hand-drifted file fails CI instead of silently
//! measuring something else.
//!
//! ## Schema (`topk-scenario/v1`, normative copy in `docs/SCENARIOS.md`)
//!
//! ```json
//! {
//!   "schema": "topk-scenario/v1",
//!   "name": "zipf-n64-k4-e1of10-s240",
//!   "generator": { "family": "zipf", "peak_load": 100000 },
//!   "n": 64,
//!   "k": 4,
//!   "eps": { "num": 1, "den": 10 },
//!   "steps": 240,
//!   "seed": 51772,
//!   "fault": { … optional … },
//!   "membership": { … optional … }
//! }
//! ```
//!
//! Validation is strict and typed: unknown fields anywhere, a missing
//! required field, a wrong JSON type, an unknown generator family,
//! `ε ∉ (0, 1)` or an out-of-range parameter each produce the corresponding
//! [`ScenarioError`] variant, carrying the file and (best-effort) line/column
//! where the offending key sits. Nothing in this module panics on bad input —
//! the loaders re-check every bound the underlying constructors would
//! otherwise `assert!` on.
//!
//! Serialisation is canonical: [`scenario_to_json`] emits keys in a fixed
//! order with fixed formatting, so `parse → serialize` is the identity on
//! library files and the sync check can compare bytes.

use crate::campaign::{
    standard_fault_grid, standard_grid, standard_membership_grid, GeneratorSpec,
    MembershipPlanSpec, ScenarioSpec,
};
use serde::Json;
use std::fmt;
use std::io::Read;
use std::path::Path;
use topk_model::prelude::*;

/// The schema tag every scenario file must carry.
pub const SCENARIO_SCHEMA: &str = "topk-scenario/v1";

/// A parsed scenario file: one grid cell plus its optional fault/membership
/// companions.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// The scenario's name (also its file stem in a library directory).
    pub name: String,
    /// The cell itself.
    pub spec: ScenarioSpec,
    /// Fault plan to run the cell under, if any.
    pub fault: Option<FaultSpec>,
    /// Membership churn plan to run the cell under, if any.
    pub membership: Option<MembershipPlanSpec>,
}

/// Where in a file an error was found. Lines and columns are 1-based; for
/// field-level errors they point at the first occurrence of the offending
/// key (best effort — the value tree carries no spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// File path (or a synthetic origin like `<inline>`).
    pub origin: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.origin, self.line, self.col)
    }
}

/// Typed validation errors of the scenario loader.
#[derive(Debug)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The text is not well-formed JSON.
    Parse {
        /// Where parsing stopped.
        at: Context,
        /// The parser's message.
        message: String,
    },
    /// The `schema` tag is missing or not a version this loader reads.
    BadSchema {
        /// Where the tag sits (or the file start if absent).
        at: Context,
        /// The tag found, if any.
        found: Option<String>,
    },
    /// An object carries a field the schema does not define.
    UnknownField {
        /// Where the field sits.
        at: Context,
        /// Dotted path of the field (e.g. `generator.peak_load`).
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// Where the enclosing object sits.
        at: Context,
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field holds a value of the wrong JSON type.
    WrongType {
        /// Where the field sits.
        at: Context,
        /// Dotted path of the field.
        field: String,
        /// What the schema expects there.
        expected: &'static str,
    },
    /// The generator `family` is not one this build knows.
    UnknownFamily {
        /// Where the family tag sits.
        at: Context,
        /// The unknown family name.
        family: String,
    },
    /// `eps` does not describe an error in `(0, 1)`.
    InvalidEpsilon {
        /// Where the `eps` object sits.
        at: Context,
        /// Offending numerator.
        num: u64,
        /// Offending denominator.
        den: u64,
    },
    /// A value parses but violates a documented bound.
    OutOfRange {
        /// Where the field sits.
        at: Context,
        /// Dotted path of the field.
        field: String,
        /// The violated bound, in words.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, source } => write!(f, "{path}: {source}"),
            ScenarioError::Parse { at, message } => write!(f, "{at}: {message}"),
            ScenarioError::BadSchema { at, found } => match found {
                Some(tag) => write!(
                    f,
                    "{at}: unsupported schema `{tag}` (expected `{SCENARIO_SCHEMA}`)"
                ),
                None => write!(
                    f,
                    "{at}: missing `schema` tag (expected `{SCENARIO_SCHEMA}`)"
                ),
            },
            ScenarioError::UnknownField { at, field } => {
                write!(f, "{at}: unknown field `{field}`")
            }
            ScenarioError::MissingField { at, field } => {
                write!(f, "{at}: missing required field `{field}`")
            }
            ScenarioError::WrongType {
                at,
                field,
                expected,
            } => {
                write!(f, "{at}: field `{field}` must be {expected}")
            }
            ScenarioError::UnknownFamily { at, family } => {
                write!(f, "{at}: unknown generator family `{family}`")
            }
            ScenarioError::InvalidEpsilon { at, num, den } => {
                write!(f, "{at}: eps {num}/{den} is not in (0, 1)")
            }
            ScenarioError::OutOfRange { at, field, message } => {
                write!(f, "{at}: field `{field}` out of range: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Shared parse state: the origin and raw text, for line/column lookup.
struct Loader<'a> {
    origin: &'a str,
    text: &'a str,
}

impl Loader<'_> {
    /// Best-effort context of a dotted field path: the first occurrence of
    /// its last segment as a quoted key.
    fn at(&self, field: &str) -> Context {
        let key = field.rsplit('.').next().unwrap_or(field);
        let quoted = format!("\"{key}\"");
        let byte = self.text.find(&quoted).unwrap_or(0);
        self.at_byte(byte)
    }

    fn at_byte(&self, byte: usize) -> Context {
        let byte = byte.min(self.text.len());
        let before = &self.text[..byte];
        let line = before.matches('\n').count() + 1;
        let col = byte - before.rfind('\n').map_or(0, |i| i + 1) + 1;
        Context {
            origin: self.origin.to_string(),
            line,
            col,
        }
    }

    fn obj<'j>(
        &self,
        json: &'j Json,
        path: &str,
        allowed: &[&str],
        required: &[&str],
    ) -> Result<&'j [(String, Json)], ScenarioError> {
        let Some(pairs) = json.as_object() else {
            return Err(ScenarioError::WrongType {
                at: self.at(path),
                field: path.to_string(),
                expected: "an object",
            });
        };
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(ScenarioError::UnknownField {
                    at: self.at(key),
                    field: join(path, key),
                });
            }
        }
        for key in required {
            if !pairs.iter().any(|(k, _)| k == key) {
                return Err(ScenarioError::MissingField {
                    at: self.at(path),
                    field: join(path, key),
                });
            }
        }
        Ok(pairs)
    }

    fn u64(&self, pairs: &[(String, Json)], path: &str, key: &str) -> Result<u64, ScenarioError> {
        match get(pairs, key) {
            Some(Json::UInt(v)) => Ok(*v),
            _ => Err(ScenarioError::WrongType {
                at: self.at(key),
                field: join(path, key),
                expected: "a non-negative integer",
            }),
        }
    }

    fn usize(
        &self,
        pairs: &[(String, Json)],
        path: &str,
        key: &str,
    ) -> Result<usize, ScenarioError> {
        let raw = self.u64(pairs, path, key)?;
        usize::try_from(raw).map_err(|_| ScenarioError::OutOfRange {
            at: self.at(key),
            field: join(path, key),
            message: format!("{raw} exceeds this platform's usize"),
        })
    }

    fn u32(&self, pairs: &[(String, Json)], path: &str, key: &str) -> Result<u32, ScenarioError> {
        let raw = self.u64(pairs, path, key)?;
        u32::try_from(raw).map_err(|_| ScenarioError::OutOfRange {
            at: self.at(key),
            field: join(path, key),
            message: format!("{raw} exceeds u32"),
        })
    }

    fn permille(
        &self,
        pairs: &[(String, Json)],
        path: &str,
        key: &str,
    ) -> Result<u32, ScenarioError> {
        let v = self.u32(pairs, path, key)?;
        if v > 1000 {
            return Err(ScenarioError::OutOfRange {
                at: self.at(key),
                field: join(path, key),
                message: format!("{v} is a permille probability (at most 1000)"),
            });
        }
        Ok(v)
    }

    fn str<'j>(
        &self,
        pairs: &'j [(String, Json)],
        path: &str,
        key: &str,
    ) -> Result<&'j str, ScenarioError> {
        match get(pairs, key) {
            Some(Json::Str(s)) => Ok(s),
            _ => Err(ScenarioError::WrongType {
                at: self.at(key),
                field: join(path, key),
                expected: "a string",
            }),
        }
    }

    fn out_of_range(&self, path: &str, key: &str, message: String) -> ScenarioError {
        ScenarioError::OutOfRange {
            at: self.at(key),
            field: join(path, key),
            message,
        }
    }
}

fn get<'j>(pairs: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Parses one scenario from JSON text. `origin` labels errors (a file path,
/// or something like `<inline>` for tests).
///
/// # Errors
///
/// Every [`ScenarioError`] variant except `Io`; see the module docs for the
/// validation rules.
pub fn parse_scenario(text: &str, origin: &str) -> Result<ScenarioFile, ScenarioError> {
    let loader = Loader { origin, text };
    let root: Json = serde_json::from_str(text).map_err(|e| {
        let message = e.to_string();
        // The vendored parser reports positions as "… at byte N".
        let byte = message
            .rsplit("at byte ")
            .next()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0);
        ScenarioError::Parse {
            at: loader.at_byte(byte),
            message,
        }
    })?;
    let pairs = loader.obj(
        &root,
        "",
        &[
            "schema",
            "name",
            "generator",
            "n",
            "k",
            "eps",
            "steps",
            "seed",
            "fault",
            "membership",
        ],
        &[
            "schema",
            "name",
            "generator",
            "n",
            "k",
            "eps",
            "steps",
            "seed",
        ],
    )?;
    let schema = match get(pairs, "schema") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };
    if schema.as_deref() != Some(SCENARIO_SCHEMA) {
        return Err(ScenarioError::BadSchema {
            at: loader.at("schema"),
            found: schema,
        });
    }
    let name = loader.str(pairs, "", "name")?.to_string();
    let n = loader.usize(pairs, "", "n")?;
    let k = loader.usize(pairs, "", "k")?;
    let steps = loader.usize(pairs, "", "steps")?;
    let seed = loader.u64(pairs, "", "seed")?;
    if n == 0 {
        return Err(loader.out_of_range("", "n", "at least one node is required".into()));
    }
    if k == 0 || k > n {
        return Err(loader.out_of_range("", "k", format!("k must be in 1..=n (n = {n})")));
    }
    if steps == 0 {
        return Err(loader.out_of_range("", "steps", "at least one step is required".into()));
    }
    let eps = parse_eps(&loader, pairs)?;
    let generator = parse_generator(&loader, pairs, n, k)?;
    let fault = match get(pairs, "fault") {
        None => None,
        Some(json) => Some(parse_fault(&loader, json)?),
    };
    let membership = match get(pairs, "membership") {
        None => None,
        Some(json) => Some(parse_membership(&loader, json, n)?),
    };
    Ok(ScenarioFile {
        name,
        spec: ScenarioSpec {
            generator,
            n,
            k,
            eps,
            steps,
            seed,
        },
        fault,
        membership,
    })
}

fn parse_eps(loader: &Loader<'_>, root: &[(String, Json)]) -> Result<Epsilon, ScenarioError> {
    let json = get(root, "eps").expect("required field was checked");
    let pairs = loader.obj(json, "eps", &["num", "den"], &["num", "den"])?;
    let num = loader.u64(pairs, "eps", "num")?;
    let den = loader.u64(pairs, "eps", "den")?;
    let (num32, den32) = match (u32::try_from(num), u32::try_from(den)) {
        (Ok(n), Ok(d)) => (n, d),
        _ => {
            return Err(ScenarioError::InvalidEpsilon {
                at: loader.at("eps"),
                num,
                den,
            })
        }
    };
    Epsilon::new(num32, den32).map_err(|_| ScenarioError::InvalidEpsilon {
        at: loader.at("eps"),
        num,
        den,
    })
}

/// Per-family parameter tables: `(family, allowed-and-required param keys)`.
const FAMILIES: [(&str, &[&str]); 10] = [
    ("zipf", &["peak_load"]),
    ("noise", &["sigma", "z"]),
    ("random-walk", &["delta", "max_step", "move_permille"]),
    ("gap", &["high_base"]),
    ("adversarial", &["sigma", "y0"]),
    ("regime-switch", &["sigma", "z", "segment_len"]),
    (
        "correlated-burst",
        &["base_load", "factor", "group", "burst_permille"],
    ),
    ("churn", &["z", "churn_permille"]),
    ("zipf-web", &["peak_load", "period"]),
    ("noise-field", &["high", "sigma", "z"]),
];

fn parse_generator(
    loader: &Loader<'_>,
    root: &[(String, Json)],
    n: usize,
    k: usize,
) -> Result<GeneratorSpec, ScenarioError> {
    let json = get(root, "generator").expect("required field was checked");
    // First pass: the family tag decides which params are legal.
    let Some(pairs) = json.as_object() else {
        return Err(ScenarioError::WrongType {
            at: loader.at("generator"),
            field: "generator".to_string(),
            expected: "an object",
        });
    };
    let family = match get(pairs, "family") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => {
            return Err(ScenarioError::WrongType {
                at: loader.at("family"),
                field: "generator.family".to_string(),
                expected: "a string",
            })
        }
        None => {
            return Err(ScenarioError::MissingField {
                at: loader.at("generator"),
                field: "generator.family".to_string(),
            })
        }
    };
    let Some((_, params)) = FAMILIES.iter().find(|(f, _)| *f == family) else {
        return Err(ScenarioError::UnknownFamily {
            at: loader.at("family"),
            family: family.to_string(),
        });
    };
    let mut allowed = vec!["family"];
    allowed.extend_from_slice(params);
    let mut required = vec!["family"];
    required.extend_from_slice(params);
    let pairs = loader.obj(json, "generator", &allowed, &required)?;
    let g = "generator";
    let spec = match family {
        "zipf" => GeneratorSpec::Zipf {
            peak_load: loader.u64(pairs, g, "peak_load")?,
        },
        "noise" => GeneratorSpec::Noise {
            sigma: loader.usize(pairs, g, "sigma")?,
            z: loader.u64(pairs, g, "z")?,
        },
        "random-walk" => GeneratorSpec::RandomWalk {
            delta: loader.u64(pairs, g, "delta")?,
            max_step: loader.u64(pairs, g, "max_step")?,
            move_permille: loader.permille(pairs, g, "move_permille")?,
        },
        "gap" => GeneratorSpec::Gap {
            high_base: loader.u64(pairs, g, "high_base")?,
        },
        "adversarial" => {
            let sigma = loader.usize(pairs, g, "sigma")?;
            if sigma <= k || sigma > n {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    format!("the adversary needs k < sigma <= n (k = {k}, n = {n})"),
                ));
            }
            GeneratorSpec::Adversarial {
                sigma,
                y0: loader.u64(pairs, g, "y0")?,
            }
        }
        "regime-switch" => {
            let segment_len = loader.u64(pairs, g, "segment_len")?;
            if segment_len == 0 {
                return Err(loader.out_of_range(
                    g,
                    "segment_len",
                    "a regime segment needs at least one step".into(),
                ));
            }
            GeneratorSpec::RegimeSwitch {
                sigma: loader.usize(pairs, g, "sigma")?,
                z: loader.u64(pairs, g, "z")?,
                segment_len,
            }
        }
        "correlated-burst" => {
            let group = loader.usize(pairs, g, "group")?;
            if group == 0 || group > n {
                return Err(loader.out_of_range(
                    g,
                    "group",
                    format!("burst groups must have 1..=n nodes (n = {n})"),
                ));
            }
            GeneratorSpec::CorrelatedBurst {
                base_load: loader.u64(pairs, g, "base_load")?,
                factor: loader.u64(pairs, g, "factor")?,
                group,
                burst_permille: loader.permille(pairs, g, "burst_permille")?,
            }
        }
        "churn" => GeneratorSpec::Churn {
            z: loader.u64(pairs, g, "z")?,
            churn_permille: loader.permille(pairs, g, "churn_permille")?,
        },
        "zipf-web" => {
            let period = loader.u64(pairs, g, "period")?;
            if period == 0 {
                return Err(loader.out_of_range(
                    g,
                    "period",
                    "the seasonal cycle needs at least one step".into(),
                ));
            }
            GeneratorSpec::ZipfWeb {
                peak_load: loader.u64(pairs, g, "peak_load")?,
                period,
            }
        }
        "noise-field" => {
            let high = loader.usize(pairs, g, "high")?;
            let sigma = loader.usize(pairs, g, "sigma")?;
            if sigma == 0 {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    "at least one oscillating node is required".into(),
                ));
            }
            if high + sigma > n {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    format!("high + sigma must not exceed n (n = {n})"),
                ));
            }
            GeneratorSpec::NoiseField {
                high,
                sigma,
                z: loader.u64(pairs, g, "z")?,
            }
        }
        _ => unreachable!("family table was checked"),
    };
    // Families that oscillate around a pivot need the pivot the generator
    // itself asserts on — re-checked here so a bad file errors, not panics.
    if let GeneratorSpec::Noise { sigma, z } | GeneratorSpec::NoiseField { sigma, z, .. } = spec {
        if z < 16 {
            return Err(loader.out_of_range(g, "z", "pivot must be at least 16".into()));
        }
        if let GeneratorSpec::Noise { .. } = spec {
            if sigma == 0 {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    "at least one oscillating node is required".into(),
                ));
            }
            if (k / 2).max(1) + sigma > n {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    format!("max(k/2, 1) + sigma must not exceed n (k = {k}, n = {n})"),
                ));
            }
        }
    }
    Ok(spec)
}

fn parse_fault(loader: &Loader<'_>, json: &Json) -> Result<FaultSpec, ScenarioError> {
    let pairs = loader.obj(
        json,
        "fault",
        &[
            "seed",
            "drop_upstream_permille",
            "drop_downstream_permille",
            "reorder_permille",
            "latency",
            "crash",
        ],
        &["seed"],
    )?;
    let f = "fault";
    let mut spec = FaultSpec::none();
    spec.seed = loader.u64(pairs, f, "seed")?;
    if get(pairs, "drop_upstream_permille").is_some() {
        spec.drop_upstream_permille = loader.permille(pairs, f, "drop_upstream_permille")?;
    }
    if get(pairs, "drop_downstream_permille").is_some() {
        spec.drop_downstream_permille = loader.permille(pairs, f, "drop_downstream_permille")?;
    }
    if get(pairs, "reorder_permille").is_some() {
        spec.reorder_permille = loader.permille(pairs, f, "reorder_permille")?;
    }
    if let Some(json) = get(pairs, "latency") {
        spec.latency = parse_latency(loader, json)?;
    }
    if let Some(json) = get(pairs, "crash") {
        let pairs = loader.obj(
            json,
            "fault.crash",
            &["crash_permille", "down_steps", "max_down"],
            &["crash_permille", "down_steps", "max_down"],
        )?;
        let c = "fault.crash";
        let down_steps = loader.u64(pairs, c, "down_steps")?;
        if down_steps == 0 {
            return Err(loader.out_of_range(
                c,
                "down_steps",
                "a crashed node must stay down at least one step".into(),
            ));
        }
        spec.crash = Some(CrashSpec {
            crash_permille: loader.permille(pairs, c, "crash_permille")?,
            down_steps,
            max_down: loader.usize(pairs, c, "max_down")?,
        });
    }
    Ok(spec)
}

fn parse_latency(loader: &Loader<'_>, json: &Json) -> Result<LatencySpec, ScenarioError> {
    let l = "fault.latency";
    let Some(pairs) = json.as_object() else {
        return Err(ScenarioError::WrongType {
            at: loader.at("latency"),
            field: l.to_string(),
            expected: "an object",
        });
    };
    let kind = match get(pairs, "kind") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => {
            return Err(ScenarioError::WrongType {
                at: loader.at("kind"),
                field: join(l, "kind"),
                expected: "a string",
            })
        }
        None => {
            return Err(ScenarioError::MissingField {
                at: loader.at("latency"),
                field: join(l, "kind"),
            })
        }
    };
    match kind {
        "immediate" => {
            loader.obj(json, l, &["kind"], &["kind"])?;
            Ok(LatencySpec::Immediate)
        }
        "fixed" => {
            let pairs = loader.obj(json, l, &["kind", "rounds"], &["kind", "rounds"])?;
            Ok(LatencySpec::Fixed(loader.u32(pairs, l, "rounds")?))
        }
        "uniform" => {
            let pairs = loader.obj(json, l, &["kind", "lo", "hi"], &["kind", "lo", "hi"])?;
            let lo = loader.u32(pairs, l, "lo")?;
            let hi = loader.u32(pairs, l, "hi")?;
            if lo > hi {
                return Err(loader.out_of_range(l, "lo", format!("lo ({lo}) exceeds hi ({hi})")));
            }
            Ok(LatencySpec::Uniform { lo, hi })
        }
        other => Err(ScenarioError::OutOfRange {
            at: loader.at("kind"),
            field: join(l, "kind"),
            message: format!("unknown latency kind `{other}` (immediate, fixed or uniform)"),
        }),
    }
}

fn parse_membership(
    loader: &Loader<'_>,
    json: &Json,
    n: usize,
) -> Result<MembershipPlanSpec, ScenarioError> {
    let pairs = loader.obj(
        json,
        "membership",
        &["seed", "leave_permille", "downtime", "min_live"],
        &["seed", "leave_permille", "downtime", "min_live"],
    )?;
    let m = "membership";
    let downtime = loader.u64(pairs, m, "downtime")?;
    if downtime == 0 {
        return Err(loader.out_of_range(
            m,
            "downtime",
            "a leaver must stay away at least one step".into(),
        ));
    }
    let min_live = loader.usize(pairs, m, "min_live")?;
    if min_live == 0 || min_live > n {
        return Err(loader.out_of_range(
            m,
            "min_live",
            format!("the live floor must be in 1..=n (n = {n})"),
        ));
    }
    Ok(MembershipPlanSpec {
        seed: loader.u64(pairs, m, "seed")?,
        leave_permille: loader.permille(pairs, m, "leave_permille")?,
        downtime,
        min_live,
    })
}

// ---------------------------------------------------------------------------
// Canonical serialisation
// ---------------------------------------------------------------------------

fn uint(v: u64) -> Json {
    Json::UInt(v)
}

fn generator_json(generator: &GeneratorSpec) -> Json {
    let mut pairs = vec![("family".to_string(), Json::Str(generator.family().into()))];
    let mut push = |key: &str, v: u64| pairs.push((key.to_string(), uint(v)));
    match *generator {
        GeneratorSpec::Zipf { peak_load } => push("peak_load", peak_load),
        GeneratorSpec::Noise { sigma, z } => {
            push("sigma", sigma as u64);
            push("z", z);
        }
        GeneratorSpec::RandomWalk {
            delta,
            max_step,
            move_permille,
        } => {
            push("delta", delta);
            push("max_step", max_step);
            push("move_permille", u64::from(move_permille));
        }
        GeneratorSpec::Gap { high_base } => push("high_base", high_base),
        GeneratorSpec::Adversarial { sigma, y0 } => {
            push("sigma", sigma as u64);
            push("y0", y0);
        }
        GeneratorSpec::RegimeSwitch {
            sigma,
            z,
            segment_len,
        } => {
            push("sigma", sigma as u64);
            push("z", z);
            push("segment_len", segment_len);
        }
        GeneratorSpec::CorrelatedBurst {
            base_load,
            factor,
            group,
            burst_permille,
        } => {
            push("base_load", base_load);
            push("factor", factor);
            push("group", group as u64);
            push("burst_permille", u64::from(burst_permille));
        }
        GeneratorSpec::Churn { z, churn_permille } => {
            push("z", z);
            push("churn_permille", u64::from(churn_permille));
        }
        GeneratorSpec::ZipfWeb { peak_load, period } => {
            push("peak_load", peak_load);
            push("period", period);
        }
        GeneratorSpec::NoiseField { high, sigma, z } => {
            push("high", high as u64);
            push("sigma", sigma as u64);
            push("z", z);
        }
    }
    Json::Object(pairs)
}

fn latency_json(latency: &LatencySpec) -> Json {
    let pairs = match *latency {
        LatencySpec::Immediate => vec![("kind".to_string(), Json::Str("immediate".into()))],
        LatencySpec::Fixed(rounds) => vec![
            ("kind".to_string(), Json::Str("fixed".into())),
            ("rounds".to_string(), uint(u64::from(rounds))),
        ],
        LatencySpec::Uniform { lo, hi } => vec![
            ("kind".to_string(), Json::Str("uniform".into())),
            ("lo".to_string(), uint(u64::from(lo))),
            ("hi".to_string(), uint(u64::from(hi))),
        ],
    };
    Json::Object(pairs)
}

fn fault_json(fault: &FaultSpec) -> Json {
    let mut pairs = vec![("seed".to_string(), uint(fault.seed))];
    // Zero-valued axes are omitted: the parser defaults them, and the files
    // stay readable (a latency-only plan shows only its latency).
    if fault.drop_upstream_permille > 0 {
        pairs.push((
            "drop_upstream_permille".to_string(),
            uint(u64::from(fault.drop_upstream_permille)),
        ));
    }
    if fault.drop_downstream_permille > 0 {
        pairs.push((
            "drop_downstream_permille".to_string(),
            uint(u64::from(fault.drop_downstream_permille)),
        ));
    }
    if fault.reorder_permille > 0 {
        pairs.push((
            "reorder_permille".to_string(),
            uint(u64::from(fault.reorder_permille)),
        ));
    }
    // Structural, not semantic, comparison: `Fixed(0)` behaves like
    // `Immediate` but must survive the round trip unchanged.
    if fault.latency != LatencySpec::Immediate {
        pairs.push(("latency".to_string(), latency_json(&fault.latency)));
    }
    if let Some(crash) = fault.crash {
        pairs.push((
            "crash".to_string(),
            Json::Object(vec![
                (
                    "crash_permille".to_string(),
                    uint(u64::from(crash.crash_permille)),
                ),
                ("down_steps".to_string(), uint(crash.down_steps)),
                ("max_down".to_string(), uint(crash.max_down as u64)),
            ]),
        ));
    }
    Json::Object(pairs)
}

/// Serialises a scenario to its canonical JSON text (fixed key order, pretty
/// two-space indentation, trailing newline). `parse_scenario` of the result
/// reproduces `file` exactly.
pub fn scenario_to_json(file: &ScenarioFile) -> String {
    let spec = &file.spec;
    let mut pairs = vec![
        ("schema".to_string(), Json::Str(SCENARIO_SCHEMA.into())),
        ("name".to_string(), Json::Str(file.name.clone())),
        ("generator".to_string(), generator_json(&spec.generator)),
        ("n".to_string(), uint(spec.n as u64)),
        ("k".to_string(), uint(spec.k as u64)),
        (
            "eps".to_string(),
            Json::Object(vec![
                ("num".to_string(), uint(u64::from(spec.eps.numerator()))),
                ("den".to_string(), uint(u64::from(spec.eps.denominator()))),
            ]),
        ),
        ("steps".to_string(), uint(spec.steps as u64)),
        ("seed".to_string(), uint(spec.seed)),
    ];
    if let Some(fault) = &file.fault {
        pairs.push(("fault".to_string(), fault_json(fault)));
    }
    if let Some(plan) = &file.membership {
        pairs.push((
            "membership".to_string(),
            Json::Object(vec![
                ("seed".to_string(), uint(plan.seed)),
                (
                    "leave_permille".to_string(),
                    uint(u64::from(plan.leave_permille)),
                ),
                ("downtime".to_string(), uint(plan.downtime)),
                ("min_live".to_string(), uint(plan.min_live as u64)),
            ]),
        ));
    }
    let mut text =
        serde_json::to_string_pretty(&Json::Object(pairs)).expect("serialisation is infallible");
    text.push('\n');
    text
}

// ---------------------------------------------------------------------------
// File and directory loading
// ---------------------------------------------------------------------------

/// Loads and validates one scenario file.
///
/// # Errors
///
/// [`ScenarioError::Io`] if the file cannot be read, else any parse or
/// validation error from [`parse_scenario`].
pub fn load_scenario(path: &Path) -> Result<ScenarioFile, ScenarioError> {
    let origin = path.display().to_string();
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|source| ScenarioError::Io {
            path: origin.clone(),
            source,
        })?;
    parse_scenario(&text, &origin)
}

/// Loads every `*.json` file of a directory, sorted by file name.
///
/// # Errors
///
/// [`ScenarioError::Io`] if the directory cannot be listed, else the first
/// failing file's error.
pub fn load_scenario_dir(dir: &Path) -> Result<Vec<ScenarioFile>, ScenarioError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|source| ScenarioError::Io {
            path: dir.display().to_string(),
            source,
        })?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_scenario(p)).collect()
}

// ---------------------------------------------------------------------------
// The standard library and its sync check
// ---------------------------------------------------------------------------

fn grid_name(spec: &ScenarioSpec) -> String {
    format!(
        "{}-n{}-k{}-e{}of{}-s{}",
        spec.generator.family(),
        spec.n,
        spec.k,
        spec.eps.numerator(),
        spec.eps.denominator(),
        spec.steps
    )
}

/// The scenario library `scenarios/` must hold: every cell of
/// [`standard_grid`], [`standard_fault_grid`] and [`standard_membership_grid`]
/// (full scale), plus the two example workloads, each under its canonical
/// name. Returned sorted by name.
pub fn standard_library() -> Vec<ScenarioFile> {
    let mut files = Vec::new();
    for spec in standard_grid(false) {
        files.push(ScenarioFile {
            name: grid_name(&spec),
            spec,
            fault: None,
            membership: None,
        });
    }
    for (spec, fault) in standard_fault_grid(false) {
        files.push(ScenarioFile {
            name: format!(
                "fault-{}-{}-s{}",
                spec.generator.family(),
                fault.family(),
                spec.steps
            ),
            spec,
            fault: Some(fault),
            membership: None,
        });
    }
    for (spec, plan) in standard_membership_grid(false) {
        files.push(ScenarioFile {
            name: format!(
                "member-{}-churn{}-s{}",
                spec.generator.family(),
                plan.leave_permille,
                spec.steps
            ),
            spec,
            fault: None,
            membership: Some(plan),
        });
    }
    files.extend(example_scenarios());
    files.sort_by(|a, b| a.name.cmp(&b.name));
    let mut seen = std::collections::BTreeSet::new();
    for file in &files {
        assert!(
            seen.insert(file.name.clone()),
            "library names must be unique: {}",
            file.name
        );
    }
    files
}

/// The two example workloads (`examples/load_balancer.rs`,
/// `examples/sensor_noise.rs`) as library entries — the examples load these
/// instead of hard-coding parameters.
pub fn example_scenarios() -> Vec<ScenarioFile> {
    vec![
        ScenarioFile {
            // `ZipfLoadWorkload::web_cluster(64, 99)`, as scenario data.
            name: "load_balancer".to_string(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::ZipfWeb {
                    peak_load: 100_000,
                    period: 500,
                },
                n: 64,
                k: 8,
                eps: Epsilon::TENTH,
                steps: 600,
                seed: 99,
            },
            fault: None,
            membership: None,
        },
        ScenarioFile {
            name: "sensor_noise".to_string(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::NoiseField {
                    high: 6,
                    sigma: 12,
                    z: 1_000_000,
                },
                n: 40,
                k: 10,
                eps: Epsilon::new(1, 20).expect("1/20 is in (0, 1)"),
                steps: 400,
                seed: 5,
            },
            fault: None,
            membership: None,
        },
    ]
}

/// Writes the standard library into `dir` (creating it), one canonical file
/// per scenario. Returns the file names written.
///
/// # Errors
///
/// Any I/O error, wrapped with the failing path.
pub fn emit_library(dir: &Path) -> Result<Vec<String>, ScenarioError> {
    std::fs::create_dir_all(dir).map_err(|source| ScenarioError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut names = Vec::new();
    for file in standard_library() {
        let file_name = format!("{}.json", file.name);
        let path = dir.join(&file_name);
        std::fs::write(&path, scenario_to_json(&file)).map_err(|source| ScenarioError::Io {
            path: path.display().to_string(),
            source,
        })?;
        names.push(file_name);
    }
    Ok(names)
}

/// Checks that `dir` holds *exactly* the standard library, byte for byte:
/// every expected file present with canonical contents, no stray `*.json`
/// files. Returns the list of discrepancies (empty = in sync).
pub fn check_library_sync(dir: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    let expected: Vec<(String, String)> = standard_library()
        .iter()
        .map(|file| (format!("{}.json", file.name), scenario_to_json(file)))
        .collect();
    for (file_name, contents) in &expected {
        let path = dir.join(file_name);
        match std::fs::read_to_string(&path) {
            Err(e) => problems.push(format!("{}: {e}", path.display())),
            Ok(found) if &found != contents => problems.push(format!(
                "{}: stale (differs from the generated scenario; run `experiments --emit-scenarios {}`)",
                path.display(),
                dir.display()
            )),
            Ok(_) => {}
        }
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json") {
                let file_name = path
                    .file_name()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_default();
                if !expected.iter().any(|(name, _)| *name == file_name) {
                    problems.push(format!(
                        "{}: not part of the standard library (stray file)",
                        path.display()
                    ));
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic derivation of a *valid* scenario from a few integers,
    /// sweeping every generator family and both optional companions.
    fn scenario_from(sel: u8, x: u64, y: u64) -> ScenarioFile {
        let n = 8 + (x % 64) as usize;
        let k = 1 + (y % 4) as usize;
        let eps = Epsilon::new(1 + (x % 8) as u32, 10 + (y % 90) as u32)
            .expect("num in 1..=8 < den in 10..=99");
        let generator = match sel % 10 {
            0 => GeneratorSpec::Zipf {
                peak_load: x % 1_000_000,
            },
            1 => GeneratorSpec::Noise {
                sigma: 1 + (y % (n - (k / 2).max(1)) as u64) as usize,
                z: 16 + x % 1_000_000,
            },
            2 => GeneratorSpec::RandomWalk {
                delta: x % 1_000_000,
                max_step: y % 10_000,
                move_permille: (x % 1001) as u32,
            },
            3 => GeneratorSpec::Gap {
                high_base: x % 1_000_000,
            },
            4 => GeneratorSpec::Adversarial {
                sigma: k + 1 + (x % (n - k) as u64) as usize,
                y0: 16 + y % 1_000_000,
            },
            5 => GeneratorSpec::RegimeSwitch {
                sigma: 1 + (y % (n - (k / 2).max(1)) as u64) as usize,
                z: 16 + x % 1_000_000,
                segment_len: 1 + y % 50,
            },
            6 => GeneratorSpec::CorrelatedBurst {
                base_load: 1 + x % 10_000,
                factor: 2 + y % 10,
                group: 1 + (x % n as u64) as usize,
                burst_permille: (y % 1001) as u32,
            },
            7 => GeneratorSpec::Churn {
                z: 16 + y % 1_000_000,
                churn_permille: (x % 1001) as u32,
            },
            8 => GeneratorSpec::ZipfWeb {
                peak_load: x % 1_000_000,
                period: 1 + y % 600,
            },
            _ => {
                let high = (x % (n as u64 - 1)) as usize;
                GeneratorSpec::NoiseField {
                    high,
                    sigma: 1 + (y % (n - high) as u64) as usize,
                    z: 16 + x % 1_000_000,
                }
            }
        };
        let fault = (sel & 0x10 != 0).then(|| {
            let mut spec = FaultSpec::none();
            spec.seed = x.wrapping_mul(31).wrapping_add(y);
            spec.drop_upstream_permille = (x % 1001) as u32;
            spec.drop_downstream_permille = (y % 1001) as u32;
            spec.reorder_permille = ((x ^ y) % 1001) as u32;
            spec.latency = match y % 3 {
                0 => LatencySpec::Immediate,
                1 => LatencySpec::Fixed((x % 5) as u32),
                _ => LatencySpec::Uniform {
                    lo: (x % 3) as u32,
                    hi: (x % 3 + y % 4) as u32,
                },
            };
            spec.crash = (y % 2 == 0).then_some(CrashSpec {
                crash_permille: (x % 200) as u32,
                down_steps: y % 20 + 1,
                max_down: 1 + (x % 8) as usize,
            });
            spec
        });
        let membership = (sel & 0x20 != 0 && fault.is_none()).then(|| MembershipPlanSpec {
            seed: y.wrapping_mul(37).wrapping_add(x),
            leave_permille: (y % 1001) as u32,
            downtime: 1 + x % 10,
            min_live: 1 + (y % n as u64) as usize,
        });
        ScenarioFile {
            name: format!("prop-{}", x % 1000),
            spec: ScenarioSpec {
                generator,
                n,
                k,
                eps,
                steps: 1 + (x % 300) as usize,
                seed: x ^ y,
            },
            fault,
            membership,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary valid scenario → serialize → parse == original, and the
        /// canonical text is a fixed point of the round trip.
        #[test]
        fn arbitrary_scenarios_round_trip(
            sel in 0u8..255,
            x in 0u64..u64::MAX,
            y in 0u64..u64::MAX,
        ) {
            let file = scenario_from(sel, x, y);
            let text = scenario_to_json(&file);
            let back = parse_scenario(&text, "<prop>").expect("canonical text must parse");
            prop_assert_eq!(&back, &file);
            prop_assert_eq!(scenario_to_json(&back), text);
        }
    }

    #[test]
    fn canonical_files_round_trip_exactly() {
        for file in standard_library() {
            let text = scenario_to_json(&file);
            let back = parse_scenario(&text, "<inline>").expect("canonical file must parse");
            assert_eq!(back, file, "parse(serialize) must be the identity");
            assert_eq!(
                scenario_to_json(&back),
                text,
                "serialize(parse) must reproduce the canonical bytes"
            );
        }
    }

    #[test]
    fn the_library_contains_the_standard_grids_exactly() {
        let library = standard_library();
        let specs: Vec<ScenarioSpec> = library
            .iter()
            .filter(|f| f.fault.is_none() && f.membership.is_none())
            .filter(|f| !f.name.starts_with("load_balancer") && !f.name.starts_with("sensor_noise"))
            .map(|f| f.spec)
            .collect();
        let grid = standard_grid(false);
        assert_eq!(specs.len(), grid.len());
        for spec in &grid {
            assert!(
                specs.contains(spec),
                "grid cell missing from library: {spec:?}"
            );
        }
        let faults: Vec<(ScenarioSpec, FaultSpec)> = library
            .iter()
            .filter_map(|f| f.fault.map(|fault| (f.spec, fault)))
            .collect();
        for cell in standard_fault_grid(false) {
            assert!(faults.contains(&cell), "fault cell missing: {cell:?}");
        }
        let plans: Vec<(ScenarioSpec, MembershipPlanSpec)> = library
            .iter()
            .filter_map(|f| f.membership.map(|plan| (f.spec, plan)))
            .collect();
        for cell in standard_membership_grid(false) {
            assert!(plans.contains(&cell), "membership cell missing: {cell:?}");
        }
    }

    #[test]
    fn unknown_fields_are_rejected_with_context() {
        let mut text = scenario_to_json(&example_scenarios()[0]);
        text = text.replace("\"seed\": 99", "\"seed\": 99,\n  \"sede\": 7");
        match parse_scenario(&text, "bad.json") {
            Err(ScenarioError::UnknownField { at, field }) => {
                assert_eq!(field, "sede");
                assert_eq!(at.origin, "bad.json");
                assert!(at.line > 1, "line context must point into the file");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn unknown_generator_params_are_rejected() {
        let text = scenario_to_json(&example_scenarios()[0])
            .replace("\"period\": 500", "\"period\": 500,\n    \"skew\": 2");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::UnknownField { field, .. }) if field == "generator.skew"
        ));
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        let text = scenario_to_json(&example_scenarios()[0]).replace("  \"steps\": 600,\n", "");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::MissingField { field, .. }) if field == "steps"
        ));
    }

    #[test]
    fn unknown_families_are_rejected() {
        let text =
            scenario_to_json(&example_scenarios()[0]).replace("\"zipf-web\"", "\"zipf-galaxy\"");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::UnknownFamily { family, .. }) if family == "zipf-galaxy"
        ));
    }

    #[test]
    fn out_of_unit_interval_epsilons_are_rejected() {
        for (num, den) in [(0u64, 10u64), (10, 10), (11, 10), (1, 0)] {
            let text = scenario_to_json(&example_scenarios()[0]).replace(
                "\"num\": 1,\n    \"den\": 10",
                &format!("\"num\": {num},\n    \"den\": {den}"),
            );
            match parse_scenario(&text, "<inline>") {
                Err(ScenarioError::InvalidEpsilon { num: n, den: d, .. }) => {
                    assert_eq!((n, d), (num, den));
                }
                other => panic!("eps {num}/{den}: expected InvalidEpsilon, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_types_and_trailing_garbage_are_rejected() {
        let canonical = scenario_to_json(&example_scenarios()[0]);
        let text = canonical.replace("\"n\": 64", "\"n\": \"lots\"");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::WrongType { field, .. }) if field == "n"
        ));
        let text = canonical.replace("\"n\": 64", "\"n\": -3");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::WrongType { field, .. }) if field == "n"
        ));
        let mut text = canonical.clone();
        text.push_str("garbage");
        match parse_scenario(&text, "<inline>") {
            Err(ScenarioError::Parse { message, .. }) => {
                assert!(message.contains("trailing"), "{message}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let text = "{\n  \"schema\": \"topk-scenario/v1\",\n  \"name\": oops\n}";
        match parse_scenario(text, "broken.json") {
            Err(ScenarioError::Parse { at, .. }) => {
                assert_eq!(at.origin, "broken.json");
                assert_eq!(at.line, 3, "the bad token sits on line 3");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn schema_skew_is_a_typed_error() {
        let text =
            scenario_to_json(&example_scenarios()[0]).replace(SCENARIO_SCHEMA, "topk-scenario/v9");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::BadSchema { found: Some(tag), .. }) if tag == "topk-scenario/v9"
        ));
    }

    #[test]
    fn out_of_range_bounds_error_instead_of_panicking() {
        let canonical = scenario_to_json(&example_scenarios()[0]);
        // k > n
        let text = canonical.replace("\"k\": 8", "\"k\": 65");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "k"
        ));
        // a permille probability over 1000
        let churn = scenario_to_json(&ScenarioFile {
            name: "x".into(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::Churn {
                    z: 1 << 18,
                    churn_permille: 80,
                },
                n: 24,
                k: 4,
                eps: Epsilon::TENTH,
                steps: 10,
                seed: 1,
            },
            fault: None,
            membership: None,
        });
        let text = churn.replace("\"churn_permille\": 80", "\"churn_permille\": 1001");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "generator.churn_permille"
        ));
    }

    #[test]
    fn emit_and_sync_check_agree() {
        let dir = std::env::temp_dir().join(format!("topk-scenarios-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        emit_library(&dir).expect("emit must succeed");
        assert_eq!(check_library_sync(&dir), Vec::<String>::new());
        // Tamper with one byte: the check must name the stale file.
        let tampered = dir.join("load_balancer.json");
        let mut text = std::fs::read_to_string(&tampered).unwrap();
        text = text.replace("\"seed\": 99", "\"seed\": 98");
        std::fs::write(&tampered, text).unwrap();
        let problems = check_library_sync(&dir);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("load_balancer.json"), "{problems:?}");
        // A stray file is flagged too.
        emit_library(&dir).unwrap();
        std::fs::write(dir.join("extra.json"), "{}").unwrap();
        let problems = check_library_sync(&dir);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("stray"), "{problems:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_scenarios_build_their_workloads() {
        // Every library entry must instantiate its generator (and companions)
        // without panicking — the loader's bounds are sufficient.
        for file in standard_library() {
            let spec = &file.spec;
            let _ = spec
                .generator
                .build(spec.n, spec.k, spec.eps, spec.seed)
                .as_ref();
            if let Some(plan) = &file.membership {
                let _ = plan.build(spec.n, spec.steps as u64);
            }
            if let Some(fault) = &file.fault {
                fault.validate();
            }
        }
    }
}
