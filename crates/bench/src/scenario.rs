//! Declarative scenario files: the on-disk form of [`ScenarioSpec`].
//!
//! A scenario file is one campaign cell as JSON — the workload generator and
//! its regime parameters, the population size, `k`, ε, horizon and seed, plus
//! an optional fault plan and an optional membership churn plan. The committed
//! library under `scenarios/` is the single human-editable source of the
//! experiment grid: `standard_library` derives the exact same cells the
//! compiled-in [`standard_grid`] (and its fault/membership companions) runs,
//! and [`check_library_sync`] holds the directory byte-for-byte to that
//! derivation, so a stale or hand-drifted file fails CI instead of silently
//! measuring something else.
//!
//! ## Schema (`topk-scenario/v1`, normative copy in `docs/SCENARIOS.md`)
//!
//! ```json
//! {
//!   "schema": "topk-scenario/v1",
//!   "name": "zipf-n64-k4-e1of10-s240",
//!   "generator": { "family": "zipf", "peak_load": 100000 },
//!   "n": 64,
//!   "k": 4,
//!   "eps": { "num": 1, "den": 10 },
//!   "steps": 240,
//!   "seed": 51772,
//!   "fault": { … optional … },
//!   "membership": { … optional … }
//! }
//! ```
//!
//! ## Schema `topk-scenario/v2`
//!
//! v2 is v1 plus two optional root fields; a v2 loader reads both tags, and
//! the canonical serialiser emits the `v2` tag *only* when one of the new
//! fields is present, so every v1 file stays byte-stable:
//!
//! * `"queries"` — a multi-query plan: a non-empty array of query specs
//!   (`{"k": …, "eps": {…}, "protocol": "…", "subset": [ids…]}`, `subset`
//!   omitted for a full-population query). A scenario with `queries` is run
//!   as one shared-engine multi-query cell instead of the per-protocol loop,
//!   and takes no `fault`/`membership` companion.
//! * `"floors"` — per-scenario floor/ceiling overrides
//!   ([`FloorOverride`]): integer knobs that replace the corresponding bars
//!   of [`FloorTable::STANDARD`](crate::FloorTable) when *this* scenario is
//!   checked in the scenario-run mode (`--scenario` / `--scenario-dir`).
//!   Committed override files are validated like everything else by
//!   `--check-scenarios`.
//!
//! Validation is strict and typed: unknown fields anywhere, a missing
//! required field, a wrong JSON type, an unknown generator family,
//! `ε ∉ (0, 1)` or an out-of-range parameter each produce the corresponding
//! [`ScenarioError`] variant, carrying the file and (best-effort) line/column
//! where the offending key sits. Nothing in this module panics on bad input —
//! the loaders re-check every bound the underlying constructors would
//! otherwise `assert!` on.
//!
//! Serialisation is canonical: [`scenario_to_json`] emits keys in a fixed
//! order with fixed formatting, so `parse → serialize` is the identity on
//! library files and the sync check can compare bytes.

use crate::campaign::{
    standard_fault_grid, standard_grid, standard_membership_grid, standard_multiquery_grid,
    GeneratorSpec, MembershipPlanSpec, ProtocolKind, ScenarioSpec,
};
use crate::floors::{CompetitiveFloors, FloorTable};
use serde::Json;
use std::fmt;
use std::io::Read;
use std::path::Path;
use topk_model::prelude::*;

/// The v1 schema tag (single-query scenarios; emitted whenever no v2 field is
/// present, so pre-existing files stay byte-stable).
pub const SCENARIO_SCHEMA: &str = "topk-scenario/v1";

/// The v2 schema tag (adds the optional `queries` and `floors` root fields).
pub const SCENARIO_SCHEMA_V2: &str = "topk-scenario/v2";

/// Per-scenario overrides of the campaign floor table (`"floors"`, v2).
///
/// Every knob is an integer (the schema has no floats); an absent knob keeps
/// the corresponding bar of [`FloorTable::STANDARD`]. Overrides take effect
/// in the scenario-run mode only — the compiled-in campaign grids always run
/// under the standard table, so a committed `BENCH_*.json` is never gated by
/// a JSON-editable knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FloorOverride {
    /// Replaces [`CompetitiveFloors::ceiling_headroom_permille`] (≤ 1000).
    pub ceiling_headroom_permille: Option<u64>,
    /// Replaces [`CompetitiveFloors::ceiling_slack_permille`] (≤ 1000).
    pub ceiling_slack_permille: Option<u64>,
    /// Replaces [`CompetitiveFloors::max_poll_factor`], stated in permille
    /// (500 = the scenario's protocols must stay under 0.5 × naive polling;
    /// 1..=10000). The fault/membership poll bars are raised to at least this
    /// value so a loosened override cannot make them incoherent.
    pub poll_factor_permille: Option<u64>,
    /// Replaces the invalid-step bars of the fault, membership and
    /// multi-query companions, in permille of a cell's steps (≤ 1000). The
    /// fault-free bar stays hard zero — no override can excuse an invalid
    /// output on a clean run.
    pub invalid_fraction_permille: Option<u64>,
}

impl FloorOverride {
    /// The floor table in force for a scenario carrying this override.
    pub fn apply(&self, mut base: CompetitiveFloors) -> CompetitiveFloors {
        if let Some(v) = self.ceiling_headroom_permille {
            base.ceiling_headroom_permille = v;
        }
        if let Some(v) = self.ceiling_slack_permille {
            base.ceiling_slack_permille = v;
        }
        if let Some(v) = self.poll_factor_permille {
            base.max_poll_factor = v as f64 / 1000.0;
            base.fault_poll_factor = base.fault_poll_factor.max(base.max_poll_factor);
            base.membership_poll_factor = base.membership_poll_factor.max(base.max_poll_factor);
        }
        if let Some(v) = self.invalid_fraction_permille {
            base.fault_invalid_fraction_permille = v;
            base.membership_invalid_fraction_permille = v;
            base.multiquery_invalid_fraction_permille = v;
        }
        base
    }
}

/// A parsed scenario file: one grid cell plus its optional fault/membership
/// companions and (v2) its optional multi-query plan and floor overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// The scenario's name (also its file stem in a library directory).
    pub name: String,
    /// The cell itself.
    pub spec: ScenarioSpec,
    /// Fault plan to run the cell under, if any.
    pub fault: Option<FaultSpec>,
    /// Membership churn plan to run the cell under, if any.
    pub membership: Option<MembershipPlanSpec>,
    /// Multi-query plan (v2): when present the scenario runs as one
    /// shared-engine multi-query cell, and `fault`/`membership` are absent.
    pub queries: Option<Vec<QuerySpec>>,
    /// Per-scenario floor overrides (v2), applied by the scenario-run mode.
    pub floors: Option<FloorOverride>,
}

impl ScenarioFile {
    /// The floor table this scenario is checked against: the standard table
    /// with this file's overrides (if any) applied.
    pub fn effective_floors(&self) -> CompetitiveFloors {
        let base = FloorTable::STANDARD.competitive;
        match &self.floors {
            Some(o) => o.apply(base),
            None => base,
        }
    }
}

/// Where in a file an error was found. Lines and columns are 1-based; for
/// field-level errors they point at the first occurrence of the offending
/// key (best effort — the value tree carries no spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// File path (or a synthetic origin like `<inline>`).
    pub origin: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.origin, self.line, self.col)
    }
}

/// Typed validation errors of the scenario loader.
#[derive(Debug)]
pub enum ScenarioError {
    /// The file could not be read.
    Io {
        /// Path that failed.
        path: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The text is not well-formed JSON.
    Parse {
        /// Where parsing stopped.
        at: Context,
        /// The parser's message.
        message: String,
    },
    /// The `schema` tag is missing or not a version this loader reads.
    BadSchema {
        /// Where the tag sits (or the file start if absent).
        at: Context,
        /// The tag found, if any.
        found: Option<String>,
    },
    /// An object carries a field the schema does not define.
    UnknownField {
        /// Where the field sits.
        at: Context,
        /// Dotted path of the field (e.g. `generator.peak_load`).
        field: String,
    },
    /// A required field is absent.
    MissingField {
        /// Where the enclosing object sits.
        at: Context,
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field holds a value of the wrong JSON type.
    WrongType {
        /// Where the field sits.
        at: Context,
        /// Dotted path of the field.
        field: String,
        /// What the schema expects there.
        expected: &'static str,
    },
    /// The generator `family` is not one this build knows.
    UnknownFamily {
        /// Where the family tag sits.
        at: Context,
        /// The unknown family name.
        family: String,
    },
    /// `eps` does not describe an error in `(0, 1)`.
    InvalidEpsilon {
        /// Where the `eps` object sits.
        at: Context,
        /// Offending numerator.
        num: u64,
        /// Offending denominator.
        den: u64,
    },
    /// A value parses but violates a documented bound.
    OutOfRange {
        /// Where the field sits.
        at: Context,
        /// Dotted path of the field.
        field: String,
        /// The violated bound, in words.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Io { path, source } => write!(f, "{path}: {source}"),
            ScenarioError::Parse { at, message } => write!(f, "{at}: {message}"),
            ScenarioError::BadSchema { at, found } => match found {
                Some(tag) => write!(
                    f,
                    "{at}: unsupported schema `{tag}` (expected `{SCENARIO_SCHEMA}` or `{SCENARIO_SCHEMA_V2}`)"
                ),
                None => write!(
                    f,
                    "{at}: missing `schema` tag (expected `{SCENARIO_SCHEMA}` or `{SCENARIO_SCHEMA_V2}`)"
                ),
            },
            ScenarioError::UnknownField { at, field } => {
                write!(f, "{at}: unknown field `{field}`")
            }
            ScenarioError::MissingField { at, field } => {
                write!(f, "{at}: missing required field `{field}`")
            }
            ScenarioError::WrongType {
                at,
                field,
                expected,
            } => {
                write!(f, "{at}: field `{field}` must be {expected}")
            }
            ScenarioError::UnknownFamily { at, family } => {
                write!(f, "{at}: unknown generator family `{family}`")
            }
            ScenarioError::InvalidEpsilon { at, num, den } => {
                write!(f, "{at}: eps {num}/{den} is not in (0, 1)")
            }
            ScenarioError::OutOfRange { at, field, message } => {
                write!(f, "{at}: field `{field}` out of range: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Shared parse state: the origin and raw text, for line/column lookup.
struct Loader<'a> {
    origin: &'a str,
    text: &'a str,
}

impl Loader<'_> {
    /// Best-effort context of a dotted field path: the first occurrence of
    /// its last segment as a quoted key.
    fn at(&self, field: &str) -> Context {
        let key = field.rsplit('.').next().unwrap_or(field);
        let quoted = format!("\"{key}\"");
        let byte = self.text.find(&quoted).unwrap_or(0);
        self.at_byte(byte)
    }

    fn at_byte(&self, byte: usize) -> Context {
        let byte = byte.min(self.text.len());
        let before = &self.text[..byte];
        let line = before.matches('\n').count() + 1;
        let col = byte - before.rfind('\n').map_or(0, |i| i + 1) + 1;
        Context {
            origin: self.origin.to_string(),
            line,
            col,
        }
    }

    fn obj<'j>(
        &self,
        json: &'j Json,
        path: &str,
        allowed: &[&str],
        required: &[&str],
    ) -> Result<&'j [(String, Json)], ScenarioError> {
        let Some(pairs) = json.as_object() else {
            return Err(ScenarioError::WrongType {
                at: self.at(path),
                field: path.to_string(),
                expected: "an object",
            });
        };
        for (key, _) in pairs {
            if !allowed.contains(&key.as_str()) {
                return Err(ScenarioError::UnknownField {
                    at: self.at(key),
                    field: join(path, key),
                });
            }
        }
        for key in required {
            if !pairs.iter().any(|(k, _)| k == key) {
                return Err(ScenarioError::MissingField {
                    at: self.at(path),
                    field: join(path, key),
                });
            }
        }
        Ok(pairs)
    }

    fn u64(&self, pairs: &[(String, Json)], path: &str, key: &str) -> Result<u64, ScenarioError> {
        match get(pairs, key) {
            Some(Json::UInt(v)) => Ok(*v),
            _ => Err(ScenarioError::WrongType {
                at: self.at(key),
                field: join(path, key),
                expected: "a non-negative integer",
            }),
        }
    }

    fn usize(
        &self,
        pairs: &[(String, Json)],
        path: &str,
        key: &str,
    ) -> Result<usize, ScenarioError> {
        let raw = self.u64(pairs, path, key)?;
        usize::try_from(raw).map_err(|_| ScenarioError::OutOfRange {
            at: self.at(key),
            field: join(path, key),
            message: format!("{raw} exceeds this platform's usize"),
        })
    }

    fn u32(&self, pairs: &[(String, Json)], path: &str, key: &str) -> Result<u32, ScenarioError> {
        let raw = self.u64(pairs, path, key)?;
        u32::try_from(raw).map_err(|_| ScenarioError::OutOfRange {
            at: self.at(key),
            field: join(path, key),
            message: format!("{raw} exceeds u32"),
        })
    }

    fn permille(
        &self,
        pairs: &[(String, Json)],
        path: &str,
        key: &str,
    ) -> Result<u32, ScenarioError> {
        let v = self.u32(pairs, path, key)?;
        if v > 1000 {
            return Err(ScenarioError::OutOfRange {
                at: self.at(key),
                field: join(path, key),
                message: format!("{v} is a permille probability (at most 1000)"),
            });
        }
        Ok(v)
    }

    fn str<'j>(
        &self,
        pairs: &'j [(String, Json)],
        path: &str,
        key: &str,
    ) -> Result<&'j str, ScenarioError> {
        match get(pairs, key) {
            Some(Json::Str(s)) => Ok(s),
            _ => Err(ScenarioError::WrongType {
                at: self.at(key),
                field: join(path, key),
                expected: "a string",
            }),
        }
    }

    fn out_of_range(&self, path: &str, key: &str, message: String) -> ScenarioError {
        ScenarioError::OutOfRange {
            at: self.at(key),
            field: join(path, key),
            message,
        }
    }
}

fn get<'j>(pairs: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Parses one scenario from JSON text. `origin` labels errors (a file path,
/// or something like `<inline>` for tests).
///
/// # Errors
///
/// Every [`ScenarioError`] variant except `Io`; see the module docs for the
/// validation rules.
pub fn parse_scenario(text: &str, origin: &str) -> Result<ScenarioFile, ScenarioError> {
    let loader = Loader { origin, text };
    let root: Json = serde_json::from_str(text).map_err(|e| {
        let message = e.to_string();
        // The vendored parser reports positions as "… at byte N".
        let byte = message
            .rsplit("at byte ")
            .next()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(0);
        ScenarioError::Parse {
            at: loader.at_byte(byte),
            message,
        }
    })?;
    // The schema tag decides which root fields are legal, so it is read
    // before the strict field check.
    let schema = root
        .as_object()
        .and_then(|pairs| match get(pairs, "schema") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        });
    let v2 = match schema.as_deref() {
        Some(tag) if tag == SCENARIO_SCHEMA => false,
        Some(tag) if tag == SCENARIO_SCHEMA_V2 => true,
        _ => {
            return Err(ScenarioError::BadSchema {
                at: loader.at("schema"),
                found: schema,
            })
        }
    };
    let mut allowed = vec![
        "schema",
        "name",
        "generator",
        "n",
        "k",
        "eps",
        "steps",
        "seed",
        "fault",
        "membership",
    ];
    if v2 {
        allowed.extend(["queries", "floors"]);
    }
    let pairs = loader.obj(
        &root,
        "",
        &allowed,
        &[
            "schema",
            "name",
            "generator",
            "n",
            "k",
            "eps",
            "steps",
            "seed",
        ],
    )?;
    let name = loader.str(pairs, "", "name")?.to_string();
    let n = loader.usize(pairs, "", "n")?;
    let k = loader.usize(pairs, "", "k")?;
    let steps = loader.usize(pairs, "", "steps")?;
    let seed = loader.u64(pairs, "", "seed")?;
    if n == 0 {
        return Err(loader.out_of_range("", "n", "at least one node is required".into()));
    }
    if k == 0 || k > n {
        return Err(loader.out_of_range("", "k", format!("k must be in 1..=n (n = {n})")));
    }
    if steps == 0 {
        return Err(loader.out_of_range("", "steps", "at least one step is required".into()));
    }
    let eps = parse_eps(&loader, pairs)?;
    let generator = parse_generator(&loader, pairs, n, k)?;
    let fault = match get(pairs, "fault") {
        None => None,
        Some(json) => Some(parse_fault(&loader, json)?),
    };
    let membership = match get(pairs, "membership") {
        None => None,
        Some(json) => Some(parse_membership(&loader, json, n)?),
    };
    let queries = match get(pairs, "queries") {
        None => None,
        Some(json) => Some(parse_queries(&loader, json, n)?),
    };
    if queries.is_some() && (fault.is_some() || membership.is_some()) {
        return Err(loader.out_of_range(
            "",
            "queries",
            "a multi-query scenario takes no fault/membership companion".into(),
        ));
    }
    let floors = match get(pairs, "floors") {
        None => None,
        Some(json) => Some(parse_floors(&loader, json)?),
    };
    Ok(ScenarioFile {
        name,
        spec: ScenarioSpec {
            generator,
            n,
            k,
            eps,
            steps,
            seed,
        },
        fault,
        membership,
        queries,
        floors,
    })
}

fn parse_eps(loader: &Loader<'_>, root: &[(String, Json)]) -> Result<Epsilon, ScenarioError> {
    let json = get(root, "eps").expect("required field was checked");
    parse_eps_obj(loader, json, "eps")
}

fn parse_eps_obj(loader: &Loader<'_>, json: &Json, path: &str) -> Result<Epsilon, ScenarioError> {
    let pairs = loader.obj(json, path, &["num", "den"], &["num", "den"])?;
    let num = loader.u64(pairs, path, "num")?;
    let den = loader.u64(pairs, path, "den")?;
    let (num32, den32) = match (u32::try_from(num), u32::try_from(den)) {
        (Ok(n), Ok(d)) => (n, d),
        _ => {
            return Err(ScenarioError::InvalidEpsilon {
                at: loader.at(path),
                num,
                den,
            })
        }
    };
    Epsilon::new(num32, den32).map_err(|_| ScenarioError::InvalidEpsilon {
        at: loader.at(path),
        num,
        den,
    })
}

/// Per-family parameter tables: `(family, allowed-and-required param keys)`.
const FAMILIES: [(&str, &[&str]); 10] = [
    ("zipf", &["peak_load"]),
    ("noise", &["sigma", "z"]),
    ("random-walk", &["delta", "max_step", "move_permille"]),
    ("gap", &["high_base"]),
    ("adversarial", &["sigma", "y0"]),
    ("regime-switch", &["sigma", "z", "segment_len"]),
    (
        "correlated-burst",
        &["base_load", "factor", "group", "burst_permille"],
    ),
    ("churn", &["z", "churn_permille"]),
    ("zipf-web", &["peak_load", "period"]),
    ("noise-field", &["high", "sigma", "z"]),
];

fn parse_generator(
    loader: &Loader<'_>,
    root: &[(String, Json)],
    n: usize,
    k: usize,
) -> Result<GeneratorSpec, ScenarioError> {
    let json = get(root, "generator").expect("required field was checked");
    // First pass: the family tag decides which params are legal.
    let Some(pairs) = json.as_object() else {
        return Err(ScenarioError::WrongType {
            at: loader.at("generator"),
            field: "generator".to_string(),
            expected: "an object",
        });
    };
    let family = match get(pairs, "family") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => {
            return Err(ScenarioError::WrongType {
                at: loader.at("family"),
                field: "generator.family".to_string(),
                expected: "a string",
            })
        }
        None => {
            return Err(ScenarioError::MissingField {
                at: loader.at("generator"),
                field: "generator.family".to_string(),
            })
        }
    };
    let Some((_, params)) = FAMILIES.iter().find(|(f, _)| *f == family) else {
        return Err(ScenarioError::UnknownFamily {
            at: loader.at("family"),
            family: family.to_string(),
        });
    };
    let mut allowed = vec!["family"];
    allowed.extend_from_slice(params);
    let mut required = vec!["family"];
    required.extend_from_slice(params);
    let pairs = loader.obj(json, "generator", &allowed, &required)?;
    let g = "generator";
    let spec = match family {
        "zipf" => GeneratorSpec::Zipf {
            peak_load: loader.u64(pairs, g, "peak_load")?,
        },
        "noise" => GeneratorSpec::Noise {
            sigma: loader.usize(pairs, g, "sigma")?,
            z: loader.u64(pairs, g, "z")?,
        },
        "random-walk" => GeneratorSpec::RandomWalk {
            delta: loader.u64(pairs, g, "delta")?,
            max_step: loader.u64(pairs, g, "max_step")?,
            move_permille: loader.permille(pairs, g, "move_permille")?,
        },
        "gap" => GeneratorSpec::Gap {
            high_base: loader.u64(pairs, g, "high_base")?,
        },
        "adversarial" => {
            let sigma = loader.usize(pairs, g, "sigma")?;
            if sigma <= k || sigma > n {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    format!("the adversary needs k < sigma <= n (k = {k}, n = {n})"),
                ));
            }
            GeneratorSpec::Adversarial {
                sigma,
                y0: loader.u64(pairs, g, "y0")?,
            }
        }
        "regime-switch" => {
            let segment_len = loader.u64(pairs, g, "segment_len")?;
            if segment_len == 0 {
                return Err(loader.out_of_range(
                    g,
                    "segment_len",
                    "a regime segment needs at least one step".into(),
                ));
            }
            GeneratorSpec::RegimeSwitch {
                sigma: loader.usize(pairs, g, "sigma")?,
                z: loader.u64(pairs, g, "z")?,
                segment_len,
            }
        }
        "correlated-burst" => {
            let group = loader.usize(pairs, g, "group")?;
            if group == 0 || group > n {
                return Err(loader.out_of_range(
                    g,
                    "group",
                    format!("burst groups must have 1..=n nodes (n = {n})"),
                ));
            }
            GeneratorSpec::CorrelatedBurst {
                base_load: loader.u64(pairs, g, "base_load")?,
                factor: loader.u64(pairs, g, "factor")?,
                group,
                burst_permille: loader.permille(pairs, g, "burst_permille")?,
            }
        }
        "churn" => GeneratorSpec::Churn {
            z: loader.u64(pairs, g, "z")?,
            churn_permille: loader.permille(pairs, g, "churn_permille")?,
        },
        "zipf-web" => {
            let period = loader.u64(pairs, g, "period")?;
            if period == 0 {
                return Err(loader.out_of_range(
                    g,
                    "period",
                    "the seasonal cycle needs at least one step".into(),
                ));
            }
            GeneratorSpec::ZipfWeb {
                peak_load: loader.u64(pairs, g, "peak_load")?,
                period,
            }
        }
        "noise-field" => {
            let high = loader.usize(pairs, g, "high")?;
            let sigma = loader.usize(pairs, g, "sigma")?;
            if sigma == 0 {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    "at least one oscillating node is required".into(),
                ));
            }
            if high + sigma > n {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    format!("high + sigma must not exceed n (n = {n})"),
                ));
            }
            GeneratorSpec::NoiseField {
                high,
                sigma,
                z: loader.u64(pairs, g, "z")?,
            }
        }
        _ => unreachable!("family table was checked"),
    };
    // Families that oscillate around a pivot need the pivot the generator
    // itself asserts on — re-checked here so a bad file errors, not panics.
    if let GeneratorSpec::Noise { sigma, z } | GeneratorSpec::NoiseField { sigma, z, .. } = spec {
        if z < 16 {
            return Err(loader.out_of_range(g, "z", "pivot must be at least 16".into()));
        }
        if let GeneratorSpec::Noise { .. } = spec {
            if sigma == 0 {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    "at least one oscillating node is required".into(),
                ));
            }
            if (k / 2).max(1) + sigma > n {
                return Err(loader.out_of_range(
                    g,
                    "sigma",
                    format!("max(k/2, 1) + sigma must not exceed n (k = {k}, n = {n})"),
                ));
            }
        }
    }
    Ok(spec)
}

fn parse_fault(loader: &Loader<'_>, json: &Json) -> Result<FaultSpec, ScenarioError> {
    let pairs = loader.obj(
        json,
        "fault",
        &[
            "seed",
            "drop_upstream_permille",
            "drop_downstream_permille",
            "reorder_permille",
            "latency",
            "crash",
        ],
        &["seed"],
    )?;
    let f = "fault";
    let mut spec = FaultSpec::none();
    spec.seed = loader.u64(pairs, f, "seed")?;
    if get(pairs, "drop_upstream_permille").is_some() {
        spec.drop_upstream_permille = loader.permille(pairs, f, "drop_upstream_permille")?;
    }
    if get(pairs, "drop_downstream_permille").is_some() {
        spec.drop_downstream_permille = loader.permille(pairs, f, "drop_downstream_permille")?;
    }
    if get(pairs, "reorder_permille").is_some() {
        spec.reorder_permille = loader.permille(pairs, f, "reorder_permille")?;
    }
    if let Some(json) = get(pairs, "latency") {
        spec.latency = parse_latency(loader, json)?;
    }
    if let Some(json) = get(pairs, "crash") {
        let pairs = loader.obj(
            json,
            "fault.crash",
            &["crash_permille", "down_steps", "max_down"],
            &["crash_permille", "down_steps", "max_down"],
        )?;
        let c = "fault.crash";
        let down_steps = loader.u64(pairs, c, "down_steps")?;
        if down_steps == 0 {
            return Err(loader.out_of_range(
                c,
                "down_steps",
                "a crashed node must stay down at least one step".into(),
            ));
        }
        spec.crash = Some(CrashSpec {
            crash_permille: loader.permille(pairs, c, "crash_permille")?,
            down_steps,
            max_down: loader.usize(pairs, c, "max_down")?,
        });
    }
    Ok(spec)
}

fn parse_latency(loader: &Loader<'_>, json: &Json) -> Result<LatencySpec, ScenarioError> {
    let l = "fault.latency";
    let Some(pairs) = json.as_object() else {
        return Err(ScenarioError::WrongType {
            at: loader.at("latency"),
            field: l.to_string(),
            expected: "an object",
        });
    };
    let kind = match get(pairs, "kind") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => {
            return Err(ScenarioError::WrongType {
                at: loader.at("kind"),
                field: join(l, "kind"),
                expected: "a string",
            })
        }
        None => {
            return Err(ScenarioError::MissingField {
                at: loader.at("latency"),
                field: join(l, "kind"),
            })
        }
    };
    match kind {
        "immediate" => {
            loader.obj(json, l, &["kind"], &["kind"])?;
            Ok(LatencySpec::Immediate)
        }
        "fixed" => {
            let pairs = loader.obj(json, l, &["kind", "rounds"], &["kind", "rounds"])?;
            Ok(LatencySpec::Fixed(loader.u32(pairs, l, "rounds")?))
        }
        "uniform" => {
            let pairs = loader.obj(json, l, &["kind", "lo", "hi"], &["kind", "lo", "hi"])?;
            let lo = loader.u32(pairs, l, "lo")?;
            let hi = loader.u32(pairs, l, "hi")?;
            if lo > hi {
                return Err(loader.out_of_range(l, "lo", format!("lo ({lo}) exceeds hi ({hi})")));
            }
            Ok(LatencySpec::Uniform { lo, hi })
        }
        other => Err(ScenarioError::OutOfRange {
            at: loader.at("kind"),
            field: join(l, "kind"),
            message: format!("unknown latency kind `{other}` (immediate, fixed or uniform)"),
        }),
    }
}

fn parse_membership(
    loader: &Loader<'_>,
    json: &Json,
    n: usize,
) -> Result<MembershipPlanSpec, ScenarioError> {
    let pairs = loader.obj(
        json,
        "membership",
        &["seed", "leave_permille", "downtime", "min_live"],
        &["seed", "leave_permille", "downtime", "min_live"],
    )?;
    let m = "membership";
    let downtime = loader.u64(pairs, m, "downtime")?;
    if downtime == 0 {
        return Err(loader.out_of_range(
            m,
            "downtime",
            "a leaver must stay away at least one step".into(),
        ));
    }
    let min_live = loader.usize(pairs, m, "min_live")?;
    if min_live == 0 || min_live > n {
        return Err(loader.out_of_range(
            m,
            "min_live",
            format!("the live floor must be in 1..=n (n = {n})"),
        ));
    }
    Ok(MembershipPlanSpec {
        seed: loader.u64(pairs, m, "seed")?,
        leave_permille: loader.permille(pairs, m, "leave_permille")?,
        downtime,
        min_live,
    })
}

fn parse_queries(
    loader: &Loader<'_>,
    json: &Json,
    n: usize,
) -> Result<Vec<QuerySpec>, ScenarioError> {
    let q = "queries";
    let Some(entries) = json.as_array() else {
        return Err(ScenarioError::WrongType {
            at: loader.at(q),
            field: q.to_string(),
            expected: "an array of query specs",
        });
    };
    if entries.is_empty() {
        return Err(loader.out_of_range("", q, "at least one query is required".into()));
    }
    let mut queries = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let path = format!("queries[{i}]");
        let pairs = loader.obj(
            entry,
            &path,
            &["k", "eps", "protocol", "subset"],
            &["k", "eps", "protocol"],
        )?;
        let k = loader.usize(pairs, &path, "k")?;
        let eps = {
            let json = get(pairs, "eps").expect("required field was checked");
            parse_eps_obj(loader, json, &format!("{path}.eps"))?
        };
        let protocol = loader.str(pairs, &path, "protocol")?.to_string();
        if ProtocolKind::from_name(&protocol).is_none() {
            return Err(loader.out_of_range(
                &path,
                "protocol",
                format!("unknown protocol `{protocol}`"),
            ));
        }
        let subset = match get(pairs, "subset") {
            None => NodeSubset::All,
            Some(Json::Array(ids)) => {
                if ids.is_empty() {
                    return Err(loader.out_of_range(
                        &path,
                        "subset",
                        "a subset query must monitor at least one node".into(),
                    ));
                }
                let mut nodes = Vec::with_capacity(ids.len());
                for id in ids {
                    let Json::UInt(raw) = id else {
                        return Err(ScenarioError::WrongType {
                            at: loader.at("subset"),
                            field: join(&path, "subset"),
                            expected: "an array of node ids (non-negative integers)",
                        });
                    };
                    let id = usize::try_from(*raw)
                        .ok()
                        .filter(|&v| v < n)
                        .ok_or_else(|| {
                            loader.out_of_range(
                                &path,
                                "subset",
                                format!("node id {raw} is outside the population (n = {n})"),
                            )
                        })?;
                    // Strictly ascending: the canonical form is sorted and
                    // deduplicated, so parse → serialize stays the identity.
                    if nodes.last().is_some_and(|&NodeId(prev)| prev >= id) {
                        return Err(loader.out_of_range(
                            &path,
                            "subset",
                            "node ids must be strictly ascending".into(),
                        ));
                    }
                    nodes.push(NodeId(id));
                }
                NodeSubset::Nodes(nodes)
            }
            Some(_) => {
                return Err(ScenarioError::WrongType {
                    at: loader.at("subset"),
                    field: join(&path, "subset"),
                    expected: "an array of node ids (non-negative integers)",
                });
            }
        };
        let subset_size = subset.resolve(n).len();
        if k == 0 || k > subset_size {
            return Err(loader.out_of_range(
                &path,
                "k",
                format!("k must be in 1..=|subset| (|subset| = {subset_size})"),
            ));
        }
        queries.push(QuerySpec {
            k,
            eps,
            protocol,
            subset,
        });
    }
    Ok(queries)
}

fn parse_floors(loader: &Loader<'_>, json: &Json) -> Result<FloorOverride, ScenarioError> {
    let f = "floors";
    let pairs = loader.obj(
        json,
        f,
        &[
            "ceiling_headroom_permille",
            "ceiling_slack_permille",
            "poll_factor_permille",
            "invalid_fraction_permille",
        ],
        &[],
    )?;
    if pairs.is_empty() {
        return Err(loader.out_of_range("", f, "must override at least one bar".into()));
    }
    let mut overrides = FloorOverride::default();
    if get(pairs, "ceiling_headroom_permille").is_some() {
        let v = loader.u64(pairs, f, "ceiling_headroom_permille")?;
        if v > 1000 {
            return Err(loader.out_of_range(
                f,
                "ceiling_headroom_permille",
                format!("{v} is a permille headroom (at most 1000)"),
            ));
        }
        overrides.ceiling_headroom_permille = Some(v);
    }
    if get(pairs, "ceiling_slack_permille").is_some() {
        let v = loader.u64(pairs, f, "ceiling_slack_permille")?;
        if v > 1000 {
            return Err(loader.out_of_range(
                f,
                "ceiling_slack_permille",
                format!("{v} is a permille slack (at most 1000)"),
            ));
        }
        overrides.ceiling_slack_permille = Some(v);
    }
    if get(pairs, "poll_factor_permille").is_some() {
        let v = loader.u64(pairs, f, "poll_factor_permille")?;
        if !(1..=10_000).contains(&v) {
            return Err(loader.out_of_range(
                f,
                "poll_factor_permille",
                format!("{v} must be in 1..=10000 (a permille poll-factor bound)"),
            ));
        }
        overrides.poll_factor_permille = Some(v);
    }
    if get(pairs, "invalid_fraction_permille").is_some() {
        let v = loader.u64(pairs, f, "invalid_fraction_permille")?;
        if v > 1000 {
            return Err(loader.out_of_range(
                f,
                "invalid_fraction_permille",
                format!("{v} is a permille fraction (at most 1000)"),
            ));
        }
        overrides.invalid_fraction_permille = Some(v);
    }
    Ok(overrides)
}

// ---------------------------------------------------------------------------
// Canonical serialisation
// ---------------------------------------------------------------------------

fn uint(v: u64) -> Json {
    Json::UInt(v)
}

fn generator_json(generator: &GeneratorSpec) -> Json {
    let mut pairs = vec![("family".to_string(), Json::Str(generator.family().into()))];
    let mut push = |key: &str, v: u64| pairs.push((key.to_string(), uint(v)));
    match *generator {
        GeneratorSpec::Zipf { peak_load } => push("peak_load", peak_load),
        GeneratorSpec::Noise { sigma, z } => {
            push("sigma", sigma as u64);
            push("z", z);
        }
        GeneratorSpec::RandomWalk {
            delta,
            max_step,
            move_permille,
        } => {
            push("delta", delta);
            push("max_step", max_step);
            push("move_permille", u64::from(move_permille));
        }
        GeneratorSpec::Gap { high_base } => push("high_base", high_base),
        GeneratorSpec::Adversarial { sigma, y0 } => {
            push("sigma", sigma as u64);
            push("y0", y0);
        }
        GeneratorSpec::RegimeSwitch {
            sigma,
            z,
            segment_len,
        } => {
            push("sigma", sigma as u64);
            push("z", z);
            push("segment_len", segment_len);
        }
        GeneratorSpec::CorrelatedBurst {
            base_load,
            factor,
            group,
            burst_permille,
        } => {
            push("base_load", base_load);
            push("factor", factor);
            push("group", group as u64);
            push("burst_permille", u64::from(burst_permille));
        }
        GeneratorSpec::Churn { z, churn_permille } => {
            push("z", z);
            push("churn_permille", u64::from(churn_permille));
        }
        GeneratorSpec::ZipfWeb { peak_load, period } => {
            push("peak_load", peak_load);
            push("period", period);
        }
        GeneratorSpec::NoiseField { high, sigma, z } => {
            push("high", high as u64);
            push("sigma", sigma as u64);
            push("z", z);
        }
    }
    Json::Object(pairs)
}

fn latency_json(latency: &LatencySpec) -> Json {
    let pairs = match *latency {
        LatencySpec::Immediate => vec![("kind".to_string(), Json::Str("immediate".into()))],
        LatencySpec::Fixed(rounds) => vec![
            ("kind".to_string(), Json::Str("fixed".into())),
            ("rounds".to_string(), uint(u64::from(rounds))),
        ],
        LatencySpec::Uniform { lo, hi } => vec![
            ("kind".to_string(), Json::Str("uniform".into())),
            ("lo".to_string(), uint(u64::from(lo))),
            ("hi".to_string(), uint(u64::from(hi))),
        ],
    };
    Json::Object(pairs)
}

fn fault_json(fault: &FaultSpec) -> Json {
    let mut pairs = vec![("seed".to_string(), uint(fault.seed))];
    // Zero-valued axes are omitted: the parser defaults them, and the files
    // stay readable (a latency-only plan shows only its latency).
    if fault.drop_upstream_permille > 0 {
        pairs.push((
            "drop_upstream_permille".to_string(),
            uint(u64::from(fault.drop_upstream_permille)),
        ));
    }
    if fault.drop_downstream_permille > 0 {
        pairs.push((
            "drop_downstream_permille".to_string(),
            uint(u64::from(fault.drop_downstream_permille)),
        ));
    }
    if fault.reorder_permille > 0 {
        pairs.push((
            "reorder_permille".to_string(),
            uint(u64::from(fault.reorder_permille)),
        ));
    }
    // Structural, not semantic, comparison: `Fixed(0)` behaves like
    // `Immediate` but must survive the round trip unchanged.
    if fault.latency != LatencySpec::Immediate {
        pairs.push(("latency".to_string(), latency_json(&fault.latency)));
    }
    if let Some(crash) = fault.crash {
        pairs.push((
            "crash".to_string(),
            Json::Object(vec![
                (
                    "crash_permille".to_string(),
                    uint(u64::from(crash.crash_permille)),
                ),
                ("down_steps".to_string(), uint(crash.down_steps)),
                ("max_down".to_string(), uint(crash.max_down as u64)),
            ]),
        ));
    }
    Json::Object(pairs)
}

fn queries_json(queries: &[QuerySpec]) -> Json {
    Json::Array(
        queries
            .iter()
            .map(|q| {
                let mut pairs = vec![
                    ("k".to_string(), uint(q.k as u64)),
                    (
                        "eps".to_string(),
                        Json::Object(vec![
                            ("num".to_string(), uint(u64::from(q.eps.numerator()))),
                            ("den".to_string(), uint(u64::from(q.eps.denominator()))),
                        ]),
                    ),
                    ("protocol".to_string(), Json::Str(q.protocol.clone())),
                ];
                if let NodeSubset::Nodes(nodes) = &q.subset {
                    pairs.push((
                        "subset".to_string(),
                        Json::Array(nodes.iter().map(|id| uint(id.index() as u64)).collect()),
                    ));
                }
                Json::Object(pairs)
            })
            .collect(),
    )
}

fn floors_json(floors: &FloorOverride) -> Json {
    let mut pairs = Vec::new();
    let mut push = |key: &str, v: Option<u64>| {
        if let Some(v) = v {
            pairs.push((key.to_string(), uint(v)));
        }
    };
    push(
        "ceiling_headroom_permille",
        floors.ceiling_headroom_permille,
    );
    push("ceiling_slack_permille", floors.ceiling_slack_permille);
    push("poll_factor_permille", floors.poll_factor_permille);
    push(
        "invalid_fraction_permille",
        floors.invalid_fraction_permille,
    );
    Json::Object(pairs)
}

/// Serialises a scenario to its canonical JSON text (fixed key order, pretty
/// two-space indentation, trailing newline). `parse_scenario` of the result
/// reproduces `file` exactly. The `v2` tag is emitted only when a v2 field
/// (`queries`, `floors`) is present, so v1 files stay byte-stable.
pub fn scenario_to_json(file: &ScenarioFile) -> String {
    let spec = &file.spec;
    let schema = if file.queries.is_some() || file.floors.is_some() {
        SCENARIO_SCHEMA_V2
    } else {
        SCENARIO_SCHEMA
    };
    let mut pairs = vec![
        ("schema".to_string(), Json::Str(schema.into())),
        ("name".to_string(), Json::Str(file.name.clone())),
        ("generator".to_string(), generator_json(&spec.generator)),
        ("n".to_string(), uint(spec.n as u64)),
        ("k".to_string(), uint(spec.k as u64)),
        (
            "eps".to_string(),
            Json::Object(vec![
                ("num".to_string(), uint(u64::from(spec.eps.numerator()))),
                ("den".to_string(), uint(u64::from(spec.eps.denominator()))),
            ]),
        ),
        ("steps".to_string(), uint(spec.steps as u64)),
        ("seed".to_string(), uint(spec.seed)),
    ];
    if let Some(fault) = &file.fault {
        pairs.push(("fault".to_string(), fault_json(fault)));
    }
    if let Some(plan) = &file.membership {
        pairs.push((
            "membership".to_string(),
            Json::Object(vec![
                ("seed".to_string(), uint(plan.seed)),
                (
                    "leave_permille".to_string(),
                    uint(u64::from(plan.leave_permille)),
                ),
                ("downtime".to_string(), uint(plan.downtime)),
                ("min_live".to_string(), uint(plan.min_live as u64)),
            ]),
        ));
    }
    if let Some(queries) = &file.queries {
        pairs.push(("queries".to_string(), queries_json(queries)));
    }
    if let Some(floors) = &file.floors {
        pairs.push(("floors".to_string(), floors_json(floors)));
    }
    let mut text =
        serde_json::to_string_pretty(&Json::Object(pairs)).expect("serialisation is infallible");
    text.push('\n');
    text
}

// ---------------------------------------------------------------------------
// File and directory loading
// ---------------------------------------------------------------------------

/// Loads and validates one scenario file.
///
/// # Errors
///
/// [`ScenarioError::Io`] if the file cannot be read, else any parse or
/// validation error from [`parse_scenario`].
pub fn load_scenario(path: &Path) -> Result<ScenarioFile, ScenarioError> {
    let origin = path.display().to_string();
    let mut text = String::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|source| ScenarioError::Io {
            path: origin.clone(),
            source,
        })?;
    parse_scenario(&text, &origin)
}

/// Loads every `*.json` file of a directory, sorted by file name.
///
/// # Errors
///
/// [`ScenarioError::Io`] if the directory cannot be listed, else the first
/// failing file's error.
pub fn load_scenario_dir(dir: &Path) -> Result<Vec<ScenarioFile>, ScenarioError> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|source| ScenarioError::Io {
            path: dir.display().to_string(),
            source,
        })?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths.iter().map(|p| load_scenario(p)).collect()
}

// ---------------------------------------------------------------------------
// The standard library and its sync check
// ---------------------------------------------------------------------------

fn grid_name(spec: &ScenarioSpec) -> String {
    format!(
        "{}-n{}-k{}-e{}of{}-s{}",
        spec.generator.family(),
        spec.n,
        spec.k,
        spec.eps.numerator(),
        spec.eps.denominator(),
        spec.steps
    )
}

/// The scenario library `scenarios/` must hold: every cell of
/// [`standard_grid`], [`standard_fault_grid`], [`standard_membership_grid`]
/// and [`standard_multiquery_grid`] (full scale), plus the two example
/// workloads and the floor-override showcase, each under its canonical name.
/// Returned sorted by name.
pub fn standard_library() -> Vec<ScenarioFile> {
    let mut files = Vec::new();
    for spec in standard_grid(false) {
        files.push(ScenarioFile {
            name: grid_name(&spec),
            spec,
            fault: None,
            membership: None,
            queries: None,
            floors: None,
        });
    }
    for (spec, fault) in standard_fault_grid(false) {
        files.push(ScenarioFile {
            name: format!(
                "fault-{}-{}-s{}",
                spec.generator.family(),
                fault.family(),
                spec.steps
            ),
            spec,
            fault: Some(fault),
            membership: None,
            queries: None,
            floors: None,
        });
    }
    for (spec, plan) in standard_membership_grid(false) {
        files.push(ScenarioFile {
            name: format!(
                "member-{}-churn{}-s{}",
                spec.generator.family(),
                plan.leave_permille,
                spec.steps
            ),
            spec,
            fault: None,
            membership: Some(plan),
            queries: None,
            floors: None,
        });
    }
    for (spec, plan) in standard_multiquery_grid(false) {
        files.push(ScenarioFile {
            name: format!(
                "mq-{}-{}-s{}",
                plan.name,
                spec.generator.family(),
                spec.steps
            ),
            spec,
            fault: None,
            membership: None,
            queries: Some(plan.queries),
            floors: None,
        });
    }
    files.extend(example_scenarios());
    files.sort_by(|a, b| a.name.cmp(&b.name));
    let mut seen = std::collections::BTreeSet::new();
    for file in &files {
        assert!(
            seen.insert(file.name.clone()),
            "library names must be unique: {}",
            file.name
        );
    }
    files
}

/// The two example workloads (`examples/load_balancer.rs`,
/// `examples/sensor_noise.rs`) as library entries — the examples load these
/// instead of hard-coding parameters — plus the floor-override showcase
/// (`gap-tight-floors`): a clear-gap cell whose `floors` override tightens
/// the poll-factor bar to 0.5 ×, the committed proof that per-scenario
/// overrides parse, round-trip and gate the scenario-run mode.
pub fn example_scenarios() -> Vec<ScenarioFile> {
    vec![
        ScenarioFile {
            // `ZipfLoadWorkload::web_cluster(64, 99)`, as scenario data.
            name: "load_balancer".to_string(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::ZipfWeb {
                    peak_load: 100_000,
                    period: 500,
                },
                n: 64,
                k: 8,
                eps: Epsilon::TENTH,
                steps: 600,
                seed: 99,
            },
            fault: None,
            membership: None,
            queries: None,
            floors: None,
        },
        ScenarioFile {
            name: "sensor_noise".to_string(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::NoiseField {
                    high: 6,
                    sigma: 12,
                    z: 1_000_000,
                },
                n: 40,
                k: 10,
                eps: Epsilon::new(1, 20).expect("1/20 is in (0, 1)"),
                steps: 400,
                seed: 5,
            },
            fault: None,
            membership: None,
            queries: None,
            floors: None,
        },
        ScenarioFile {
            name: "gap-tight-floors".to_string(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::Gap { high_base: 1 << 20 },
                n: 64,
                k: 4,
                eps: Epsilon::TENTH,
                steps: 240,
                seed: 7,
            },
            fault: None,
            membership: None,
            queries: None,
            // On a clear-gap workload the filters silence the population
            // almost completely; the standard 3 × polling bar is far too
            // loose to catch a regression there.
            floors: Some(FloorOverride {
                poll_factor_permille: Some(500),
                ..FloorOverride::default()
            }),
        },
    ]
}

/// Writes the standard library into `dir` (creating it), one canonical file
/// per scenario. Returns the file names written.
///
/// # Errors
///
/// Any I/O error, wrapped with the failing path.
pub fn emit_library(dir: &Path) -> Result<Vec<String>, ScenarioError> {
    std::fs::create_dir_all(dir).map_err(|source| ScenarioError::Io {
        path: dir.display().to_string(),
        source,
    })?;
    let mut names = Vec::new();
    for file in standard_library() {
        let file_name = format!("{}.json", file.name);
        let path = dir.join(&file_name);
        std::fs::write(&path, scenario_to_json(&file)).map_err(|source| ScenarioError::Io {
            path: path.display().to_string(),
            source,
        })?;
        names.push(file_name);
    }
    Ok(names)
}

/// Checks that `dir` holds *exactly* the standard library, byte for byte:
/// every expected file present with canonical contents, no stray `*.json`
/// files. Returns the list of discrepancies (empty = in sync).
pub fn check_library_sync(dir: &Path) -> Vec<String> {
    let mut problems = Vec::new();
    let expected: Vec<(String, String)> = standard_library()
        .iter()
        .map(|file| (format!("{}.json", file.name), scenario_to_json(file)))
        .collect();
    for (file_name, contents) in &expected {
        let path = dir.join(file_name);
        match std::fs::read_to_string(&path) {
            Err(e) => problems.push(format!("{}: {e}", path.display())),
            Ok(found) if &found != contents => problems.push(format!(
                "{}: stale (differs from the generated scenario; run `experiments --emit-scenarios {}`)",
                path.display(),
                dir.display()
            )),
            Ok(_) => {}
        }
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json") {
                let file_name = path
                    .file_name()
                    .map(|s| s.to_string_lossy().to_string())
                    .unwrap_or_default();
                if !expected.iter().any(|(name, _)| *name == file_name) {
                    problems.push(format!(
                        "{}: not part of the standard library (stray file)",
                        path.display()
                    ));
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic derivation of a *valid* scenario from a few integers,
    /// sweeping every generator family and both optional companions.
    fn scenario_from(sel: u8, x: u64, y: u64) -> ScenarioFile {
        let n = 8 + (x % 64) as usize;
        let k = 1 + (y % 4) as usize;
        let eps = Epsilon::new(1 + (x % 8) as u32, 10 + (y % 90) as u32)
            .expect("num in 1..=8 < den in 10..=99");
        let generator = match sel % 10 {
            0 => GeneratorSpec::Zipf {
                peak_load: x % 1_000_000,
            },
            1 => GeneratorSpec::Noise {
                sigma: 1 + (y % (n - (k / 2).max(1)) as u64) as usize,
                z: 16 + x % 1_000_000,
            },
            2 => GeneratorSpec::RandomWalk {
                delta: x % 1_000_000,
                max_step: y % 10_000,
                move_permille: (x % 1001) as u32,
            },
            3 => GeneratorSpec::Gap {
                high_base: x % 1_000_000,
            },
            4 => GeneratorSpec::Adversarial {
                sigma: k + 1 + (x % (n - k) as u64) as usize,
                y0: 16 + y % 1_000_000,
            },
            5 => GeneratorSpec::RegimeSwitch {
                sigma: 1 + (y % (n - (k / 2).max(1)) as u64) as usize,
                z: 16 + x % 1_000_000,
                segment_len: 1 + y % 50,
            },
            6 => GeneratorSpec::CorrelatedBurst {
                base_load: 1 + x % 10_000,
                factor: 2 + y % 10,
                group: 1 + (x % n as u64) as usize,
                burst_permille: (y % 1001) as u32,
            },
            7 => GeneratorSpec::Churn {
                z: 16 + y % 1_000_000,
                churn_permille: (x % 1001) as u32,
            },
            8 => GeneratorSpec::ZipfWeb {
                peak_load: x % 1_000_000,
                period: 1 + y % 600,
            },
            _ => {
                let high = (x % (n as u64 - 1)) as usize;
                GeneratorSpec::NoiseField {
                    high,
                    sigma: 1 + (y % (n - high) as u64) as usize,
                    z: 16 + x % 1_000_000,
                }
            }
        };
        let fault = (sel & 0x10 != 0).then(|| {
            let mut spec = FaultSpec::none();
            spec.seed = x.wrapping_mul(31).wrapping_add(y);
            spec.drop_upstream_permille = (x % 1001) as u32;
            spec.drop_downstream_permille = (y % 1001) as u32;
            spec.reorder_permille = ((x ^ y) % 1001) as u32;
            spec.latency = match y % 3 {
                0 => LatencySpec::Immediate,
                1 => LatencySpec::Fixed((x % 5) as u32),
                _ => LatencySpec::Uniform {
                    lo: (x % 3) as u32,
                    hi: (x % 3 + y % 4) as u32,
                },
            };
            spec.crash = (y % 2 == 0).then_some(CrashSpec {
                crash_permille: (x % 200) as u32,
                down_steps: y % 20 + 1,
                max_down: 1 + (x % 8) as usize,
            });
            spec
        });
        let membership = (sel & 0x20 != 0 && fault.is_none()).then(|| MembershipPlanSpec {
            seed: y.wrapping_mul(37).wrapping_add(x),
            leave_permille: (y % 1001) as u32,
            downtime: 1 + x % 10,
            min_live: 1 + (y % n as u64) as usize,
        });
        let queries = (sel & 0x40 != 0 && fault.is_none() && membership.is_none()).then(|| {
            let protocols = [
                "exact_topk",
                "topk_protocol",
                "dense",
                "combined",
                "half_eps",
            ];
            (0..1 + (x % 3) as usize)
                .map(|i| {
                    let subset = if (y >> i) & 1 == 0 {
                        NodeSubset::All
                    } else {
                        let start = (x as usize).wrapping_add(i) % n;
                        NodeSubset::range(start, 1 + (y as usize).wrapping_add(i) % (n - start))
                    };
                    let size = subset.resolve(n).len();
                    QuerySpec {
                        k: 1 + (x as usize).wrapping_add(i) % size,
                        eps,
                        protocol: protocols[(y as usize + i) % protocols.len()].to_string(),
                        subset,
                    }
                })
                .collect::<Vec<_>>()
        });
        let floors = (sel & 0x80 != 0).then(|| FloorOverride {
            ceiling_headroom_permille: (x % 2 == 0).then_some(y % 1001),
            ceiling_slack_permille: (y % 2 == 0).then_some(x % 1001),
            // Always present: the schema rejects an empty override object.
            poll_factor_permille: Some(1 + (x ^ y) % 10_000),
            invalid_fraction_permille: (x % 3 == 0).then_some(y % 1001),
        });
        ScenarioFile {
            name: format!("prop-{}", x % 1000),
            spec: ScenarioSpec {
                generator,
                n,
                k,
                eps,
                steps: 1 + (x % 300) as usize,
                seed: x ^ y,
            },
            fault,
            membership,
            queries,
            floors,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary valid scenario → serialize → parse == original, and the
        /// canonical text is a fixed point of the round trip.
        #[test]
        fn arbitrary_scenarios_round_trip(
            sel in 0u8..255,
            x in 0u64..u64::MAX,
            y in 0u64..u64::MAX,
        ) {
            let file = scenario_from(sel, x, y);
            let text = scenario_to_json(&file);
            let back = parse_scenario(&text, "<prop>").expect("canonical text must parse");
            prop_assert_eq!(&back, &file);
            prop_assert_eq!(scenario_to_json(&back), text);
        }
    }

    #[test]
    fn canonical_files_round_trip_exactly() {
        for file in standard_library() {
            let text = scenario_to_json(&file);
            let back = parse_scenario(&text, "<inline>").expect("canonical file must parse");
            assert_eq!(back, file, "parse(serialize) must be the identity");
            assert_eq!(
                scenario_to_json(&back),
                text,
                "serialize(parse) must reproduce the canonical bytes"
            );
        }
    }

    #[test]
    fn the_library_contains_the_standard_grids_exactly() {
        let library = standard_library();
        let specs: Vec<ScenarioSpec> = library
            .iter()
            .filter(|f| {
                f.fault.is_none()
                    && f.membership.is_none()
                    && f.queries.is_none()
                    && f.floors.is_none()
            })
            .filter(|f| !f.name.starts_with("load_balancer") && !f.name.starts_with("sensor_noise"))
            .map(|f| f.spec)
            .collect();
        let grid = standard_grid(false);
        assert_eq!(specs.len(), grid.len());
        for spec in &grid {
            assert!(
                specs.contains(spec),
                "grid cell missing from library: {spec:?}"
            );
        }
        let faults: Vec<(ScenarioSpec, FaultSpec)> = library
            .iter()
            .filter_map(|f| f.fault.map(|fault| (f.spec, fault)))
            .collect();
        for cell in standard_fault_grid(false) {
            assert!(faults.contains(&cell), "fault cell missing: {cell:?}");
        }
        let plans: Vec<(ScenarioSpec, MembershipPlanSpec)> = library
            .iter()
            .filter_map(|f| f.membership.map(|plan| (f.spec, plan)))
            .collect();
        for cell in standard_membership_grid(false) {
            assert!(plans.contains(&cell), "membership cell missing: {cell:?}");
        }
        let query_plans: Vec<(ScenarioSpec, Vec<QuerySpec>)> = library
            .iter()
            .filter_map(|f| f.queries.clone().map(|q| (f.spec, q)))
            .collect();
        for (spec, plan) in standard_multiquery_grid(false) {
            assert!(
                query_plans.contains(&(spec, plan.queries.clone())),
                "multi-query cell missing: {} on {spec:?}",
                plan.name
            );
        }
    }

    #[test]
    fn v2_tag_is_emitted_exactly_when_a_v2_field_is_present() {
        let library = standard_library();
        let v1 = library.iter().find(|f| f.name == "load_balancer").unwrap();
        assert!(scenario_to_json(v1).contains(SCENARIO_SCHEMA));
        let mq = library
            .iter()
            .find(|f| f.queries.is_some())
            .expect("the library carries the multi-query grid");
        assert!(scenario_to_json(mq).contains(SCENARIO_SCHEMA_V2));
        let floored = library
            .iter()
            .find(|f| f.floors.is_some())
            .expect("the library carries the floor-override showcase");
        assert!(scenario_to_json(floored).contains(SCENARIO_SCHEMA_V2));
    }

    #[test]
    fn v1_files_reject_the_v2_fields() {
        // The v2 root fields under a v1 tag are unknown fields, not silently
        // ignored extensions.
        let base = scenario_to_json(&example_scenarios()[0]);
        let text = base.replace(
            "\"seed\": 99",
            "\"seed\": 99,\n  \"floors\": {\"poll_factor_permille\": 500}",
        );
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::UnknownField { field, .. }) if field == "floors"
        ));
    }

    #[test]
    fn multiquery_scenarios_validate_their_plan() {
        let mq = standard_library()
            .into_iter()
            .find(|f| f.queries.is_some())
            .unwrap();
        let canonical = scenario_to_json(&mq);
        // Unknown protocol.
        let text = canonical.replace("\"topk_protocol\"", "\"topk_oracle\"");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field.ends_with(".protocol")
        ));
        // A query cannot ask for more positions than its subset holds.
        let text = canonical.replace("\"k\": 4,", "\"k\": 400,");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "k" || field.ends_with("].k")
        ));
        // No fault/membership companion next to a query plan.
        let text = canonical.replace("\"queries\"", "\"fault\": {\"seed\": 1},\n  \"queries\"");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "queries"
        ));
    }

    #[test]
    fn subset_ids_must_be_ascending_and_in_range() {
        let mq = standard_library()
            .into_iter()
            .find(|f| f.name.starts_with("mq-disjoint"))
            .unwrap();
        let canonical = scenario_to_json(&mq);
        let text = canonical.replace("[\n        0,", "[\n        1,");
        match parse_scenario(&text, "<inline>") {
            Err(ScenarioError::OutOfRange { field, message, .. }) => {
                assert!(field.ends_with(".subset"), "{field}");
                assert!(message.contains("ascending"), "{message}");
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        let text = canonical.replace("\n        63\n", "\n        64\n");
        match parse_scenario(&text, "<inline>") {
            Err(ScenarioError::OutOfRange { field, message, .. }) => {
                assert!(field.ends_with(".subset"), "{field}");
                assert!(message.contains("outside the population"), "{message}");
            }
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn floor_overrides_are_bounded_and_non_empty() {
        let floored = standard_library()
            .into_iter()
            .find(|f| f.floors.is_some())
            .unwrap();
        let canonical = scenario_to_json(&floored);
        let text = canonical.replace(
            "\"poll_factor_permille\": 500",
            "\"poll_factor_permille\": 0",
        );
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "floors.poll_factor_permille"
        ));
        let text = canonical.replace("{\n    \"poll_factor_permille\": 500\n  }", "{}");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "floors"
        ));
        let text = canonical.replace(
            "\"poll_factor_permille\": 500",
            "\"ceiling_headroom_permille\": 1001",
        );
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. })
                if field == "floors.ceiling_headroom_permille"
        ));
    }

    #[test]
    fn floor_overrides_apply_onto_the_standard_table() {
        let floored = standard_library()
            .into_iter()
            .find(|f| f.floors.is_some())
            .unwrap();
        let floors = floored.effective_floors();
        let standard = crate::FloorTable::STANDARD.competitive;
        assert!((floors.max_poll_factor - 0.5).abs() < 1e-9);
        // Untouched bars keep their standard values.
        assert_eq!(
            floors.ceiling_headroom_permille,
            standard.ceiling_headroom_permille
        );
        assert_eq!(floors.max_invalid_steps, standard.max_invalid_steps);
        // The companion poll bars never drop below the overridden main bar.
        assert!(floors.fault_poll_factor >= floors.max_poll_factor);
    }

    #[test]
    fn unknown_fields_are_rejected_with_context() {
        let mut text = scenario_to_json(&example_scenarios()[0]);
        text = text.replace("\"seed\": 99", "\"seed\": 99,\n  \"sede\": 7");
        match parse_scenario(&text, "bad.json") {
            Err(ScenarioError::UnknownField { at, field }) => {
                assert_eq!(field, "sede");
                assert_eq!(at.origin, "bad.json");
                assert!(at.line > 1, "line context must point into the file");
            }
            other => panic!("expected UnknownField, got {other:?}"),
        }
    }

    #[test]
    fn unknown_generator_params_are_rejected() {
        let text = scenario_to_json(&example_scenarios()[0])
            .replace("\"period\": 500", "\"period\": 500,\n    \"skew\": 2");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::UnknownField { field, .. }) if field == "generator.skew"
        ));
    }

    #[test]
    fn missing_required_fields_are_rejected() {
        let text = scenario_to_json(&example_scenarios()[0]).replace("  \"steps\": 600,\n", "");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::MissingField { field, .. }) if field == "steps"
        ));
    }

    #[test]
    fn unknown_families_are_rejected() {
        let text =
            scenario_to_json(&example_scenarios()[0]).replace("\"zipf-web\"", "\"zipf-galaxy\"");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::UnknownFamily { family, .. }) if family == "zipf-galaxy"
        ));
    }

    #[test]
    fn out_of_unit_interval_epsilons_are_rejected() {
        for (num, den) in [(0u64, 10u64), (10, 10), (11, 10), (1, 0)] {
            let text = scenario_to_json(&example_scenarios()[0]).replace(
                "\"num\": 1,\n    \"den\": 10",
                &format!("\"num\": {num},\n    \"den\": {den}"),
            );
            match parse_scenario(&text, "<inline>") {
                Err(ScenarioError::InvalidEpsilon { num: n, den: d, .. }) => {
                    assert_eq!((n, d), (num, den));
                }
                other => panic!("eps {num}/{den}: expected InvalidEpsilon, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_types_and_trailing_garbage_are_rejected() {
        let canonical = scenario_to_json(&example_scenarios()[0]);
        let text = canonical.replace("\"n\": 64", "\"n\": \"lots\"");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::WrongType { field, .. }) if field == "n"
        ));
        let text = canonical.replace("\"n\": 64", "\"n\": -3");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::WrongType { field, .. }) if field == "n"
        ));
        let mut text = canonical.clone();
        text.push_str("garbage");
        match parse_scenario(&text, "<inline>") {
            Err(ScenarioError::Parse { message, .. }) => {
                assert!(message.contains("trailing"), "{message}")
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let text = "{\n  \"schema\": \"topk-scenario/v1\",\n  \"name\": oops\n}";
        match parse_scenario(text, "broken.json") {
            Err(ScenarioError::Parse { at, .. }) => {
                assert_eq!(at.origin, "broken.json");
                assert_eq!(at.line, 3, "the bad token sits on line 3");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
    }

    #[test]
    fn schema_skew_is_a_typed_error() {
        let text =
            scenario_to_json(&example_scenarios()[0]).replace(SCENARIO_SCHEMA, "topk-scenario/v9");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::BadSchema { found: Some(tag), .. }) if tag == "topk-scenario/v9"
        ));
    }

    #[test]
    fn out_of_range_bounds_error_instead_of_panicking() {
        let canonical = scenario_to_json(&example_scenarios()[0]);
        // k > n
        let text = canonical.replace("\"k\": 8", "\"k\": 65");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "k"
        ));
        // a permille probability over 1000
        let churn = scenario_to_json(&ScenarioFile {
            name: "x".into(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::Churn {
                    z: 1 << 18,
                    churn_permille: 80,
                },
                n: 24,
                k: 4,
                eps: Epsilon::TENTH,
                steps: 10,
                seed: 1,
            },
            fault: None,
            membership: None,
            queries: None,
            floors: None,
        });
        let text = churn.replace("\"churn_permille\": 80", "\"churn_permille\": 1001");
        assert!(matches!(
            parse_scenario(&text, "<inline>"),
            Err(ScenarioError::OutOfRange { field, .. }) if field == "generator.churn_permille"
        ));
    }

    #[test]
    fn emit_and_sync_check_agree() {
        let dir = std::env::temp_dir().join(format!("topk-scenarios-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        emit_library(&dir).expect("emit must succeed");
        assert_eq!(check_library_sync(&dir), Vec::<String>::new());
        // Tamper with one byte: the check must name the stale file.
        let tampered = dir.join("load_balancer.json");
        let mut text = std::fs::read_to_string(&tampered).unwrap();
        text = text.replace("\"seed\": 99", "\"seed\": 98");
        std::fs::write(&tampered, text).unwrap();
        let problems = check_library_sync(&dir);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("load_balancer.json"), "{problems:?}");
        // A stray file is flagged too.
        emit_library(&dir).unwrap();
        std::fs::write(dir.join("extra.json"), "{}").unwrap();
        let problems = check_library_sync(&dir);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("stray"), "{problems:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loaded_scenarios_build_their_workloads() {
        // Every library entry must instantiate its generator (and companions)
        // without panicking — the loader's bounds are sufficient.
        for file in standard_library() {
            let spec = &file.spec;
            let _ = spec
                .generator
                .build(spec.n, spec.k, spec.eps, spec.seed)
                .as_ref();
            if let Some(plan) = &file.membership {
                let _ = plan.build(spec.n, spec.steps as u64);
            }
            if let Some(fault) = &file.fault {
                fault.validate();
            }
        }
    }
}
