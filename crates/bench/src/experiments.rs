//! The experiment implementations (one function per table/figure).
//!
//! Every experiment takes a `scale` knob so the same code can run as a quick
//! smoke test (`Scale::Small`, used by unit tests and Criterion) or at the full
//! size reported in EXPERIMENTS.md (`Scale::Full`, used by the `experiments`
//! binary).

use crate::table::{f2, ExperimentTable};
use topk_core::monitor::{run_adaptive, run_on_rows, Monitor, RunReport};
use topk_core::{CombinedMonitor, DenseMonitor, ExactTopKMonitor, HalfEpsMonitor, TopKMonitor};
use topk_gen::{
    AdaptiveWorkload, GapWorkload, LowerBoundAdversary, NoiseOscillationWorkload,
    RandomWalkWorkload, Workload,
};
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_net::{build_engine, EngineKind};
use topk_offline::{ApproxOfflineOpt, ExactOfflineOpt};

/// Problem sizes for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Quick sizes for tests and Criterion benches.
    Small,
    /// The sizes reported in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn trials(&self) -> u64 {
        match self {
            Scale::Small => 10,
            Scale::Full => 100,
        }
    }

    fn steps(&self) -> usize {
        match self {
            Scale::Small => 40,
            Scale::Full => 400,
        }
    }
}

fn drive_monitor(
    monitor: &mut dyn Monitor,
    rows: &[Vec<Value>],
    eps: Epsilon,
    seed: u64,
) -> RunReport {
    let n = rows[0].len();
    let mut net = build_engine(EngineKind::Deterministic, n, seed, None);
    run_on_rows(monitor, net.as_mut(), rows.iter().cloned(), eps)
}

// ---------------------------------------------------------------------------
// E1 — Lemma 3.1: the existence protocol uses O(1) messages on expectation.
// ---------------------------------------------------------------------------

/// E1 ("Table 1"): mean messages per existence-protocol run for varying `n` and
/// number of ones `b`. Lemma 3.1 predicts a constant (≤ 6) independent of both.
pub fn e1_existence(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E1",
        "Existence protocol: mean messages per run (Lemma 3.1 bound: <= 6)",
        &["n", "b", "mean msgs", "mean rounds", "bound"],
    );
    let sizes: &[usize] = match scale {
        Scale::Small => &[16, 64],
        Scale::Full => &[16, 64, 256, 1024, 4096],
    };
    for &n in sizes {
        for frac in [1usize, n / 10, n / 2, n] {
            let b = frac.clamp(1, n);
            let mut total_msgs = 0u64;
            let mut total_rounds = 0u64;
            for seed in 0..scale.trials() {
                let mut net = build_engine(EngineKind::Deterministic, n, seed, None);
                let mut values = vec![0u64; n];
                for v in values.iter_mut().take(b) {
                    *v = 100;
                }
                net.advance_time(&values);
                let _ = topk_core::existence::existence(
                    net.as_mut(),
                    ExistencePredicate::GreaterThan(50),
                );
                let stats = net.stats();
                total_msgs += stats.total_messages();
                total_rounds += stats.rounds;
            }
            table.push_row(vec![
                n.to_string(),
                b.to_string(),
                f2(total_msgs as f64 / scale.trials() as f64),
                f2(total_rounds as f64 / scale.trials() as f64),
                "6".to_string(),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E2 — Lemma 2.6: maximum computation uses O(log n) messages on expectation.
// ---------------------------------------------------------------------------

/// E2 ("Table 2"): mean messages to identify the maximum vs `n`, next to `log₂ n`.
pub fn e2_maximum(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E2",
        "Maximum protocol: mean messages vs n (Lemma 2.6: O(log n))",
        &["n", "mean msgs", "log2(n)", "msgs / log2(n)"],
    );
    let sizes: &[usize] = match scale {
        Scale::Small => &[16, 128],
        Scale::Full => &[16, 64, 256, 1024, 4096],
    };
    for &n in sizes {
        let mut total = 0u64;
        for seed in 0..scale.trials() {
            let mut net = build_engine(EngineKind::Deterministic, n, seed, None);
            let mut w = RandomWalkWorkload::new(n, 1_000_000, 1000, 1.0, seed ^ 0x5a5a);
            net.advance_time(&w.next_step());
            let _ = topk_core::maximum::find_max(net.as_mut());
            total += net.stats().total_messages();
        }
        let mean = total as f64 / scale.trials() as f64;
        let log_n = (n as f64).log2();
        table.push_row(vec![n.to_string(), f2(mean), f2(log_n), f2(mean / log_n)]);
    }
    table
}

// ---------------------------------------------------------------------------
// E3 — Corollary 3.3: exact monitor, O(k log n + log Δ) per OPT message.
// ---------------------------------------------------------------------------

/// E3 ("Figure 1"): exact top-k monitor on random walks — messages and
/// competitive ratio against the exact offline OPT, swept over `Δ` and `k`.
pub fn e3_exact_topk(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E3",
        "Exact top-k monitor vs exact OPT (Corollary 3.3: O(k log n + log delta))",
        &[
            "n",
            "k",
            "delta",
            "msgs",
            "opt lower",
            "ratio",
            "k*log2(n)+log2(delta)",
        ],
    );
    let deltas: &[u64] = match scale {
        Scale::Small => &[1 << 10, 1 << 16],
        Scale::Full => &[1 << 8, 1 << 12, 1 << 16, 1 << 20],
    };
    let ks: &[usize] = match scale {
        Scale::Small => &[2],
        Scale::Full => &[1, 4, 8],
    };
    let n = 50;
    for &k in ks {
        for &delta in deltas {
            let mut w = RandomWalkWorkload::new(n, delta, (delta / 64).max(1), 0.6, 42);
            let rows: Vec<Vec<Value>> = (0..scale.steps()).map(|_| w.next_step()).collect();
            let trace = topk_gen::Trace::new(rows.clone()).unwrap();
            let opt = ExactOfflineOpt::new(k).cost(&trace).unwrap();
            let mut monitor = ExactTopKMonitor::new(k);
            let report = drive_monitor(&mut monitor, &rows, Epsilon::new(1, 1000).unwrap(), 1);
            let bound = k as f64 * (n as f64).log2() + (delta as f64).log2();
            table.push_row(vec![
                n.to_string(),
                k.to_string(),
                delta.to_string(),
                report.messages().to_string(),
                opt.lower_bound.to_string(),
                f2(opt.competitive_ratio(report.messages())),
                f2(bound),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E4 — Theorem 4.5: TopKProtocol, O(k log n + log log Δ + log 1/ε).
// ---------------------------------------------------------------------------

/// E4 ("Figure 2"): `TopKProtocol` on gap workloads — messages and competitive
/// ratio against the exact offline OPT, swept over `Δ` and `ε`.
pub fn e4_topk_protocol(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E4",
        "TopKProtocol vs exact OPT (Theorem 4.5: O(k log n + log log delta + log 1/eps))",
        &[
            "n",
            "k",
            "delta",
            "eps",
            "msgs",
            "opt lower",
            "ratio",
            "bound",
        ],
    );
    let deltas: &[u64] = match scale {
        Scale::Small => &[1 << 16],
        Scale::Full => &[1 << 12, 1 << 20, 1 << 28],
    };
    let epsilons: &[u32] = match scale {
        Scale::Small => &[2, 8],
        Scale::Full => &[2, 4, 16, 64, 256],
    };
    let (n, k) = (40, 4);
    for &delta in deltas {
        for &inv_eps in epsilons {
            let eps = Epsilon::new(1, inv_eps).unwrap();
            let mut w = GapWorkload::new(n, k, delta, 16, 40, 0, 7);
            let rows: Vec<Vec<Value>> = (0..scale.steps()).map(|_| w.next_step()).collect();
            let trace = topk_gen::Trace::new(rows.clone()).unwrap();
            let opt = ExactOfflineOpt::new(k).cost(&trace).unwrap();
            let mut monitor = TopKMonitor::new(k, eps);
            let report = drive_monitor(&mut monitor, &rows, eps, 3);
            let bound = k as f64 * (n as f64).log2()
                + (delta as f64).log2().log2()
                + (inv_eps as f64).log2();
            table.push_row(vec![
                n.to_string(),
                k.to_string(),
                delta.to_string(),
                format!("1/{inv_eps}"),
                report.messages().to_string(),
                opt.lower_bound.to_string(),
                f2(opt.competitive_ratio(report.messages())),
                f2(bound),
            ]);
        }
    }
    table
}

// ---------------------------------------------------------------------------
// E5 — Theorem 5.1: lower bound Ω(σ/k) on the adversarial instance.
// ---------------------------------------------------------------------------

/// E5 ("Figure 3"): the adversarial instance — messages forced from the online
/// algorithm per phase vs the `k + 1` messages the offline algorithm pays,
/// swept over `σ` and `k`.
pub fn e5_lower_bound(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E5",
        "Lower-bound instance (Theorem 5.1): forced ratio grows like sigma/k",
        &[
            "n",
            "k",
            "sigma",
            "online msgs",
            "offline bound",
            "ratio",
            "sigma/k",
        ],
    );
    let configs: &[(usize, usize, usize)] = match scale {
        Scale::Small => &[(24, 2, 12), (24, 2, 20)],
        Scale::Full => &[
            (64, 2, 8),
            (64, 2, 16),
            (64, 2, 32),
            (64, 2, 64),
            (64, 8, 32),
            (64, 8, 64),
            (64, 16, 64),
        ],
    };
    let eps = Epsilon::new(1, 4).unwrap();
    for &(n, k, sigma) in configs {
        let mut adversary = LowerBoundAdversary::new(n, k, sigma, 1 << 20, eps);
        let phases_target = match scale {
            Scale::Small => 3,
            Scale::Full => 10,
        };
        let mut monitor = CombinedMonitor::new(k, eps);
        let mut net = build_engine(EngineKind::Deterministic, n, 11, None);
        let report = run_adaptive(&mut monitor, net.as_mut(), eps, |filters| {
            if adversary.phases_completed() >= phases_target {
                None
            } else {
                Some(adversary.next_step_adaptive(filters))
            }
        });
        let offline = adversary.offline_cost_bound();
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            sigma.to_string(),
            report.messages().to_string(),
            offline.to_string(),
            f2(report.messages() as f64 / offline as f64),
            f2(sigma as f64 / k as f64),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E6 — Theorem 5.8: DenseProtocol against the ε-approximate OPT.
// ---------------------------------------------------------------------------

/// E6 ("Figure 4"): `DenseProtocol` and the combined algorithm on oscillation
/// workloads — messages and competitive ratio vs the ε-approximate OPT, swept
/// over `σ`.
pub fn e6_dense(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E6",
        "DenseProtocol vs eps-approximate OPT (Theorem 5.8)",
        &[
            "n",
            "k",
            "sigma",
            "dense msgs",
            "combined msgs",
            "exact msgs",
            "opt(eps) lower",
            "dense ratio",
        ],
    );
    let sigmas: &[usize] = match scale {
        Scale::Small => &[6, 12],
        Scale::Full => &[4, 8, 16, 32, 48],
    };
    let eps = Epsilon::TENTH;
    let n = 64;
    let k = 8;
    for &sigma in sigmas {
        let mut w = NoiseOscillationWorkload::new(n, k / 2, sigma, 1 << 20, eps, 13);
        let rows: Vec<Vec<Value>> = (0..scale.steps()).map(|_| w.next_step()).collect();
        let trace = topk_gen::Trace::new(rows.clone()).unwrap();
        let opt = ApproxOfflineOpt::new(k, eps).cost(&trace).unwrap();
        let mut dense = DenseMonitor::new(k, eps);
        let dense_report = drive_monitor(&mut dense, &rows, eps, 5);
        let mut combined = CombinedMonitor::new(k, eps);
        let combined_report = drive_monitor(&mut combined, &rows, eps, 5);
        let mut exact = ExactTopKMonitor::new(k);
        let exact_report = drive_monitor(&mut exact, &rows, eps, 5);
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            sigma.to_string(),
            dense_report.messages().to_string(),
            combined_report.messages().to_string(),
            exact_report.messages().to_string(),
            opt.lower_bound.to_string(),
            f2(opt.competitive_ratio(dense_report.messages())),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E7 — Corollary 5.9: the ε/2-gap algorithm.
// ---------------------------------------------------------------------------

/// E7 ("Figure 5"): the ε/2-gap algorithm on the same oscillation workloads —
/// messages and competitive ratio against an OPT restricted to error ε/2.
pub fn e7_half_eps(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E7",
        "Half-eps algorithm vs eps/2-approximate OPT (Corollary 5.9)",
        &[
            "n",
            "k",
            "sigma",
            "half-eps msgs",
            "dense msgs",
            "opt(eps/2) lower",
            "half-eps ratio",
        ],
    );
    let sigmas: &[usize] = match scale {
        Scale::Small => &[6, 12],
        Scale::Full => &[4, 8, 16, 32, 48],
    };
    let eps = Epsilon::TENTH;
    let n = 64;
    let k = 8;
    for &sigma in sigmas {
        let mut w = NoiseOscillationWorkload::new(n, k / 2, sigma, 1 << 20, eps.halved(), 17);
        let rows: Vec<Vec<Value>> = (0..scale.steps()).map(|_| w.next_step()).collect();
        let trace = topk_gen::Trace::new(rows.clone()).unwrap();
        let opt_half = ApproxOfflineOpt::half_of(k, eps).cost(&trace).unwrap();
        let mut half = HalfEpsMonitor::new(k, eps);
        let half_report = drive_monitor(&mut half, &rows, eps, 9);
        let mut dense = DenseMonitor::new(k, eps);
        let dense_report = drive_monitor(&mut dense, &rows, eps, 9);
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            sigma.to_string(),
            half_report.messages().to_string(),
            dense_report.messages().to_string(),
            opt_half.lower_bound.to_string(),
            f2(opt_half.competitive_ratio(half_report.messages())),
        ]);
    }
    table
}

// ---------------------------------------------------------------------------
// E8 — the log Δ vs log log Δ crossover.
// ---------------------------------------------------------------------------

/// E8 ("Figure 6"): message count of the exact midpoint monitor vs
/// `TopKProtocol` as `Δ` grows — the former grows like `log Δ` per phase, the
/// latter like `log log Δ + log 1/ε`.
///
/// The workload is an *adaptive filter prober*: one node outside the output
/// repeatedly jumps to just above the upper bound of its current filter (the
/// worst case for the generic halving framework), forcing one violation per
/// step until the guess interval is exhausted, then resets and the game
/// repeats. Against this prober the exact monitor pays ~`log Δ` violations per
/// round of the game, `TopKProtocol` only ~`log log Δ + log 1/ε`.
pub fn e8_crossover(scale: Scale) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "E8",
        "Exact midpoint vs TopKProtocol against a filter prober (log vs log log)",
        &[
            "delta",
            "exact msgs",
            "topk-protocol msgs",
            "log2(delta)",
            "log2 log2(delta)",
        ],
    );
    let deltas: &[u64] = match scale {
        Scale::Small => &[1 << 12, 1 << 24],
        Scale::Full => &[1 << 8, 1 << 16, 1 << 24, 1 << 32, 1 << 40],
    };
    let (n, k) = (30usize, 2usize);
    let eps = Epsilon::new(1, 4).unwrap();
    let steps = scale.steps();
    for &delta in deltas {
        let run = |monitor: &mut dyn Monitor| {
            let mut net = build_engine(EngineKind::Deterministic, n, 21, None);
            let mut emitted = 0usize;
            run_adaptive(monitor, net.as_mut(), eps, |filters: &[Filter]| {
                if emitted >= steps {
                    return None;
                }
                emitted += 1;
                let mut row = vec![delta / 8; n];
                row[0] = delta;
                row[1] = delta - 1;
                // The prober (node 2) jumps just above its current filter's upper
                // bound, as long as that keeps it below the top-2 values; once the
                // filter reaches the top it resets to a low value.
                let bound = filters[2].hi_or_max();
                row[2] = if emitted == 1 || bound.saturating_add(2) >= delta - 1 {
                    delta / 8
                } else {
                    bound + 1
                };
                Some(row)
            })
        };
        let mut exact = ExactTopKMonitor::new(k);
        let exact_report = run(&mut exact);
        let mut topk = TopKMonitor::new(k, eps);
        let topk_report = run(&mut topk);
        table.push_row(vec![
            delta.to_string(),
            exact_report.messages().to_string(),
            topk_report.messages().to_string(),
            f2((delta as f64).log2()),
            f2((delta as f64).log2().log2()),
        ]);
    }
    table
}

/// Runs every experiment at the given scale.
pub fn run_all(scale: Scale) -> Vec<ExperimentTable> {
    vec![
        e1_existence(scale),
        e2_maximum(scale),
        e3_exact_topk(scale),
        e4_topk_protocol(scale),
        e5_lower_bound(scale),
        e6_dense(scale),
        e7_half_eps(scale),
        e8_crossover(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_stays_below_the_lemma_bound() {
        let t = e1_existence(Scale::Small);
        for row in &t.rows {
            let mean: f64 = row[2].parse().unwrap();
            assert!(mean <= 6.5, "mean {mean} exceeds the Lemma 3.1 bound");
        }
    }

    #[test]
    fn e2_grows_sublinearly() {
        let t = e2_maximum(Scale::Small);
        let small: f64 = t.rows[0][1].parse().unwrap();
        let large: f64 = t.rows[1][1].parse().unwrap();
        // 8x more nodes must cost far less than 8x more messages.
        assert!(
            large < small * 4.0,
            "maximum protocol not logarithmic: {small} -> {large}"
        );
    }

    #[test]
    fn e5_ratio_tracks_sigma_over_k() {
        let t = e5_lower_bound(Scale::Small);
        let ratio_small: f64 = t.rows[0][5].parse().unwrap();
        let ratio_large: f64 = t.rows[1][5].parse().unwrap();
        assert!(
            ratio_large > ratio_small,
            "forced ratio should grow with sigma ({ratio_small} -> {ratio_large})"
        );
    }

    #[test]
    fn e6_dense_beats_exact() {
        let t = e6_dense(Scale::Small);
        for row in &t.rows {
            let dense: u64 = row[3].parse().unwrap();
            let exact: u64 = row[5].parse().unwrap();
            assert!(dense < exact, "dense ({dense}) should beat exact ({exact})");
        }
    }

    #[test]
    fn e8_topk_protocol_scales_better_with_delta() {
        let t = e8_crossover(Scale::Small);
        let exact_growth: f64 = {
            let a: f64 = t.rows[0][1].parse().unwrap();
            let b: f64 = t.rows[1][1].parse().unwrap();
            b / a.max(1.0)
        };
        let topk_growth: f64 = {
            let a: f64 = t.rows[0][2].parse().unwrap();
            let b: f64 = t.rows[1][2].parse().unwrap();
            b / a.max(1.0)
        };
        assert!(
            topk_growth <= exact_growth * 1.5,
            "TopKProtocol should not grow faster with delta (exact x{exact_growth:.2}, topk x{topk_growth:.2})"
        );
    }

    #[test]
    fn all_experiments_produce_rows() {
        for table in run_all(Scale::Small) {
            assert!(!table.rows.is_empty(), "{} has no rows", table.id);
        }
    }
}
