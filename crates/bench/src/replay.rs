//! Trace record/replay: re-driving a recorded run through any engine.
//!
//! [`record_run`] drives one scenario (a [`ScenarioFile`] cell, optionally
//! under its fault and membership companions) and captures the complete
//! step-by-step record as [`TraceRecord`]s — the header naming the protocol
//! and its parameters, one [`TraceStep`] per observation (the masked row, the
//! membership events applied before it, the monitor's reply, the validity
//! verdict and the cumulative message count), and a [`TraceEnd`] with the
//! final [`CommStats`], filter assignment and value vector.
//!
//! [`replay_trace`] is the other direction: it rebuilds the monitor from the
//! header, re-drives the recorded rows and events through a *fresh* engine of
//! any [`EngineKind`], and diffs everything the trace asserts — per-step
//! replies, validity, message counters, and the final stats/filters/values —
//! bit for bit. An empty [`ReplayOutcome::mismatches`] means the engine
//! reproduced the recorded run exactly; anything else names the first
//! divergences in human-readable form. The golden corpus under
//! `tests/traces/` runs every trace through all six engines this way on every
//! CI run.
//!
//! [`replay_trace_queryset`] re-drives the same recordings through a
//! [`QuerySet`](topk_core::queryset::QuerySet) of one full-population query
//! instead of a bare monitor: the corpus thereby pins the query-set driver's
//! solo fast path to the legacy runs byte for byte, on every engine.
//!
//! Traces are stored in the `topk-wire` [`trace`](topk_wire::trace) format
//! (length-prefixed, versioned, CRC-trailered records); [`save_trace`] and
//! [`load_trace`] are the file endpoints `experiments --record`/`--replay`
//! use.

use crate::campaign::ProtocolKind;
use crate::scenario::ScenarioFile;
use std::fmt;
use std::path::Path;
use topk_core::monitor::{run_with_membership_observed, RunReport};
use topk_model::prelude::*;
use topk_wire::{
    read_all_records, write_record, TraceEnd, TraceHeader, TraceRecord, TraceStep, WireError,
};

pub use topk_net::{build_engine, EngineKind};

/// A trace that cannot be replayed at all (as opposed to one that replays
/// but diverges — that is a [`ReplayOutcome`] with mismatches).
#[derive(Debug)]
pub enum ReplayError {
    /// The record sequence is not `Header, Step*, End`.
    Malformed {
        /// What is wrong with the sequence.
        message: String,
    },
    /// The header names a protocol this build does not know.
    UnknownProtocol {
        /// The unknown protocol name.
        name: String,
    },
    /// The trace file could not be read or decoded.
    Wire(WireError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Malformed { message } => write!(f, "malformed trace: {message}"),
            ReplayError::UnknownProtocol { name } => write!(f, "unknown protocol `{name}`"),
            ReplayError::Wire(e) => write!(f, "trace codec error: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<WireError> for ReplayError {
    fn from(e: WireError) -> Self {
        ReplayError::Wire(e)
    }
}

/// Result of replaying one trace through one engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The engine the trace was replayed through.
    pub engine: &'static str,
    /// The trace's label (scenario name).
    pub label: String,
    /// Steps re-driven.
    pub steps: u64,
    /// Every observed divergence from the recording (empty = bit-identical).
    pub mismatches: Vec<String>,
}

impl ReplayOutcome {
    /// True when the replay reproduced the recording exactly.
    pub fn is_identical(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Records one full run of `file` under `protocol` on the indexed engine
/// (wrapped in a [`FaultyTransport`](topk_net::FaultyTransport) when the
/// scenario carries a fault plan),
/// returning the driver's report and the complete record stream.
pub fn record_run(file: &ScenarioFile, protocol: ProtocolKind) -> (RunReport, Vec<TraceRecord>) {
    let spec = &file.spec;
    let mut workload = spec.generator.build(spec.n, spec.k, spec.eps, spec.seed);
    let mut monitor = protocol.build_monitor(spec.k, spec.eps);
    let mut net = build_engine(EngineKind::Indexed, spec.n, spec.seed, file.fault.as_ref());
    let schedule = file
        .membership
        .as_ref()
        .map(|plan| plan.build(spec.n, spec.steps as u64));
    let events_at: Box<dyn FnMut(u64) -> Vec<MembershipEvent>> = match &schedule {
        Some(schedule) => Box::new(schedule.driver()),
        None => Box::new(|_| Vec::new()),
    };
    let mut records = vec![TraceRecord::Header(TraceHeader {
        protocol: protocol.name().to_string(),
        n: spec.n as u64,
        k: spec.k as u64,
        eps: spec.eps,
        seed: spec.seed,
        fault: file.fault,
        label: file.name.clone(),
    })];
    let mut emitted = 0usize;
    let report = run_with_membership_observed(
        monitor.as_mut(),
        net.as_mut(),
        spec.eps,
        |filters| {
            if emitted == spec.steps {
                return None;
            }
            emitted += 1;
            Some(workload.next_step_adaptive(filters))
        },
        events_at,
        |obs| {
            records.push(TraceRecord::Step(TraceStep {
                step: obs.step,
                events: obs.events.to_vec(),
                row: obs.row.to_vec(),
                output: obs.output.to_vec(),
                valid: obs.valid,
                messages_total: obs.messages_total,
            }));
        },
    );
    records.push(TraceRecord::End(TraceEnd {
        steps: report.steps,
        invalid_steps: report.invalid_steps,
        inexact_steps: report.inexact_steps,
        stats: report.stats.clone(),
        filters: net.peek_filters(),
        values: net.peek_values(),
    }));
    (report, records)
}

/// Splits a record stream into its `Header, Step*, End` parts, validating
/// the order and the step numbering.
fn dissect(
    records: &[TraceRecord],
) -> Result<(&TraceHeader, Vec<&TraceStep>, &TraceEnd), ReplayError> {
    let malformed = |message: String| ReplayError::Malformed { message };
    let Some((TraceRecord::Header(header), rest)) = records.split_first() else {
        return Err(malformed("the first record must be a header".into()));
    };
    let Some((TraceRecord::End(end), middle)) = rest.split_last() else {
        return Err(malformed("the last record must be an end marker".into()));
    };
    let mut steps = Vec::with_capacity(middle.len());
    for (i, record) in middle.iter().enumerate() {
        match record {
            TraceRecord::Step(step) if step.step == i as u64 => steps.push(step),
            TraceRecord::Step(step) => {
                return Err(malformed(format!(
                    "step records must be consecutive from 0 (found step {} at position {i})",
                    step.step
                )))
            }
            _ => {
                return Err(malformed(format!(
                    "record {i} between header and end is not a step"
                )))
            }
        }
    }
    if end.steps != steps.len() as u64 {
        return Err(malformed(format!(
            "end marker claims {} steps but {} were recorded",
            end.steps,
            steps.len()
        )));
    }
    Ok((header, steps, end))
}

/// Replays `records` through a fresh engine of the given kind and diffs every
/// recorded quantity bit for bit.
///
/// # Errors
///
/// [`ReplayError`] when the trace cannot be driven at all (malformed record
/// sequence, unknown protocol). Divergence from the recording is *not* an
/// error — it is reported through [`ReplayOutcome::mismatches`].
pub fn replay_trace(
    records: &[TraceRecord],
    kind: EngineKind,
) -> Result<ReplayOutcome, ReplayError> {
    let (header, steps, end) = dissect(records)?;
    let Some(protocol) = ProtocolKind::from_name(&header.protocol) else {
        return Err(ReplayError::UnknownProtocol {
            name: header.protocol.clone(),
        });
    };
    let n = usize::try_from(header.n).map_err(|_| ReplayError::Malformed {
        message: format!("n = {} exceeds this platform's usize", header.n),
    })?;
    let k = usize::try_from(header.k).map_err(|_| ReplayError::Malformed {
        message: format!("k = {} exceeds this platform's usize", header.k),
    })?;
    let mut monitor = protocol.build_monitor(k, header.eps);
    let mut net = build_engine(kind, n, header.seed, header.fault.as_ref());
    // Cap the noise: after this many divergences the engines have clearly
    // forked and further diffs repeat the same story.
    const MAX_MISMATCHES: usize = 8;
    let mut mismatches: Vec<String> = Vec::new();
    let mut cursor = 0usize;
    let report = run_with_membership_observed(
        monitor.as_mut(),
        net.as_mut(),
        header.eps,
        |_filters| {
            let row = steps.get(cursor).map(|s| s.row.clone());
            cursor += 1;
            row
        },
        |step| steps[step as usize].events.clone(),
        |obs| {
            if mismatches.len() >= MAX_MISMATCHES {
                return;
            }
            let recorded = steps[obs.step as usize];
            if obs.output != recorded.output {
                mismatches.push(format!(
                    "step {}: output {:?} != recorded {:?}",
                    obs.step, obs.output, recorded.output
                ));
            }
            if obs.valid != recorded.valid {
                mismatches.push(format!(
                    "step {}: validity {} != recorded {}",
                    obs.step, obs.valid, recorded.valid
                ));
            }
            if obs.messages_total != recorded.messages_total {
                mismatches.push(format!(
                    "step {}: cumulative messages {} != recorded {}",
                    obs.step, obs.messages_total, recorded.messages_total
                ));
            }
            if obs.row != recorded.row.as_slice() {
                mismatches.push(format!(
                    "step {}: the driver re-masked the row differently",
                    obs.step
                ));
            }
        },
    );
    if report.steps != end.steps {
        mismatches.push(format!(
            "run ended after {} steps, recording has {}",
            report.steps, end.steps
        ));
    }
    if report.invalid_steps != end.invalid_steps {
        mismatches.push(format!(
            "invalid steps {} != recorded {}",
            report.invalid_steps, end.invalid_steps
        ));
    }
    if report.inexact_steps != end.inexact_steps {
        mismatches.push(format!(
            "inexact steps {} != recorded {}",
            report.inexact_steps, end.inexact_steps
        ));
    }
    if report.stats != end.stats {
        mismatches.push("final CommStats differ from the recording".to_string());
    }
    let filters = net.peek_filters();
    if filters != end.filters {
        mismatches.push("final filter assignment differs from the recording".to_string());
    }
    let values = net.peek_values();
    if values != end.values {
        mismatches.push("final value vector differs from the recording".to_string());
    }
    Ok(ReplayOutcome {
        engine: kind.name(),
        label: header.label.clone(),
        steps: report.steps,
        mismatches,
    })
}

/// Replays `records` through a [`QuerySet`](topk_core::queryset::QuerySet) of
/// one full-population query on a fresh engine of the given kind and diffs
/// every recorded quantity bit for bit — the golden-trace proof that the
/// query-set driver's solo path *is* the legacy monitor run, not merely close
/// to it.
///
/// # Errors
///
/// [`ReplayError`] when the trace cannot be driven at all; divergence is
/// reported through [`ReplayOutcome::mismatches`] like [`replay_trace`].
pub fn replay_trace_queryset(
    records: &[TraceRecord],
    kind: EngineKind,
) -> Result<ReplayOutcome, ReplayError> {
    use topk_core::queryset::{run_query_set_observed, QuerySet};

    let (header, steps, end) = dissect(records)?;
    let Some(protocol) = ProtocolKind::from_name(&header.protocol) else {
        return Err(ReplayError::UnknownProtocol {
            name: header.protocol.clone(),
        });
    };
    let n = usize::try_from(header.n).map_err(|_| ReplayError::Malformed {
        message: format!("n = {} exceeds this platform's usize", header.n),
    })?;
    let k = usize::try_from(header.k).map_err(|_| ReplayError::Malformed {
        message: format!("k = {} exceeds this platform's usize", header.k),
    })?;
    let mut set = QuerySet::new(n);
    set.register(
        QuerySpec::new(k, header.eps, protocol.name()),
        protocol.build_monitor(k, header.eps),
    );
    let mut net = build_engine(kind, n, header.seed, header.fault.as_ref());
    const MAX_MISMATCHES: usize = 8;
    let mut mismatches: Vec<String> = Vec::new();
    let mut cursor = 0usize;
    let report = run_query_set_observed(
        &mut set,
        net.as_mut(),
        |_filters| {
            let row = steps.get(cursor).map(|s| s.row.clone());
            cursor += 1;
            row
        },
        |step| steps[step as usize].events.clone(),
        |obs| {
            if mismatches.len() >= MAX_MISMATCHES {
                return;
            }
            let recorded = steps[obs.step as usize];
            if obs.outputs[0] != recorded.output {
                mismatches.push(format!(
                    "step {}: output {:?} != recorded {:?}",
                    obs.step, obs.outputs[0], recorded.output
                ));
            }
            if obs.valid[0] != recorded.valid {
                mismatches.push(format!(
                    "step {}: validity {} != recorded {}",
                    obs.step, obs.valid[0], recorded.valid
                ));
            }
            if obs.messages_total != recorded.messages_total {
                mismatches.push(format!(
                    "step {}: cumulative messages {} != recorded {}",
                    obs.step, obs.messages_total, recorded.messages_total
                ));
            }
            if obs.row != recorded.row.as_slice() {
                mismatches.push(format!(
                    "step {}: the driver re-masked the row differently",
                    obs.step
                ));
            }
        },
    );
    if report.steps != end.steps {
        mismatches.push(format!(
            "run ended after {} steps, recording has {}",
            report.steps, end.steps
        ));
    }
    if report.per_query[0].invalid_steps != end.invalid_steps {
        mismatches.push(format!(
            "invalid steps {} != recorded {}",
            report.per_query[0].invalid_steps, end.invalid_steps
        ));
    }
    if report.per_query[0].inexact_steps != end.inexact_steps {
        mismatches.push(format!(
            "inexact steps {} != recorded {}",
            report.per_query[0].inexact_steps, end.inexact_steps
        ));
    }
    if report.stats != end.stats {
        mismatches.push("final CommStats differ from the recording".to_string());
    }
    if net.peek_filters() != end.filters {
        mismatches.push("final filter assignment differs from the recording".to_string());
    }
    if net.peek_values() != end.values {
        mismatches.push("final value vector differs from the recording".to_string());
    }
    Ok(ReplayOutcome {
        engine: kind.name(),
        label: header.label.clone(),
        steps: report.steps,
        mismatches,
    })
}

/// Writes a record stream to a trace file.
///
/// # Errors
///
/// Any I/O or encoding error from the trace codec.
pub fn save_trace(path: &Path, records: &[TraceRecord]) -> Result<(), WireError> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for record in records {
        write_record(&mut file, record)?;
    }
    use std::io::Write as _;
    file.flush()?;
    Ok(())
}

/// Reads a complete trace file back into records.
///
/// # Errors
///
/// Any I/O or decoding error (truncation, bad magic, version skew, CRC
/// mismatch) from the trace codec.
pub fn load_trace(path: &Path) -> Result<Vec<TraceRecord>, WireError> {
    let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
    read_all_records(&mut file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{GeneratorSpec, MembershipPlanSpec, ScenarioSpec};
    use crate::scenario::example_scenarios;

    fn small_cell() -> ScenarioFile {
        ScenarioFile {
            name: "replay-smoke".to_string(),
            spec: ScenarioSpec {
                generator: GeneratorSpec::Noise {
                    sigma: 6,
                    z: 1 << 16,
                },
                n: 16,
                k: 4,
                eps: Epsilon::TENTH,
                steps: 12,
                seed: 0xD1CE,
            },
            fault: None,
            membership: None,
            queries: None,
            floors: None,
        }
    }

    #[test]
    fn a_recording_replays_identically_on_the_recording_engine() {
        let (report, records) = record_run(&small_cell(), ProtocolKind::TopKProtocol);
        assert_eq!(report.steps, 12);
        assert_eq!(records.len(), 14, "header + 12 steps + end");
        let outcome = replay_trace(&records, EngineKind::Indexed).expect("trace is well-formed");
        assert!(outcome.is_identical(), "{:?}", outcome.mismatches);
        assert_eq!(outcome.steps, 12);
        assert_eq!(outcome.label, "replay-smoke");
    }

    #[test]
    fn recordings_survive_the_file_round_trip() {
        let (_, records) = record_run(&small_cell(), ProtocolKind::Dense);
        let path = std::env::temp_dir().join(format!("topk-replay-{}.trace", std::process::id()));
        save_trace(&path, &records).expect("write must succeed");
        let back = load_trace(&path).expect("read must succeed");
        assert_eq!(back, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_tampered_step_is_reported_as_a_mismatch_not_an_error() {
        let (_, mut records) = record_run(&small_cell(), ProtocolKind::ExactTopK);
        let last_step = records.len() - 2;
        if let TraceRecord::Step(step) = &mut records[last_step] {
            step.messages_total += 1;
        } else {
            panic!("expected a step record before the end marker");
        }
        let outcome = replay_trace(&records, EngineKind::Indexed).unwrap();
        assert!(!outcome.is_identical());
        assert!(
            outcome
                .mismatches
                .iter()
                .any(|m| m.contains("cumulative messages")),
            "{:?}",
            outcome.mismatches
        );
    }

    #[test]
    fn malformed_record_orders_are_typed_errors() {
        let (_, records) = record_run(&small_cell(), ProtocolKind::HalfEps);
        // Missing header.
        assert!(matches!(
            replay_trace(&records[1..], EngineKind::Indexed),
            Err(ReplayError::Malformed { .. })
        ));
        // Missing end marker.
        assert!(matches!(
            replay_trace(&records[..records.len() - 1], EngineKind::Indexed),
            Err(ReplayError::Malformed { .. })
        ));
        // A hole in the step numbering.
        let mut holey = records.clone();
        holey.remove(3);
        assert!(matches!(
            replay_trace(&holey, EngineKind::Indexed),
            Err(ReplayError::Malformed { .. })
        ));
    }

    #[test]
    fn membership_recordings_replay_with_their_events() {
        let mut file = small_cell();
        file.membership = Some(MembershipPlanSpec {
            seed: 0xAB,
            leave_permille: 120,
            downtime: 2,
            min_live: 8,
        });
        let (report, records) = record_run(&file, ProtocolKind::Combined);
        assert_eq!(report.steps, 12);
        let recorded_events: usize = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Step(s) => Some(s.events.len()),
                _ => None,
            })
            .sum();
        assert!(recorded_events > 0, "the churn plan must actually churn");
        let outcome = replay_trace(&records, EngineKind::Deterministic).unwrap();
        assert!(outcome.is_identical(), "{:?}", outcome.mismatches);
    }

    #[test]
    fn example_scenarios_record_and_replay() {
        let mut file = example_scenarios()[1].clone();
        file.spec.steps = 10;
        let (_, records) = record_run(&file, ProtocolKind::Dense);
        let outcome = replay_trace(&records, EngineKind::Indexed).unwrap();
        assert!(outcome.is_identical(), "{:?}", outcome.mismatches);
    }

    #[test]
    fn a_query_set_of_one_replays_every_recording_identically() {
        for protocol in ProtocolKind::ALL {
            let (_, records) = record_run(&small_cell(), protocol);
            let outcome =
                replay_trace_queryset(&records, EngineKind::Indexed).expect("well-formed trace");
            assert!(
                outcome.is_identical(),
                "{}: {:?}",
                protocol.name(),
                outcome.mismatches
            );
            assert_eq!(outcome.steps, 12);
        }
    }

    #[test]
    fn the_query_set_replay_also_reproduces_membership_recordings() {
        let mut file = small_cell();
        file.membership = Some(MembershipPlanSpec {
            seed: 0xAB,
            leave_permille: 120,
            downtime: 2,
            min_live: 8,
        });
        let (_, records) = record_run(&file, ProtocolKind::Combined);
        let outcome = replay_trace_queryset(&records, EngineKind::Deterministic).unwrap();
        assert!(outcome.is_identical(), "{:?}", outcome.mismatches);
    }

    #[test]
    fn the_query_set_replay_detects_tampering_too() {
        let (_, mut records) = record_run(&small_cell(), ProtocolKind::ExactTopK);
        let last_step = records.len() - 2;
        if let TraceRecord::Step(step) = &mut records[last_step] {
            step.messages_total += 1;
        } else {
            panic!("expected a step record before the end marker");
        }
        let outcome = replay_trace_queryset(&records, EngineKind::Indexed).unwrap();
        assert!(!outcome.is_identical());
    }
}
