//! Minimal table type used by the experiment harness.

use serde::Serialize;
use std::fmt;

/// A named table of string cells, printable as aligned text and serialisable to
/// JSON (the format EXPERIMENTS.md quotes).
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentTable {
    /// Experiment identifier, e.g. `"E1"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; every row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> ExperimentTable {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells does not match the number of headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Serialises the table to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("tables serialise")
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {}: {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with two decimals (helper used across the experiments).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_and_serialises() {
        let mut t = ExperimentTable::new("E0", "demo", &["n", "messages"]);
        t.push_row(vec!["16".into(), "3.20".into()]);
        t.push_row(vec!["1024".into(), "4.10".into()]);
        let text = t.to_string();
        assert!(text.contains("E0: demo"));
        assert!(text.contains("messages"));
        assert!(text.contains("1024"));
        let json = t.to_json();
        assert!(json.contains("\"id\": \"E0\""));
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    #[should_panic]
    fn row_width_is_checked() {
        let mut t = ExperimentTable::new("E0", "demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
