//! Binary encodings of the protocol messages.
//!
//! [`WireEncode`]/[`WireDecode`] give every model type a self-delimiting byte
//! representation: enums start with a one-byte tag (the tables below and in
//! `docs/WIRE.md` are normative — tags are append-only across versions),
//! scalars are LEB128 varints, and composite messages concatenate their
//! fields in declaration order. Nothing is length-prefixed at this layer;
//! framing is [`crate::frame`]'s job.
//!
//! | type | tags |
//! |------|------|
//! | [`Violation`] | 0 `FromBelow`, 1 `FromAbove` |
//! | [`NodeGroup`] | 0 `Upper`, 1 `Lower`, 2 `V1`, 3 `V3`, 4 `V2` + flags byte (bit 0 = `s1`, bit 1 = `s2`) |
//! | [`Filter`] | 0 `[lo, ∞)` + `lo`, 1 `[lo, hi]` + `lo` + `hi − lo`, 2 empty |
//! | [`FilterParams`] | 0 `Separator`, 1 `Dense`, 2 `SubDense` |
//! | [`ExistencePredicate`] | 0 `PendingViolation`, 1 `GreaterThan`, 2 `AtLeast`, 3 `LessThan`, 4 `RankWindow` + presence byte |
//! | [`ServerMessage`] | 0 `AssignFilter`, 1 `AssignGroup`, 2 `BroadcastGroup`, 3 `BroadcastParams`, 4 `Probe`, 5 `ExistenceRound`, 6 `EndExistenceRun`, 7 `AssignQueryFilter` + `query` varint + filter |
//! | [`NodeMessage`] | 0 `ValueReport`, 1 `ViolationReport`, 2 `ExistenceResponse` |
//! | [`MembershipEvent`] | 0 `Join`, 1 `Leave` |
//!
//! Bounded filters ship `hi − lo` rather than `hi`: the protocols assign
//! narrow bands around a node's value, so the delta is usually a short
//! varint even when the value itself is large.

use crate::error::WireError;
use crate::varint;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;

/// A cursor over a byte slice that all decoders share.
///
/// The reader tracks how much input is left; decoders pull bytes through
/// [`Reader::u8`] and [`varint::read_u64`] and report [`WireError::Truncated`]
/// with the name of the type being decoded when the slice runs dry.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes }
    }

    /// Number of unconsumed bytes.
    pub fn remaining(&self) -> usize {
        self.bytes.len()
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Pops one byte, blaming `what` on truncation.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when no bytes are left.
    pub fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        match self.bytes.split_first() {
            Some((&b, rest)) => {
                self.bytes = rest;
                Ok(b)
            }
            None => Err(WireError::Truncated { what }),
        }
    }

    /// Reads one varint (convenience wrapper around [`varint::read_u64`]).
    ///
    /// # Errors
    ///
    /// Propagates truncation/overflow from [`varint::read_u64`].
    pub fn u64(&mut self) -> Result<u64, WireError> {
        varint::read_u64(self)
    }
}

/// Types with a binary wire representation.
pub trait WireEncode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// Types decodable from their [`WireEncode`] representation.
pub trait WireDecode: Sized {
    /// Decodes one value from the reader, consuming exactly its bytes.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] describing why the input is not a valid encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh byte vector.
pub fn to_bytes<T: WireEncode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value that must occupy the *entire* slice.
///
/// # Errors
///
/// Decoding errors from [`WireDecode::decode`], or
/// [`WireError::TrailingBytes`] if the value ends before the slice does.
pub fn from_bytes<T: WireDecode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

impl WireEncode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, *self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl WireEncode for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.index() as u64);
    }
}

impl WireDecode for NodeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = r.u64()?;
        usize::try_from(raw)
            .map(NodeId)
            .map_err(|_| WireError::BadTag {
                what: "NodeId (index exceeds usize)",
                tag: 0xff,
            })
    }
}

impl WireEncode for Violation {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            Violation::FromBelow => 0,
            Violation::FromAbove => 1,
        });
    }
}

impl WireDecode for Violation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("Violation")? {
            0 => Ok(Violation::FromBelow),
            1 => Ok(Violation::FromAbove),
            tag => Err(WireError::BadTag {
                what: "Violation",
                tag,
            }),
        }
    }
}

impl WireEncode for NodeGroup {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            NodeGroup::Upper => buf.push(0),
            NodeGroup::Lower => buf.push(1),
            NodeGroup::V1 => buf.push(2),
            NodeGroup::V3 => buf.push(3),
            NodeGroup::V2 { s1, s2 } => {
                buf.push(4);
                buf.push(u8::from(s1) | (u8::from(s2) << 1));
            }
        }
    }
}

impl WireDecode for NodeGroup {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("NodeGroup")? {
            0 => Ok(NodeGroup::Upper),
            1 => Ok(NodeGroup::Lower),
            2 => Ok(NodeGroup::V1),
            3 => Ok(NodeGroup::V3),
            4 => {
                let flags = r.u8("NodeGroup::V2 flags")?;
                if flags > 0b11 {
                    return Err(WireError::BadTag {
                        what: "NodeGroup::V2 flags",
                        tag: flags,
                    });
                }
                Ok(NodeGroup::V2 {
                    s1: flags & 0b01 != 0,
                    s2: flags & 0b10 != 0,
                })
            }
            tag => Err(WireError::BadTag {
                what: "NodeGroup",
                tag,
            }),
        }
    }
}

impl WireEncode for Filter {
    fn encode(&self, buf: &mut Vec<u8>) {
        if self.is_empty() {
            // The canonical empty filter (`Filter::EMPTY`, e.g. the
            // intersection of disjoint query bands) gets its own tag: the
            // `hi − lo` delta of tag 1 cannot represent `lo > hi`.
            buf.push(2);
            return;
        }
        match self.hi() {
            None => {
                buf.push(0);
                varint::write_u64(buf, self.lo());
            }
            Some(hi) => {
                buf.push(1);
                varint::write_u64(buf, self.lo());
                varint::write_u64(buf, hi - self.lo());
            }
        }
    }
}

impl WireDecode for Filter {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("Filter")? {
            0 => Ok(Filter::at_least(r.u64()?)),
            2 => Ok(Filter::EMPTY),
            1 => {
                let lo = r.u64()?;
                let width = r.u64()?;
                let hi = lo.checked_add(width).ok_or(WireError::BadTag {
                    what: "Filter (lo + width overflows)",
                    tag: 1,
                })?;
                Ok(Filter::bounded(lo, hi).expect("lo <= lo + width"))
            }
            tag => Err(WireError::BadTag {
                what: "Filter",
                tag,
            }),
        }
    }
}

impl WireEncode for FilterParams {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            FilterParams::Separator { lo, hi } => {
                buf.push(0);
                varint::write_u64(buf, lo);
                varint::write_u64(buf, hi);
            }
            FilterParams::Dense {
                l_r,
                u_r,
                z_lo,
                z_hi,
            } => {
                buf.push(1);
                for v in [l_r, u_r, z_lo, z_hi] {
                    varint::write_u64(buf, v);
                }
            }
            FilterParams::SubDense {
                l_r,
                l_rp,
                u_rp,
                z_lo,
                z_hi,
            } => {
                buf.push(2);
                for v in [l_r, l_rp, u_rp, z_lo, z_hi] {
                    varint::write_u64(buf, v);
                }
            }
        }
    }
}

impl WireDecode for FilterParams {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("FilterParams")? {
            0 => Ok(FilterParams::Separator {
                lo: r.u64()?,
                hi: r.u64()?,
            }),
            1 => Ok(FilterParams::Dense {
                l_r: r.u64()?,
                u_r: r.u64()?,
                z_lo: r.u64()?,
                z_hi: r.u64()?,
            }),
            2 => Ok(FilterParams::SubDense {
                l_r: r.u64()?,
                l_rp: r.u64()?,
                u_rp: r.u64()?,
                z_lo: r.u64()?,
                z_hi: r.u64()?,
            }),
            tag => Err(WireError::BadTag {
                what: "FilterParams",
                tag,
            }),
        }
    }
}

/// Encodes the optional `(value, id)` rank bound of a `RankWindow`.
fn encode_rank_bound(buf: &mut Vec<u8>, bound: Option<(Value, NodeId)>) {
    if let Some((v, id)) = bound {
        varint::write_u64(buf, v);
        id.encode(buf);
    }
}

fn decode_rank_bound(r: &mut Reader<'_>) -> Result<(Value, NodeId), WireError> {
    Ok((r.u64()?, NodeId::decode(r)?))
}

impl WireEncode for ExistencePredicate {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            ExistencePredicate::PendingViolation => buf.push(0),
            ExistencePredicate::GreaterThan(t) => {
                buf.push(1);
                varint::write_u64(buf, t);
            }
            ExistencePredicate::AtLeast(t) => {
                buf.push(2);
                varint::write_u64(buf, t);
            }
            ExistencePredicate::LessThan(t) => {
                buf.push(3);
                varint::write_u64(buf, t);
            }
            ExistencePredicate::RankWindow { above, below } => {
                buf.push(4);
                buf.push(u8::from(above.is_some()) | (u8::from(below.is_some()) << 1));
                encode_rank_bound(buf, above);
                encode_rank_bound(buf, below);
            }
        }
    }
}

impl WireDecode for ExistencePredicate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("ExistencePredicate")? {
            0 => Ok(ExistencePredicate::PendingViolation),
            1 => Ok(ExistencePredicate::GreaterThan(r.u64()?)),
            2 => Ok(ExistencePredicate::AtLeast(r.u64()?)),
            3 => Ok(ExistencePredicate::LessThan(r.u64()?)),
            4 => {
                let presence = r.u8("RankWindow presence byte")?;
                if presence > 0b11 {
                    return Err(WireError::BadTag {
                        what: "RankWindow presence byte",
                        tag: presence,
                    });
                }
                let above = (presence & 0b01 != 0)
                    .then(|| decode_rank_bound(r))
                    .transpose()?;
                let below = (presence & 0b10 != 0)
                    .then(|| decode_rank_bound(r))
                    .transpose()?;
                Ok(ExistencePredicate::RankWindow { above, below })
            }
            tag => Err(WireError::BadTag {
                what: "ExistencePredicate",
                tag,
            }),
        }
    }
}

impl WireEncode for ServerMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            ServerMessage::AssignFilter(f) => {
                buf.push(0);
                f.encode(buf);
            }
            ServerMessage::AssignGroup(g) => {
                buf.push(1);
                g.encode(buf);
            }
            ServerMessage::BroadcastGroup(g) => {
                buf.push(2);
                g.encode(buf);
            }
            ServerMessage::BroadcastParams(p) => {
                buf.push(3);
                p.encode(buf);
            }
            ServerMessage::Probe => buf.push(4),
            ServerMessage::ExistenceRound {
                round,
                population,
                predicate,
            } => {
                buf.push(5);
                varint::write_u64(buf, u64::from(round));
                varint::write_u64(buf, u64::from(population));
                predicate.encode(buf);
            }
            ServerMessage::EndExistenceRun => buf.push(6),
            ServerMessage::AssignQueryFilter { query, filter } => {
                buf.push(7);
                varint::write_u64(buf, u64::from(query.0));
                filter.encode(buf);
            }
        }
    }
}

/// Reads a varint that must fit in a `u32` (round indexes, populations).
fn read_u32(r: &mut Reader<'_>, what: &'static str) -> Result<u32, WireError> {
    u32::try_from(r.u64()?).map_err(|_| WireError::BadTag { what, tag: 0xff })
}

impl WireDecode for ServerMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("ServerMessage")? {
            0 => Ok(ServerMessage::AssignFilter(Filter::decode(r)?)),
            1 => Ok(ServerMessage::AssignGroup(NodeGroup::decode(r)?)),
            2 => Ok(ServerMessage::BroadcastGroup(NodeGroup::decode(r)?)),
            3 => Ok(ServerMessage::BroadcastParams(FilterParams::decode(r)?)),
            4 => Ok(ServerMessage::Probe),
            5 => Ok(ServerMessage::ExistenceRound {
                round: read_u32(r, "ExistenceRound round (exceeds u32)")?,
                population: read_u32(r, "ExistenceRound population (exceeds u32)")?,
                predicate: ExistencePredicate::decode(r)?,
            }),
            6 => Ok(ServerMessage::EndExistenceRun),
            7 => Ok(ServerMessage::AssignQueryFilter {
                query: QueryId(read_u32(r, "AssignQueryFilter query (exceeds u32)")?),
                filter: Filter::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "ServerMessage",
                tag,
            }),
        }
    }
}

impl WireEncode for NodeMessage {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            NodeMessage::ValueReport { node, value } => {
                buf.push(0);
                node.encode(buf);
                varint::write_u64(buf, value);
            }
            NodeMessage::ViolationReport {
                node,
                value,
                direction,
            } => {
                buf.push(1);
                node.encode(buf);
                varint::write_u64(buf, value);
                direction.encode(buf);
            }
            NodeMessage::ExistenceResponse { node, value } => {
                buf.push(2);
                node.encode(buf);
                varint::write_u64(buf, value);
            }
        }
    }
}

impl WireDecode for NodeMessage {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("NodeMessage")? {
            0 => Ok(NodeMessage::ValueReport {
                node: NodeId::decode(r)?,
                value: r.u64()?,
            }),
            1 => Ok(NodeMessage::ViolationReport {
                node: NodeId::decode(r)?,
                value: r.u64()?,
                direction: Violation::decode(r)?,
            }),
            2 => Ok(NodeMessage::ExistenceResponse {
                node: NodeId::decode(r)?,
                value: r.u64()?,
            }),
            tag => Err(WireError::BadTag {
                what: "NodeMessage",
                tag,
            }),
        }
    }
}

impl WireEncode for MembershipEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            MembershipEvent::Join(node) => {
                buf.push(0);
                node.encode(buf);
            }
            MembershipEvent::Leave(node) => {
                buf.push(1);
                node.encode(buf);
            }
        }
    }
}

impl WireDecode for MembershipEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("MembershipEvent")? {
            0 => Ok(MembershipEvent::Join(NodeId::decode(r)?)),
            1 => Ok(MembershipEvent::Leave(NodeId::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "MembershipEvent",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Round-trips a value and asserts every strict prefix fails to decode.
    ///
    /// The prefix property is what makes the format safe to frame: a decoder
    /// can never mistake a cut-off message for a complete one, because each
    /// variant's field list is fixed once its tag byte is read.
    fn assert_roundtrip<T>(value: &T)
    where
        T: WireEncode + WireDecode + PartialEq + std::fmt::Debug,
    {
        let bytes = to_bytes(value);
        let back: T = from_bytes(&bytes).expect("valid encoding must decode");
        assert_eq!(&back, value);
        for cut in 0..bytes.len() {
            assert!(
                from_bytes::<T>(&bytes[..cut]).is_err(),
                "strict prefix of length {cut} decoded for {value:?}"
            );
        }
        // Trailing garbage after a complete value is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            from_bytes::<T>(&padded),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    /// Deterministic derivation of each message family from three integers,
    /// covering every variant and flag combination as the seeds sweep.
    fn server_message_from(sel: u8, x: u64, y: u64) -> ServerMessage {
        match sel % 8 {
            0 => ServerMessage::AssignFilter(filter_from(x, y)),
            1 => ServerMessage::AssignGroup(group_from(x)),
            2 => ServerMessage::BroadcastGroup(group_from(x)),
            3 => ServerMessage::BroadcastParams(params_from(x, y)),
            4 => ServerMessage::Probe,
            5 => ServerMessage::ExistenceRound {
                round: (x % 40) as u32,
                population: (y % 1_000_000) as u32,
                predicate: predicate_from(x, y),
            },
            6 => ServerMessage::EndExistenceRun,
            _ => ServerMessage::AssignQueryFilter {
                query: QueryId((x % 4096) as u32),
                filter: filter_from(y, x),
            },
        }
    }

    fn node_message_from(sel: u8, x: u64, y: u64) -> NodeMessage {
        let node = NodeId((x % 1_000_000) as usize);
        match sel % 3 {
            0 => NodeMessage::ValueReport { node, value: y },
            1 => NodeMessage::ViolationReport {
                node,
                value: y,
                direction: if x % 2 == 0 {
                    Violation::FromBelow
                } else {
                    Violation::FromAbove
                },
            },
            _ => NodeMessage::ExistenceResponse { node, value: y },
        }
    }

    fn filter_from(x: u64, y: u64) -> Filter {
        match y % 4 {
            0 => Filter::at_least(x),
            1 => Filter::at_most(x),
            2 => Filter::bounded(x.min(y), x.max(y)).unwrap(),
            _ => Filter::EMPTY,
        }
    }

    fn group_from(x: u64) -> NodeGroup {
        match x % 5 {
            0 => NodeGroup::Upper,
            1 => NodeGroup::Lower,
            2 => NodeGroup::V1,
            3 => NodeGroup::V3,
            _ => NodeGroup::V2 {
                s1: x % 2 == 0,
                s2: x % 3 == 0,
            },
        }
    }

    fn params_from(x: u64, y: u64) -> FilterParams {
        match (x ^ y) % 3 {
            0 => FilterParams::Separator { lo: x, hi: y },
            1 => FilterParams::Dense {
                l_r: x,
                u_r: y,
                z_lo: x / 2,
                z_hi: y / 2,
            },
            _ => FilterParams::SubDense {
                l_r: x,
                l_rp: y,
                u_rp: x ^ y,
                z_lo: x / 3,
                z_hi: y / 3,
            },
        }
    }

    fn predicate_from(x: u64, y: u64) -> ExistencePredicate {
        match x.wrapping_add(y) % 5 {
            0 => ExistencePredicate::PendingViolation,
            1 => ExistencePredicate::GreaterThan(x),
            2 => ExistencePredicate::AtLeast(y),
            3 => ExistencePredicate::LessThan(x ^ y),
            _ => ExistencePredicate::RankWindow {
                above: (x % 2 == 0).then_some((x, NodeId((y % 4096) as usize))),
                below: (y % 2 == 0).then_some((y, NodeId((x % 4096) as usize))),
            },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Arbitrary message → encode → decode == original, every strict
        /// prefix rejected — for both message directions and all embedded
        /// payload types (exercised through the message variants).
        #[test]
        fn messages_roundtrip(sel in 0u8..255, x in 0u64..u64::MAX, y in 0u64..u64::MAX) {
            assert_roundtrip(&server_message_from(sel, x, y));
            assert_roundtrip(&node_message_from(sel, x, y));
            assert_roundtrip(&filter_from(x, y));
            assert_roundtrip(&group_from(x));
            assert_roundtrip(&params_from(x, y));
            assert_roundtrip(&predicate_from(x, y));
            let node = NodeId((x % 1_000_000) as usize);
            assert_roundtrip(&if sel % 2 == 0 {
                MembershipEvent::Join(node)
            } else {
                MembershipEvent::Leave(node)
            });
        }

        /// Corrupting the leading tag byte to a value outside the tag table
        /// yields `BadTag`, never a panic or a silent reinterpretation.
        #[test]
        fn out_of_table_tags_are_rejected(x in 0u64..10_000, y in 0u64..10_000) {
            let mut bytes = to_bytes(&server_message_from(0, x, y));
            bytes[0] = 200;
            prop_assert!(matches!(
                from_bytes::<ServerMessage>(&bytes),
                Err(WireError::BadTag { what: "ServerMessage", .. })
            ));
            let mut bytes = to_bytes(&node_message_from(0, x, y));
            bytes[0] = 77;
            prop_assert!(matches!(
                from_bytes::<NodeMessage>(&bytes),
                Err(WireError::BadTag { what: "NodeMessage", .. })
            ));
        }
    }

    #[test]
    fn compactness_matches_the_model_bound() {
        // A small-magnitude message — the steady-state traffic — is a few
        // bytes, far below the serde_json representation the tests use.
        let msg = NodeMessage::ExistenceResponse {
            node: NodeId(7),
            value: 130,
        };
        assert_eq!(to_bytes(&msg).len(), 4); // tag + 1-byte id + 2-byte value
        let probe = ServerMessage::Probe;
        assert_eq!(to_bytes(&probe).len(), 1);
        // The delta encoding keeps narrow bands around large values short.
        let f = Filter::bounded(1_000_000_000, 1_000_000_050).unwrap();
        assert_eq!(to_bytes(&f).len(), 1 + 5 + 1);
    }

    #[test]
    fn v2_flag_bytes_outside_the_two_bits_are_rejected() {
        let mut bytes = to_bytes(&NodeGroup::V2 { s1: true, s2: true });
        assert_eq!(bytes, vec![4, 0b11]);
        bytes[1] = 0b100;
        assert!(matches!(
            from_bytes::<NodeGroup>(&bytes),
            Err(WireError::BadTag {
                what: "NodeGroup::V2 flags",
                tag: 0b100
            })
        ));
    }

    #[test]
    fn empty_filter_has_its_own_tag() {
        let bytes = to_bytes(&Filter::EMPTY);
        assert_eq!(bytes, vec![2]);
        assert_eq!(from_bytes::<Filter>(&bytes).unwrap(), Filter::EMPTY);
        let msg = ServerMessage::AssignQueryFilter {
            query: QueryId(3),
            filter: Filter::EMPTY,
        };
        assert_eq!(to_bytes(&msg), vec![7, 3, 2]);
    }

    #[test]
    fn filter_rejects_overflowing_width() {
        // lo = 2, width = u64::MAX would overflow hi.
        let mut bytes = vec![1];
        varint::write_u64(&mut bytes, 2);
        varint::write_u64(&mut bytes, u64::MAX);
        assert!(from_bytes::<Filter>(&bytes).is_err());
    }

    #[test]
    fn existence_round_rejects_oversized_round_and_population() {
        let mut bytes = vec![5];
        varint::write_u64(&mut bytes, u64::from(u32::MAX) + 1); // round too large
        varint::write_u64(&mut bytes, 8);
        bytes.push(0); // PendingViolation
        assert!(from_bytes::<ServerMessage>(&bytes).is_err());
    }
}
