//! The transport frame: length prefix, header, batched messages.
//!
//! A frame is the unit one socket write/read moves:
//!
//! ```text
//! ┌────────────┬──────────┬───────────┬──────────┬─────────────────┐
//! │ len u32 LE │ magic u8 │ version u8│ kind u8  │ body …          │
//! └────────────┴──────────┴───────────┴──────────┴─────────────────┘
//!               └────────────── len bytes ───────────────────────┘
//! ```
//!
//! `len` counts the payload (magic byte onward) and is bounded by
//! [`MAX_FRAME_LEN`] so a corrupt prefix can never trigger an absurd
//! allocation. The magic byte catches stream desynchronisation immediately;
//! the version byte pins the tag tables (see the versioning rules in
//! `docs/WIRE.md`: tags are append-only within a version, any removal or
//! renumbering bumps [`WIRE_VERSION`], and peers refuse versions they do not
//! speak rather than guessing).
//!
//! One frame batches many model messages: an observation row for a whole
//! node range, a broadcast plus the round schedule, or all replies of an
//! existence round travel as a single frame. The *model* cost accounting is
//! untouched by batching — it is charged by the server per model message,
//! exactly as the in-process engines charge it.
//!
//! Frame kinds (tag byte after the version):
//!
//! | tag | frame | direction | body |
//! |-----|-------|-----------|------|
//! | 0 | [`Frame::Join`] | node → server | shard index, optional max-version byte |
//! | 1 | [`Frame::Batch`] | server → node | flags (bit 0 = reply wanted), seq, op count, [`ServerOp`]s |
//! | 2 | [`Frame::Replies`] | node → server | seq, reply count, [`NodeMessage`]s |
//! | 3 | [`Frame::Shutdown`] | server → node | empty |
//! | 4 | [`Frame::Poll`] | server → node | seq |
//! | 5 | [`Frame::Leave`] | node → server | shard index |
//!
//! The `seq` number pairs each reply with the `wants_reply` batch that asked
//! for it, which is what makes retries safe on a lossy transport: if a
//! `Replies` frame is lost, the server re-requests it with a [`Frame::Poll`]
//! carrying the same `seq`, and a duplicate answer (original and poll answer
//! both arriving) is recognised by its stale `seq` and discarded instead of
//! being mistaken for the answer to the *next* round. Version 1 had no
//! sequence numbers; the layout change is why version 2 exists.
//!
//! Version 3 appends a little-endian CRC32 trailer ([`crate::crc32`]) to
//! every frame payload, covering the magic byte through the last body byte,
//! and adds the [`Frame::Leave`] departure frame plus the
//! [`ServerOp::Membership`] churn op. The trailer is *negotiated*, not
//! assumed: a client advertises its best version in the [`Frame::Join`]
//! handshake (a trailing byte that version-2 encoders simply never wrote —
//! its absence identifies a legacy peer), the server answers every later
//! frame at `min(server, client)`, and the client adopts the version of the
//! first server frame it reads. A version-2 peer on either end therefore
//! keeps working, just without trailers; see `docs/WIRE.md`.
//!
//! Version 4 adds the query-scoped filter assignment
//! (`ServerMessage::AssignQueryFilter`, carrying a `QueryId` varint) used by
//! the multi-query layer. The frame layout is unchanged from version 3 —
//! same CRC32 trailer, same negotiation — and a server only emits the new
//! message tag to peers that negotiated version 4, downgrading to a plain
//! `AssignFilter` otherwise.
//!
//! [`ServerOp`] tags: 0 `ObserveRow`, 1 `ObserveSparse`, 2 `Unicast`,
//! 3 `Broadcast`, 4 `Membership`.
//!
//! [`NodeMessage`]: topk_model::message::NodeMessage

use crate::codec::{from_bytes, Reader, WireDecode, WireEncode};
use crate::crc32::crc32;
use crate::error::WireError;
use crate::varint;
use std::io::{Read, Write};
use topk_model::prelude::*;

/// First payload byte of every frame; catches desynchronised streams.
pub const MAGIC: u8 = 0xC5;

/// Current wire format version. Bump on any change to the frame layout or
/// the tag tables that is not a pure append. Version 2 added reply sequence
/// numbers and the [`Frame::Poll`] retry frame; version 3 added the CRC32
/// payload trailer, [`Frame::Leave`] and [`ServerOp::Membership`]; version 4
/// added the query-scoped filter assignment (`AssignQueryFilter` with its
/// `QueryId` varint).
pub const WIRE_VERSION: u8 = 4;

/// First version that appends the CRC32 payload trailer. Versions 3 and 4
/// share the trailered layout; version 2 is trailerless.
pub const CRC_WIRE_VERSION: u8 = 3;

/// First version that understands the query-scoped filter assignment
/// (`ServerMessage::AssignQueryFilter`). A server downgrades the message to
/// a plain `AssignFilter` for peers that negotiated anything older.
pub const QUERY_WIRE_VERSION: u8 = 4;

/// Oldest version this build still decodes and can be asked to encode.
/// Version-2 frames are identical to version-3 frames minus the CRC32
/// trailer (the version-3 tag additions are pure appends), so supporting
/// both costs one branch in the payload codec.
pub const LEGACY_WIRE_VERSION: u8 = 2;

/// Upper bound on the payload length of a single frame (16 MiB).
///
/// A dense observation row for 10⁶ nodes of near-maximal values is ~10 MB,
/// so this accommodates every frame the engines produce while keeping the
/// damage of a corrupt length prefix bounded.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// One batched operation inside a [`Frame::Batch`].
///
/// The observation variants exist because delivering a time step as `n`
/// individual `Unicast` messages would be absurd on a real transport — the
/// model treats observations as local and free, so the transport ships them
/// as bulk payloads. The unicast/broadcast variants carry exactly the model
/// messages of [`ServerMessage`], one model cost unit each (charged by the
/// server, not by this crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerOp {
    /// Dense observation delivery: `values[i]` is the new value of node
    /// `start + i`. Used by `advance_time` for each shard's contiguous range.
    ObserveRow {
        /// First node id of the contiguous range.
        start: NodeId,
        /// One value per node in the range.
        values: Vec<Value>,
    },
    /// Sparse observation delivery: only the listed nodes observe new values.
    ObserveSparse {
        /// `(node, value)` pairs, in ascending node order.
        changes: Vec<(NodeId, Value)>,
    },
    /// A server → single-node model message (1 downstream-unicast cost unit).
    Unicast {
        /// The receiving node.
        node: NodeId,
        /// The message payload.
        msg: ServerMessage,
    },
    /// A server → all-nodes model message (1 broadcast cost unit; existence
    /// rounds ride this variant and are charged per the Lemma 3.1 schedule).
    Broadcast {
        /// The message payload, delivered to every node of the shard.
        msg: ServerMessage,
    },
    /// Population churn delivery (version 3): the membership events of one
    /// step, applied by the shard client to the slots it hosts. Free at the
    /// model layer — only the recovery replay a `Join` triggers is charged,
    /// and the server charges it, exactly as the in-process engines do.
    Membership {
        /// The events, applied in order.
        events: Vec<MembershipEvent>,
    },
}

impl WireEncode for ServerOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ServerOp::ObserveRow { start, values } => {
                buf.push(0);
                start.encode(buf);
                varint::write_u64(buf, values.len() as u64);
                for &v in values {
                    varint::write_u64(buf, v);
                }
            }
            ServerOp::ObserveSparse { changes } => {
                buf.push(1);
                varint::write_u64(buf, changes.len() as u64);
                for &(node, v) in changes {
                    node.encode(buf);
                    varint::write_u64(buf, v);
                }
            }
            ServerOp::Unicast { node, msg } => {
                buf.push(2);
                node.encode(buf);
                msg.encode(buf);
            }
            ServerOp::Broadcast { msg } => {
                buf.push(3);
                msg.encode(buf);
            }
            ServerOp::Membership { events } => {
                buf.push(4);
                varint::write_u64(buf, events.len() as u64);
                for event in events {
                    event.encode(buf);
                }
            }
        }
    }
}

/// Reads an element count, refusing counts that cannot possibly fit in the
/// remaining input (each element is at least one byte) — so a corrupt count
/// fails fast instead of driving a huge allocation.
fn read_count(r: &mut Reader<'_>, what: &'static str) -> Result<usize, WireError> {
    let count = r.u64()?;
    let count = usize::try_from(count).map_err(|_| WireError::Truncated { what })?;
    if count > r.remaining() {
        return Err(WireError::Truncated { what });
    }
    Ok(count)
}

impl WireDecode for ServerOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("ServerOp")? {
            0 => {
                let start = NodeId::decode(r)?;
                let count = read_count(r, "ObserveRow values")?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(r.u64()?);
                }
                Ok(ServerOp::ObserveRow { start, values })
            }
            1 => {
                let count = read_count(r, "ObserveSparse changes")?;
                let mut changes = Vec::with_capacity(count);
                for _ in 0..count {
                    changes.push((NodeId::decode(r)?, r.u64()?));
                }
                Ok(ServerOp::ObserveSparse { changes })
            }
            2 => Ok(ServerOp::Unicast {
                node: NodeId::decode(r)?,
                msg: ServerMessage::decode(r)?,
            }),
            3 => Ok(ServerOp::Broadcast {
                msg: ServerMessage::decode(r)?,
            }),
            4 => {
                let count = read_count(r, "Membership events")?;
                let mut events = Vec::with_capacity(count);
                for _ in 0..count {
                    events.push(MembershipEvent::decode(r)?);
                }
                Ok(ServerOp::Membership { events })
            }
            tag => Err(WireError::BadTag {
                what: "ServerOp",
                tag,
            }),
        }
    }
}

/// A complete transport frame (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client handshake: "I host shard `shard`, and I speak up to
    /// `max_version`". Sent once per connection, immediately after
    /// connecting, so the server can map accepted connections to node ranges
    /// regardless of accept order. Always framed at
    /// [`LEGACY_WIRE_VERSION`] (the pre-negotiation format every peer
    /// reads); the version byte it carries is what upgrades the rest of the
    /// conversation.
    Join {
        /// The shard index this connection hosts.
        shard: u32,
        /// Best wire version the client speaks. Encoded as a trailing byte
        /// that version-2 encoders never wrote, so its absence marks a
        /// legacy peer and decodes as 2; encoding `2` omits the byte,
        /// keeping the frame byte-identical to a genuine version-2 `Join`.
        max_version: u8,
    },
    /// A batch of server operations for one shard.
    Batch {
        /// Whether the server will block for a [`Frame::Replies`] answer.
        /// Pure command batches (filter updates, observations) are
        /// fire-and-forget — TCP ordering guarantees nodes process them
        /// before any later round.
        wants_reply: bool,
        /// Request sequence number echoed by the matching [`Frame::Replies`].
        /// Strictly increasing per connection for `wants_reply` batches;
        /// fire-and-forget batches carry 0.
        seq: u64,
        /// The operations, applied in order.
        ops: Vec<ServerOp>,
    },
    /// The upstream answer to a `wants_reply` batch: every model message the
    /// shard's nodes produced, in ascending node-id order. May be empty — an
    /// empty reply frame is how a silent existence round looks on the wire.
    Replies {
        /// The `seq` of the [`Frame::Batch`] this answers. Lets the server
        /// discard duplicate answers after a [`Frame::Poll`] retry.
        seq: u64,
        /// The node messages, in ascending node-id order.
        replies: Vec<NodeMessage>,
    },
    /// Orderly connection shutdown (server → node).
    Shutdown,
    /// Retry request (server → node): "re-send the [`Frame::Replies`] for
    /// `seq`". Sent when the answer to a `wants_reply` batch did not arrive
    /// within the server's deadline; the client answers from its retained
    /// copy of the last reply. One model downstream-unicast cost unit,
    /// charged by the server under the recovery label.
    Poll {
        /// The sequence number of the missing reply.
        seq: u64,
    },
    /// Orderly departure announcement (node → server, version 3): the shard
    /// client is closing its connection on purpose. Lets the server tell a
    /// deliberate goodbye from a crashed connection — only the latter is
    /// eligible for the reconnect/backoff path.
    Leave {
        /// The shard index that is departing.
        shard: u32,
    },
}

impl WireEncode for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Join { shard, max_version } => {
                buf.push(0);
                varint::write_u64(buf, u64::from(*shard));
                if *max_version != LEGACY_WIRE_VERSION {
                    buf.push(*max_version);
                }
            }
            Frame::Batch {
                wants_reply,
                seq,
                ops,
            } => {
                buf.push(1);
                buf.push(u8::from(*wants_reply));
                varint::write_u64(buf, *seq);
                varint::write_u64(buf, ops.len() as u64);
                for op in ops {
                    op.encode(buf);
                }
            }
            Frame::Replies { seq, replies } => {
                buf.push(2);
                varint::write_u64(buf, *seq);
                varint::write_u64(buf, replies.len() as u64);
                for reply in replies {
                    reply.encode(buf);
                }
            }
            Frame::Shutdown => buf.push(3),
            Frame::Poll { seq } => {
                buf.push(4);
                varint::write_u64(buf, *seq);
            }
            Frame::Leave { shard } => {
                buf.push(5);
                varint::write_u64(buf, u64::from(*shard));
            }
        }
    }
}

impl WireDecode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("Frame")? {
            0 => {
                let shard = r.u64()?;
                let shard = u32::try_from(shard).map_err(|_| WireError::BadTag {
                    what: "Frame::Join shard (exceeds u32)",
                    tag: 0,
                })?;
                // The trailing version byte arrived with version 3; a
                // version-2 peer's Join simply ends after the shard index.
                // The frame length prefix delimits the body, so absence is
                // unambiguous.
                let max_version = if r.remaining() > 0 {
                    let v = r.u8("Frame::Join max_version")?;
                    if v < LEGACY_WIRE_VERSION {
                        return Err(WireError::BadTag {
                            what: "Frame::Join max_version",
                            tag: v,
                        });
                    }
                    v
                } else {
                    LEGACY_WIRE_VERSION
                };
                Ok(Frame::Join { shard, max_version })
            }
            1 => {
                let flags = r.u8("Frame::Batch flags")?;
                if flags > 1 {
                    return Err(WireError::BadTag {
                        what: "Frame::Batch flags",
                        tag: flags,
                    });
                }
                let seq = r.u64()?;
                let count = read_count(r, "Frame::Batch ops")?;
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    ops.push(ServerOp::decode(r)?);
                }
                Ok(Frame::Batch {
                    wants_reply: flags == 1,
                    seq,
                    ops,
                })
            }
            2 => {
                let seq = r.u64()?;
                let count = read_count(r, "Frame::Replies")?;
                let mut replies = Vec::with_capacity(count);
                for _ in 0..count {
                    replies.push(NodeMessage::decode(r)?);
                }
                Ok(Frame::Replies { seq, replies })
            }
            3 => Ok(Frame::Shutdown),
            4 => Ok(Frame::Poll { seq: r.u64()? }),
            5 => {
                let shard = r.u64()?;
                u32::try_from(shard)
                    .map(|shard| Frame::Leave { shard })
                    .map_err(|_| WireError::BadTag {
                        what: "Frame::Leave shard (exceeds u32)",
                        tag: 5,
                    })
            }
            tag => Err(WireError::BadTag { what: "Frame", tag }),
        }
    }
}

/// Writes one frame (length prefix + header + body) at [`WIRE_VERSION`],
/// with the CRC32 trailer, and flushes.
///
/// Returns the total number of bytes put on the wire, including the length
/// prefix — the quantity the throughput harness's bytes/message metric sums.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the encoded payload exceeds
/// [`MAX_FRAME_LEN`] — refused at the send site, *before* any bytes hit the
/// wire, so an oversized batch surfaces as a typed error here rather than as
/// a bogus corrupt-stream diagnostic on the receiving peer. Otherwise
/// propagates transport errors from the writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, WireError> {
    write_frame_versioned(w, frame, WIRE_VERSION)
}

/// Writes one frame at an explicit wire version — any of
/// [`LEGACY_WIRE_VERSION`]`..=`[`WIRE_VERSION`], as negotiated in the
/// [`Frame::Join`] handshake. Versions from [`CRC_WIRE_VERSION`] on carry
/// the CRC32 trailer; version 2 is trailerless.
///
/// # Errors
///
/// [`WireError::UnsupportedVersion`] for a version this build does not
/// encode; otherwise the same errors as [`write_frame`].
pub fn write_frame_versioned(
    w: &mut impl Write,
    frame: &Frame,
    version: u8,
) -> Result<usize, WireError> {
    if !(LEGACY_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let mut payload = Vec::with_capacity(16);
    payload.push(MAGIC);
    payload.push(version);
    frame.encode(&mut payload);
    if version >= CRC_WIRE_VERSION {
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
    }
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME_LEN fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(4 + payload.len())
}

/// Reads one complete frame, validating length bound, magic and version.
///
/// Returns the frame and the total bytes consumed (including the prefix).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for an oversized length prefix,
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] for a bad
/// header, any decoding error for a corrupt body, and
/// [`WireError::Io`] (typically `UnexpectedEof`) if the stream ends.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    read_frame_versioned(r).map(|(frame, bytes, _)| (frame, bytes))
}

/// Like [`read_frame`], but also returns the frame's version byte — the
/// signal a client uses to adopt the version the server negotiated from its
/// `Join` advertisement.
///
/// # Errors
///
/// The same errors as [`read_frame`].
pub fn read_frame_versioned(r: &mut impl Read) -> Result<(Frame, usize, u8), WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    if len < 3 {
        // magic + version + frame tag are mandatory
        return Err(WireError::Truncated {
            what: "frame header",
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let version = payload[1];
    let frame = decode_payload(&payload)?;
    Ok((frame, 4 + len, version))
}

/// Decodes a complete frame payload (the `len` bytes after the length
/// prefix): validates magic, version and — for version-3+ frames — the
/// CRC32 trailer, then decodes the frame body. Shared by [`read_frame`] and
/// the resumable [`FrameAccumulator`](crate::stream::FrameAccumulator).
///
/// Versions 2 through [`WIRE_VERSION`] are accepted; the version byte
/// decides whether the last four bytes are a checksum trailer or body.
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] for a bad
/// header, [`WireError::Truncated`] for a payload too short to hold one,
/// [`WireError::ChecksumMismatch`] for a version-3+ payload whose trailer
/// disagrees with its bytes, and any decoding error for a corrupt body.
pub(crate) fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    if payload.len() < 3 {
        // magic + version + frame tag are mandatory
        return Err(WireError::Truncated {
            what: "frame header",
        });
    }
    let magic = payload[0];
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = payload[1];
    let body = match version {
        LEGACY_WIRE_VERSION => &payload[2..],
        v if (CRC_WIRE_VERSION..=WIRE_VERSION).contains(&v) => {
            // magic + version + tag + 4-byte trailer is the minimum.
            if payload.len() < 7 {
                return Err(WireError::Truncated {
                    what: "frame checksum trailer",
                });
            }
            let split = payload.len() - 4;
            let found = u32::from_le_bytes(payload[split..].try_into().expect("4 bytes"));
            let expected = crc32(&payload[..split]);
            if found != expected {
                return Err(WireError::ChecksumMismatch { expected, found });
            }
            &payload[2..split]
        }
        _ => return Err(WireError::UnsupportedVersion { found: version }),
    };
    from_bytes::<Frame>(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use topk_model::message::ExistencePredicate;

    fn roundtrip_frame(frame: &Frame) {
        // Every negotiable version must carry every frame; versions 3 and 4
        // grow a 4-byte trailer, version 2 is the legacy trailerless layout.
        for version in [LEGACY_WIRE_VERSION, CRC_WIRE_VERSION, WIRE_VERSION] {
            let mut wire = Vec::new();
            let written = write_frame_versioned(&mut wire, frame, version).unwrap();
            assert_eq!(written, wire.len());
            let mut cursor = &wire[..];
            let (back, consumed) = read_frame(&mut cursor).unwrap();
            assert_eq!(&back, frame);
            assert_eq!(consumed, written);
            assert!(cursor.is_empty());
            // Every strict prefix of the wire bytes fails (EOF or truncation).
            for cut in 0..wire.len() {
                let mut cursor = &wire[..cut];
                assert!(
                    read_frame(&mut cursor).is_err(),
                    "prefix {cut} decoded (version {version})"
                );
            }
        }
    }

    fn sample_ops(x: u64, y: u64) -> Vec<ServerOp> {
        vec![
            ServerOp::ObserveRow {
                start: NodeId((x % 1000) as usize),
                values: vec![x, y, x ^ y, 0, u64::MAX],
            },
            ServerOp::ObserveSparse {
                changes: vec![(NodeId(1), x), (NodeId((y % 100) as usize), y)],
            },
            ServerOp::Unicast {
                node: NodeId(3),
                msg: ServerMessage::Probe,
            },
            ServerOp::Unicast {
                node: NodeId(5),
                msg: ServerMessage::AssignQueryFilter {
                    query: QueryId((x % 128) as u32),
                    filter: Filter::at_least(y),
                },
            },
            ServerOp::Broadcast {
                msg: ServerMessage::ExistenceRound {
                    round: (x % 33) as u32,
                    population: (y % 1_000_000) as u32,
                    predicate: ExistencePredicate::GreaterThan(x),
                },
            },
            ServerOp::Membership {
                events: vec![
                    MembershipEvent::Leave(NodeId((x % 64) as usize)),
                    MembershipEvent::Join(NodeId((y % 64) as usize)),
                ],
            },
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Frames of every kind survive the write → read loop and reject all
        /// strict byte prefixes.
        #[test]
        fn frames_roundtrip(x in 0u64..u64::MAX, y in 0u64..u64::MAX, shard in 0u32..4096) {
            roundtrip_frame(&Frame::Join { shard, max_version: LEGACY_WIRE_VERSION });
            roundtrip_frame(&Frame::Join { shard, max_version: CRC_WIRE_VERSION });
            roundtrip_frame(&Frame::Join { shard, max_version: WIRE_VERSION });
            roundtrip_frame(&Frame::Leave { shard });
            roundtrip_frame(&Frame::Shutdown);
            roundtrip_frame(&Frame::Poll { seq: x });
            roundtrip_frame(&Frame::Batch { wants_reply: x % 2 == 0, seq: y, ops: sample_ops(x, y) });
            roundtrip_frame(&Frame::Batch { wants_reply: true, seq: 0, ops: Vec::new() });
            roundtrip_frame(&Frame::Replies { seq: x, replies: vec![
                NodeMessage::ValueReport { node: NodeId((x % 9999) as usize), value: y },
                NodeMessage::ViolationReport {
                    node: NodeId(0),
                    value: x,
                    direction: Violation::FromAbove,
                },
            ]});
            roundtrip_frame(&Frame::Replies { seq: u64::MAX, replies: Vec::new() });
        }
    }

    #[test]
    fn oversized_frames_are_refused_at_the_send_site() {
        // ~20 MB of maximal varints exceeds the 16 MiB payload bound; the
        // writer must refuse with a typed error and put nothing on the wire.
        let frame = Frame::Batch {
            wants_reply: false,
            seq: 0,
            ops: vec![ServerOp::ObserveRow {
                start: NodeId(0),
                values: vec![u64::MAX; 2_000_000],
            }],
        };
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &frame),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(wire.is_empty(), "no bytes may precede the error");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_refused() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Shutdown).unwrap();
        let mut corrupted = wire.clone();
        corrupted[4] = 0x00; // magic byte
        assert!(matches!(
            read_frame(&mut &corrupted[..]),
            Err(WireError::BadMagic { found: 0x00 })
        ));
        let mut corrupted = wire.clone();
        corrupted[5] = WIRE_VERSION + 1;
        assert!(matches!(
            read_frame(&mut &corrupted[..]),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn trailing_garbage_inside_a_frame_is_refused() {
        // Grow the declared length by one and append a stray byte. On a
        // legacy frame the body decoder notices the unconsumed byte; on a
        // version-3 frame the stray byte shifts the trailer window, so the
        // checksum catches it first. Either way the frame is refused.
        let mut wire = Vec::new();
        write_frame_versioned(&mut wire, &Frame::Shutdown, LEGACY_WIRE_VERSION).unwrap();
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap());
        wire[..4].copy_from_slice(&(len + 1).to_le_bytes());
        wire.push(0xAB);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Shutdown).unwrap();
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap());
        wire[..4].copy_from_slice(&(len + 1).to_le_bytes());
        wire.push(0xAB);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn undersized_frames_are_refused() {
        // Declared length 2 cannot hold magic + version + tag.
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[MAGIC, WIRE_VERSION]);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_counts_fail_fast() {
        // A Replies frame claiming 2^40 replies in a 16-byte body must fail
        // on the count check, not attempt the allocation — even when its
        // checksum trailer is valid, so corruption *hidden from* the CRC
        // (a malicious peer) still cannot drive an allocation.
        let mut body = vec![2u8]; // Replies tag
        varint::write_u64(&mut body, 7); // seq
        varint::write_u64(&mut body, 1 << 40);
        let mut payload = vec![MAGIC, WIRE_VERSION];
        payload.extend_from_slice(&body);
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_trailer_or_body_is_refused_with_a_checksum_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Poll { seq: 0xDEAD }).unwrap();
        // Every byte after magic and version is covered: body bytes because
        // the CRC is computed over them, trailer bytes because they *are*
        // the CRC. Flip each in turn.
        for i in 6..wire.len() {
            let mut corrupted = wire.clone();
            corrupted[i] ^= 0x40;
            assert!(
                matches!(
                    read_frame(&mut &corrupted[..]),
                    Err(WireError::ChecksumMismatch { .. })
                ),
                "flipping byte {i} must trip the checksum"
            );
        }
    }

    proptest! {
        /// Any single-byte corruption anywhere in a version-3 payload is
        /// refused — magic and version corruption by the header checks,
        /// everything else by the CRC32 trailer. Truncating the trailer
        /// itself is refused as a truncation, not decoded as a shorter body.
        #[test]
        fn corrupted_v3_frames_never_decode(seq in 0u64..u64::MAX, mask in 1u32..256) {
            let mask = mask as u8;
            let mut wire = Vec::new();
            write_frame(&mut wire, &Frame::Poll { seq }).unwrap();
            for i in 4..wire.len() {
                let mut corrupted = wire.clone();
                corrupted[i] ^= mask;
                prop_assert!(
                    read_frame(&mut &corrupted[..]).is_err(),
                    "payload byte {i} xor {mask:#04x} decoded"
                );
            }
            // A v3 frame whose trailer is cut off mid-way: shrink the
            // declared length by two so the payload ends inside the CRC.
            let mut truncated = wire.clone();
            let len = u32::from_le_bytes(truncated[..4].try_into().unwrap());
            truncated[..4].copy_from_slice(&(len - 2).to_le_bytes());
            truncated.truncate(truncated.len() - 2);
            prop_assert!(read_frame(&mut &truncated[..]).is_err());
        }
    }

    #[test]
    fn legacy_join_encoding_is_byte_identical() {
        // A Join advertising only version 2 must be indistinguishable from a
        // genuine version-2 peer's handshake: same trailerless framing, no
        // version byte in the body.
        let mut ours = Vec::new();
        write_frame_versioned(
            &mut ours,
            &Frame::Join {
                shard: 7,
                max_version: LEGACY_WIRE_VERSION,
            },
            LEGACY_WIRE_VERSION,
        )
        .unwrap();
        let legacy_payload = vec![MAGIC, LEGACY_WIRE_VERSION, 0u8, 7u8];
        let mut legacy = (legacy_payload.len() as u32).to_le_bytes().to_vec();
        legacy.extend_from_slice(&legacy_payload);
        assert_eq!(ours, legacy);
    }

    #[test]
    fn join_negotiation_byte_upgrades_and_its_absence_means_legacy() {
        // A v3 client frames its Join at the legacy version (so any server
        // reads it) but advertises 3 in the body.
        let mut wire = Vec::new();
        write_frame_versioned(
            &mut wire,
            &Frame::Join {
                shard: 2,
                max_version: WIRE_VERSION,
            },
            LEGACY_WIRE_VERSION,
        )
        .unwrap();
        let (frame, _) = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(
            frame,
            Frame::Join {
                shard: 2,
                max_version: WIRE_VERSION
            }
        );
        // A hand-built legacy Join (no version byte) decodes as version 2.
        let payload = vec![MAGIC, LEGACY_WIRE_VERSION, 0u8, 2u8];
        let mut legacy = (payload.len() as u32).to_le_bytes().to_vec();
        legacy.extend_from_slice(&payload);
        let (frame, _) = read_frame(&mut &legacy[..]).unwrap();
        assert_eq!(
            frame,
            Frame::Join {
                shard: 2,
                max_version: LEGACY_WIRE_VERSION
            }
        );
    }

    #[test]
    fn unknown_write_versions_are_refused() {
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame_versioned(&mut wire, &Frame::Shutdown, WIRE_VERSION + 1),
            Err(WireError::UnsupportedVersion { .. })
        ));
        assert!(wire.is_empty());
    }
}
