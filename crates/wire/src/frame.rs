//! The transport frame: length prefix, header, batched messages.
//!
//! A frame is the unit one socket write/read moves:
//!
//! ```text
//! ┌────────────┬──────────┬───────────┬──────────┬─────────────────┐
//! │ len u32 LE │ magic u8 │ version u8│ kind u8  │ body …          │
//! └────────────┴──────────┴───────────┴──────────┴─────────────────┘
//!               └────────────── len bytes ───────────────────────┘
//! ```
//!
//! `len` counts the payload (magic byte onward) and is bounded by
//! [`MAX_FRAME_LEN`] so a corrupt prefix can never trigger an absurd
//! allocation. The magic byte catches stream desynchronisation immediately;
//! the version byte pins the tag tables (see the versioning rules in
//! `docs/WIRE.md`: tags are append-only within a version, any removal or
//! renumbering bumps [`WIRE_VERSION`], and peers refuse versions they do not
//! speak rather than guessing).
//!
//! One frame batches many model messages: an observation row for a whole
//! node range, a broadcast plus the round schedule, or all replies of an
//! existence round travel as a single frame. The *model* cost accounting is
//! untouched by batching — it is charged by the server per model message,
//! exactly as the in-process engines charge it.
//!
//! Frame kinds (tag byte after the version):
//!
//! | tag | frame | direction | body |
//! |-----|-------|-----------|------|
//! | 0 | [`Frame::Join`] | node → server | shard index |
//! | 1 | [`Frame::Batch`] | server → node | flags (bit 0 = reply wanted), seq, op count, [`ServerOp`]s |
//! | 2 | [`Frame::Replies`] | node → server | seq, reply count, [`NodeMessage`]s |
//! | 3 | [`Frame::Shutdown`] | server → node | empty |
//! | 4 | [`Frame::Poll`] | server → node | seq |
//!
//! The `seq` number pairs each reply with the `wants_reply` batch that asked
//! for it, which is what makes retries safe on a lossy transport: if a
//! `Replies` frame is lost, the server re-requests it with a [`Frame::Poll`]
//! carrying the same `seq`, and a duplicate answer (original and poll answer
//! both arriving) is recognised by its stale `seq` and discarded instead of
//! being mistaken for the answer to the *next* round. Version 1 had no
//! sequence numbers; the layout change is why [`WIRE_VERSION`] is 2.
//!
//! [`ServerOp`] tags: 0 `ObserveRow`, 1 `ObserveSparse`, 2 `Unicast`,
//! 3 `Broadcast`.
//!
//! [`NodeMessage`]: topk_model::message::NodeMessage

use crate::codec::{from_bytes, Reader, WireDecode, WireEncode};
use crate::error::WireError;
use crate::varint;
use std::io::{Read, Write};
use topk_model::prelude::*;

/// First payload byte of every frame; catches desynchronised streams.
pub const MAGIC: u8 = 0xC5;

/// Current wire format version. Bump on any change to the frame layout or
/// the tag tables that is not a pure append. Version 2 added reply sequence
/// numbers and the [`Frame::Poll`] retry frame.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on the payload length of a single frame (16 MiB).
///
/// A dense observation row for 10⁶ nodes of near-maximal values is ~10 MB,
/// so this accommodates every frame the engines produce while keeping the
/// damage of a corrupt length prefix bounded.
pub const MAX_FRAME_LEN: usize = 16 << 20;

/// One batched operation inside a [`Frame::Batch`].
///
/// The observation variants exist because delivering a time step as `n`
/// individual `Unicast` messages would be absurd on a real transport — the
/// model treats observations as local and free, so the transport ships them
/// as bulk payloads. The unicast/broadcast variants carry exactly the model
/// messages of [`ServerMessage`], one model cost unit each (charged by the
/// server, not by this crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerOp {
    /// Dense observation delivery: `values[i]` is the new value of node
    /// `start + i`. Used by `advance_time` for each shard's contiguous range.
    ObserveRow {
        /// First node id of the contiguous range.
        start: NodeId,
        /// One value per node in the range.
        values: Vec<Value>,
    },
    /// Sparse observation delivery: only the listed nodes observe new values.
    ObserveSparse {
        /// `(node, value)` pairs, in ascending node order.
        changes: Vec<(NodeId, Value)>,
    },
    /// A server → single-node model message (1 downstream-unicast cost unit).
    Unicast {
        /// The receiving node.
        node: NodeId,
        /// The message payload.
        msg: ServerMessage,
    },
    /// A server → all-nodes model message (1 broadcast cost unit; existence
    /// rounds ride this variant and are charged per the Lemma 3.1 schedule).
    Broadcast {
        /// The message payload, delivered to every node of the shard.
        msg: ServerMessage,
    },
}

impl WireEncode for ServerOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ServerOp::ObserveRow { start, values } => {
                buf.push(0);
                start.encode(buf);
                varint::write_u64(buf, values.len() as u64);
                for &v in values {
                    varint::write_u64(buf, v);
                }
            }
            ServerOp::ObserveSparse { changes } => {
                buf.push(1);
                varint::write_u64(buf, changes.len() as u64);
                for &(node, v) in changes {
                    node.encode(buf);
                    varint::write_u64(buf, v);
                }
            }
            ServerOp::Unicast { node, msg } => {
                buf.push(2);
                node.encode(buf);
                msg.encode(buf);
            }
            ServerOp::Broadcast { msg } => {
                buf.push(3);
                msg.encode(buf);
            }
        }
    }
}

/// Reads an element count, refusing counts that cannot possibly fit in the
/// remaining input (each element is at least one byte) — so a corrupt count
/// fails fast instead of driving a huge allocation.
fn read_count(r: &mut Reader<'_>, what: &'static str) -> Result<usize, WireError> {
    let count = r.u64()?;
    let count = usize::try_from(count).map_err(|_| WireError::Truncated { what })?;
    if count > r.remaining() {
        return Err(WireError::Truncated { what });
    }
    Ok(count)
}

impl WireDecode for ServerOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("ServerOp")? {
            0 => {
                let start = NodeId::decode(r)?;
                let count = read_count(r, "ObserveRow values")?;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(r.u64()?);
                }
                Ok(ServerOp::ObserveRow { start, values })
            }
            1 => {
                let count = read_count(r, "ObserveSparse changes")?;
                let mut changes = Vec::with_capacity(count);
                for _ in 0..count {
                    changes.push((NodeId::decode(r)?, r.u64()?));
                }
                Ok(ServerOp::ObserveSparse { changes })
            }
            2 => Ok(ServerOp::Unicast {
                node: NodeId::decode(r)?,
                msg: ServerMessage::decode(r)?,
            }),
            3 => Ok(ServerOp::Broadcast {
                msg: ServerMessage::decode(r)?,
            }),
            tag => Err(WireError::BadTag {
                what: "ServerOp",
                tag,
            }),
        }
    }
}

/// A complete transport frame (see the module docs for the layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client handshake: "I host shard `shard`". Sent once per connection,
    /// immediately after connecting, so the server can map accepted
    /// connections to node ranges regardless of accept order.
    Join {
        /// The shard index this connection hosts.
        shard: u32,
    },
    /// A batch of server operations for one shard.
    Batch {
        /// Whether the server will block for a [`Frame::Replies`] answer.
        /// Pure command batches (filter updates, observations) are
        /// fire-and-forget — TCP ordering guarantees nodes process them
        /// before any later round.
        wants_reply: bool,
        /// Request sequence number echoed by the matching [`Frame::Replies`].
        /// Strictly increasing per connection for `wants_reply` batches;
        /// fire-and-forget batches carry 0.
        seq: u64,
        /// The operations, applied in order.
        ops: Vec<ServerOp>,
    },
    /// The upstream answer to a `wants_reply` batch: every model message the
    /// shard's nodes produced, in ascending node-id order. May be empty — an
    /// empty reply frame is how a silent existence round looks on the wire.
    Replies {
        /// The `seq` of the [`Frame::Batch`] this answers. Lets the server
        /// discard duplicate answers after a [`Frame::Poll`] retry.
        seq: u64,
        /// The node messages, in ascending node-id order.
        replies: Vec<NodeMessage>,
    },
    /// Orderly connection shutdown (server → node).
    Shutdown,
    /// Retry request (server → node): "re-send the [`Frame::Replies`] for
    /// `seq`". Sent when the answer to a `wants_reply` batch did not arrive
    /// within the server's deadline; the client answers from its retained
    /// copy of the last reply. One model downstream-unicast cost unit,
    /// charged by the server under the recovery label.
    Poll {
        /// The sequence number of the missing reply.
        seq: u64,
    },
}

impl WireEncode for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Join { shard } => {
                buf.push(0);
                varint::write_u64(buf, u64::from(*shard));
            }
            Frame::Batch {
                wants_reply,
                seq,
                ops,
            } => {
                buf.push(1);
                buf.push(u8::from(*wants_reply));
                varint::write_u64(buf, *seq);
                varint::write_u64(buf, ops.len() as u64);
                for op in ops {
                    op.encode(buf);
                }
            }
            Frame::Replies { seq, replies } => {
                buf.push(2);
                varint::write_u64(buf, *seq);
                varint::write_u64(buf, replies.len() as u64);
                for reply in replies {
                    reply.encode(buf);
                }
            }
            Frame::Shutdown => buf.push(3),
            Frame::Poll { seq } => {
                buf.push(4);
                varint::write_u64(buf, *seq);
            }
        }
    }
}

impl WireDecode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("Frame")? {
            0 => {
                let shard = r.u64()?;
                u32::try_from(shard)
                    .map(|shard| Frame::Join { shard })
                    .map_err(|_| WireError::BadTag {
                        what: "Frame::Join shard (exceeds u32)",
                        tag: 0,
                    })
            }
            1 => {
                let flags = r.u8("Frame::Batch flags")?;
                if flags > 1 {
                    return Err(WireError::BadTag {
                        what: "Frame::Batch flags",
                        tag: flags,
                    });
                }
                let seq = r.u64()?;
                let count = read_count(r, "Frame::Batch ops")?;
                let mut ops = Vec::with_capacity(count);
                for _ in 0..count {
                    ops.push(ServerOp::decode(r)?);
                }
                Ok(Frame::Batch {
                    wants_reply: flags == 1,
                    seq,
                    ops,
                })
            }
            2 => {
                let seq = r.u64()?;
                let count = read_count(r, "Frame::Replies")?;
                let mut replies = Vec::with_capacity(count);
                for _ in 0..count {
                    replies.push(NodeMessage::decode(r)?);
                }
                Ok(Frame::Replies { seq, replies })
            }
            3 => Ok(Frame::Shutdown),
            4 => Ok(Frame::Poll { seq: r.u64()? }),
            tag => Err(WireError::BadTag { what: "Frame", tag }),
        }
    }
}

/// Writes one frame (length prefix + header + body) and flushes.
///
/// Returns the total number of bytes put on the wire, including the length
/// prefix — the quantity the throughput harness's bytes/message metric sums.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the encoded payload exceeds
/// [`MAX_FRAME_LEN`] — refused at the send site, *before* any bytes hit the
/// wire, so an oversized batch surfaces as a typed error here rather than as
/// a bogus corrupt-stream diagnostic on the receiving peer. Otherwise
/// propagates transport errors from the writer.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<usize, WireError> {
    let mut payload = Vec::with_capacity(16);
    payload.push(MAGIC);
    payload.push(WIRE_VERSION);
    frame.encode(&mut payload);
    if payload.len() > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    let len = u32::try_from(payload.len()).expect("MAX_FRAME_LEN fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(4 + payload.len())
}

/// Reads one complete frame, validating length bound, magic and version.
///
/// Returns the frame and the total bytes consumed (including the prefix).
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for an oversized length prefix,
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] for a bad
/// header, any decoding error for a corrupt body, and
/// [`WireError::Io`] (typically `UnexpectedEof`) if the stream ends.
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, usize), WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    if len < 3 {
        // magic + version + frame tag are mandatory
        return Err(WireError::Truncated {
            what: "frame header",
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let frame = decode_payload(&payload)?;
    Ok((frame, 4 + len))
}

/// Decodes a complete frame payload (the `len` bytes after the length
/// prefix): validates magic and version, then decodes the frame body.
/// Shared by [`read_frame`] and the resumable
/// [`FrameAccumulator`](crate::stream::FrameAccumulator).
///
/// # Errors
///
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] for a bad
/// header, [`WireError::Truncated`] for a payload too short to hold one, and
/// any decoding error for a corrupt body.
pub(crate) fn decode_payload(payload: &[u8]) -> Result<Frame, WireError> {
    if payload.len() < 3 {
        // magic + version + frame tag are mandatory
        return Err(WireError::Truncated {
            what: "frame header",
        });
    }
    let magic = payload[0];
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = payload[1];
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    from_bytes::<Frame>(&payload[2..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use topk_model::message::ExistencePredicate;

    fn roundtrip_frame(frame: &Frame) {
        let mut wire = Vec::new();
        let written = write_frame(&mut wire, frame).unwrap();
        assert_eq!(written, wire.len());
        let mut cursor = &wire[..];
        let (back, consumed) = read_frame(&mut cursor).unwrap();
        assert_eq!(&back, frame);
        assert_eq!(consumed, written);
        assert!(cursor.is_empty());
        // Every strict prefix of the wire bytes fails (EOF or truncation).
        for cut in 0..wire.len() {
            let mut cursor = &wire[..cut];
            assert!(read_frame(&mut cursor).is_err(), "prefix {cut} decoded");
        }
    }

    fn sample_ops(x: u64, y: u64) -> Vec<ServerOp> {
        vec![
            ServerOp::ObserveRow {
                start: NodeId((x % 1000) as usize),
                values: vec![x, y, x ^ y, 0, u64::MAX],
            },
            ServerOp::ObserveSparse {
                changes: vec![(NodeId(1), x), (NodeId((y % 100) as usize), y)],
            },
            ServerOp::Unicast {
                node: NodeId(3),
                msg: ServerMessage::Probe,
            },
            ServerOp::Broadcast {
                msg: ServerMessage::ExistenceRound {
                    round: (x % 33) as u32,
                    population: (y % 1_000_000) as u32,
                    predicate: ExistencePredicate::GreaterThan(x),
                },
            },
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Frames of every kind survive the write → read loop and reject all
        /// strict byte prefixes.
        #[test]
        fn frames_roundtrip(x in 0u64..u64::MAX, y in 0u64..u64::MAX, shard in 0u32..4096) {
            roundtrip_frame(&Frame::Join { shard });
            roundtrip_frame(&Frame::Shutdown);
            roundtrip_frame(&Frame::Poll { seq: x });
            roundtrip_frame(&Frame::Batch { wants_reply: x % 2 == 0, seq: y, ops: sample_ops(x, y) });
            roundtrip_frame(&Frame::Batch { wants_reply: true, seq: 0, ops: Vec::new() });
            roundtrip_frame(&Frame::Replies { seq: x, replies: vec![
                NodeMessage::ValueReport { node: NodeId((x % 9999) as usize), value: y },
                NodeMessage::ViolationReport {
                    node: NodeId(0),
                    value: x,
                    direction: Violation::FromAbove,
                },
            ]});
            roundtrip_frame(&Frame::Replies { seq: u64::MAX, replies: Vec::new() });
        }
    }

    #[test]
    fn oversized_frames_are_refused_at_the_send_site() {
        // ~20 MB of maximal varints exceeds the 16 MiB payload bound; the
        // writer must refuse with a typed error and put nothing on the wire.
        let frame = Frame::Batch {
            wants_reply: false,
            seq: 0,
            ops: vec![ServerOp::ObserveRow {
                start: NodeId(0),
                values: vec![u64::MAX; 2_000_000],
            }],
        };
        let mut wire = Vec::new();
        assert!(matches!(
            write_frame(&mut wire, &frame),
            Err(WireError::FrameTooLarge { .. })
        ));
        assert!(wire.is_empty(), "no bytes may precede the error");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 64]);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_refused() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Shutdown).unwrap();
        let mut corrupted = wire.clone();
        corrupted[4] = 0x00; // magic byte
        assert!(matches!(
            read_frame(&mut &corrupted[..]),
            Err(WireError::BadMagic { found: 0x00 })
        ));
        let mut corrupted = wire.clone();
        corrupted[5] = WIRE_VERSION + 1;
        assert!(matches!(
            read_frame(&mut &corrupted[..]),
            Err(WireError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn trailing_garbage_inside_a_frame_is_refused() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Shutdown).unwrap();
        // Grow the declared length by one and append a stray byte: the frame
        // decoder must notice the unconsumed byte.
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap());
        wire[..4].copy_from_slice(&(len + 1).to_le_bytes());
        wire.push(0xAB);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn undersized_frames_are_refused() {
        // Declared length 2 cannot hold magic + version + tag.
        let mut wire = Vec::new();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.extend_from_slice(&[MAGIC, WIRE_VERSION]);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_counts_fail_fast() {
        // A Replies frame claiming 2^40 replies in a 16-byte body must fail
        // on the count check, not attempt the allocation.
        let mut body = vec![2u8]; // Replies tag
        varint::write_u64(&mut body, 7); // seq
        varint::write_u64(&mut body, 1 << 40);
        let mut payload = vec![MAGIC, WIRE_VERSION];
        payload.extend_from_slice(&body);
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert!(matches!(
            read_frame(&mut &wire[..]),
            Err(WireError::Truncated { .. })
        ));
    }
}
