//! Decoding and framing errors.
//!
//! Every way a byte stream can fail to parse maps to one [`WireError`]
//! variant; decoding never panics on untrusted input. The differential and
//! round-trip test batteries assert the *specific* variant, so error paths
//! are part of the wire contract, not an afterthought.

use std::fmt;
use std::io;

/// Everything that can go wrong while decoding wire bytes or reading frames.
#[derive(Debug)]
pub enum WireError {
    /// The input ended in the middle of a field or frame.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// An enum tag byte holds a value outside the tag table.
    BadTag {
        /// The type whose tag table was violated.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The frame payload does not start with [`crate::frame::MAGIC`].
    BadMagic {
        /// The byte found where the magic byte belongs.
        found: u8,
    },
    /// The frame's version byte names a format this build does not speak
    /// (see the versioning rules in `docs/WIRE.md`).
    UnsupportedVersion {
        /// The version byte found in the frame.
        found: u8,
    },
    /// A value decoded fine but left undecoded bytes behind — the encoding
    /// is self-delimiting, so trailing garbage means a framing bug.
    TrailingBytes {
        /// Number of bytes left unconsumed.
        remaining: usize,
    },
    /// A varint ran longer than the 10 bytes a `u64` can need.
    VarintOverflow,
    /// A frame's length prefix exceeds [`crate::frame::MAX_FRAME_LEN`]
    /// (refused *before* allocating, so a corrupt prefix cannot trigger a
    /// multi-gigabyte allocation).
    FrameTooLarge {
        /// The declared payload length.
        len: u64,
    },
    /// A version-3 frame's CRC32 trailer does not match its payload — some
    /// byte between the magic and the trailer was corrupted in flight.
    ChecksumMismatch {
        /// The CRC32 recomputed over the received payload.
        expected: u32,
        /// The CRC32 carried in the frame trailer.
        found: u32,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "input truncated while decoding {what}"),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag:#04x} for {what}"),
            WireError::BadMagic { found } => {
                write!(
                    f,
                    "frame does not start with the magic byte (found {found:#04x})"
                )
            }
            WireError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire format version {found}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after a complete value")
            }
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes (u64 overflow)"),
            WireError::FrameTooLarge { len } => write!(
                f,
                "frame length {len} exceeds the {} byte limit",
                crate::frame::MAX_FRAME_LEN
            ),
            WireError::ChecksumMismatch { expected, found } => write!(
                f,
                "frame checksum mismatch: computed {expected:#010x}, trailer says {found:#010x}"
            ),
            WireError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(WireError, &str)> = vec![
            (WireError::Truncated { what: "Filter" }, "Filter"),
            (
                WireError::BadTag {
                    what: "NodeGroup",
                    tag: 9,
                },
                "0x09",
            ),
            (WireError::BadMagic { found: 0x00 }, "magic"),
            (WireError::UnsupportedVersion { found: 7 }, "version 7"),
            (WireError::TrailingBytes { remaining: 3 }, "3 trailing"),
            (WireError::VarintOverflow, "varint"),
            (WireError::FrameTooLarge { len: 1 << 40 }, "limit"),
            (
                WireError::ChecksumMismatch {
                    expected: 0xDEAD_BEEF,
                    found: 0,
                },
                "0xdeadbeef",
            ),
            (
                WireError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "gone")),
                "gone",
            ),
        ];
        for (err, needle) in cases {
            let s = err.to_string();
            assert!(s.contains(needle), "{s:?} should mention {needle:?}");
        }
    }

    #[test]
    fn io_errors_keep_their_source() {
        let err = WireError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&WireError::VarintOverflow).is_none());
    }
}
