//! Versioned record-stream codec for captured runs ("traces").
//!
//! A trace is the byte-level replay input of one monitored run: everything a
//! driver fed into an engine (observed rows, membership events) together with
//! everything the engine answered (outputs, validity verdicts, cumulative
//! message counts) and the final state the run ended in. Re-driving the same
//! rows and events through any engine must reproduce the recorded answers
//! bit-for-bit — `topk_bench::replay` builds that differential on top of this
//! codec, and `tests/traces/` commits a golden corpus of such streams.
//!
//! ## Stream layout
//!
//! A trace file is a flat sequence of records; each record is framed exactly
//! like a version-3 protocol frame (see `docs/WIRE.md`):
//!
//! ```text
//! | len: u32 LE | payload (len bytes) |
//!   payload = magic 0xC7 | version | record tag | body… | CRC32 LE |
//! ```
//!
//! The CRC32 (same reflected IEEE polynomial as the frame codec) covers the
//! magic byte through the last body byte. [`read_record`] returns `Ok(None)`
//! only on a clean end of stream — EOF *between* records; EOF anywhere inside
//! a record is an error, so a truncated capture can never pass for a complete
//! one.
//!
//! ## Record tags (append-only across versions)
//!
//! | tag | record | body |
//! |-----|--------|------|
//! | 0 | [`TraceHeader`] | protocol name, `n`, `k`, ε, engine seed, optional [`FaultSpec`], free-form label |
//! | 1 | [`TraceStep`] | step index, membership events, observed row, output, validity, cumulative messages |
//! | 2 | [`TraceEnd`] | final run report counters, [`CommStats`], filters, last observed row |
//!
//! A well-formed trace is `Header (Step)* End`; that ordering is the replay
//! layer's contract to enforce, not this codec's — the codec only guarantees
//! each record is internally valid.
//!
//! Scalars are LEB128 varints and composite bodies concatenate fields in
//! declaration order, like [`crate::codec`]. The [`CommStats`] body requires
//! its `(label, kind)` entries in strictly ascending order — the order its
//! `BTreeMap` iterates in — so every value has exactly one encoding and
//! re-encoding a decoded trace is byte-identical.

use std::io::{Read, Write};

use crate::codec::{from_bytes, Reader, WireDecode, WireEncode};
use crate::crc32::crc32;
use crate::error::WireError;
use crate::varint;
use topk_model::prelude::*;

/// First payload byte of every trace record; distinct from the protocol
/// frame magic (`0xC5`) so a trace file read as a socket stream (or vice
/// versa) fails immediately with [`WireError::BadMagic`].
pub const TRACE_MAGIC: u8 = 0xC7;

/// Current trace format version. Bump on any layout change; readers reject
/// other versions with [`WireError::UnsupportedVersion`] rather than guess.
pub const TRACE_VERSION: u8 = 1;

/// Upper bound on one record's payload, mirroring
/// [`MAX_FRAME_LEN`](crate::MAX_FRAME_LEN): a corrupt length prefix is
/// refused before any allocation.
pub const MAX_RECORD_LEN: usize = 16 << 20;

/// The opening record of a trace: everything needed to rebuild the monitor
/// and engine that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Protocol under test, by its campaign name (e.g. `"dense"`).
    pub protocol: String,
    /// Number of monitored nodes.
    pub n: u64,
    /// Top-`k` size.
    pub k: u64,
    /// Approximation parameter the monitor ran with.
    pub eps: Epsilon,
    /// Seed the engine (and any fault plan RNG) was constructed with.
    pub seed: u64,
    /// Fault plan the run's transport applied, if any.
    pub fault: Option<FaultSpec>,
    /// Free-form scenario label (file name or grid cell id).
    pub label: String,
}

/// One observed step: the driver's inputs and the engine's answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Zero-based step index.
    pub step: u64,
    /// Membership events applied *before* this step's row was delivered.
    pub events: Vec<MembershipEvent>,
    /// The observed row, masked for dead slots exactly as delivered.
    pub row: Vec<Value>,
    /// The monitor's output set after processing the row.
    pub output: Vec<NodeId>,
    /// Whether the output was ε-valid against the row.
    pub valid: bool,
    /// Cumulative message count after this step (per-step deltas are the
    /// differences of consecutive records).
    pub messages_total: u64,
}

/// The closing record: final counters and state for bit-for-bit diffing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEnd {
    /// Total steps driven.
    pub steps: u64,
    /// Steps whose output failed ε-validation.
    pub invalid_steps: u64,
    /// Steps whose output was valid but not exactly the true top-k.
    pub inexact_steps: u64,
    /// Final communication counters.
    pub stats: CommStats,
    /// Final per-node filters, in node order.
    pub filters: Vec<Filter>,
    /// The last observed row (the run's final value state).
    pub values: Vec<Value>,
}

/// One record of a trace stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// Run metadata; must come first.
    Header(TraceHeader),
    /// One observed step.
    Step(TraceStep),
    /// Final counters and state; must come last.
    End(TraceEnd),
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

/// Reads a varint element/byte count, refusing counts larger than the bytes
/// left — every element is at least one byte, so a huge count in a corrupt
/// record fails here instead of attempting a huge allocation.
fn read_count(r: &mut Reader<'_>, what: &'static str) -> Result<usize, WireError> {
    let raw = r.u64()?;
    let count = usize::try_from(raw).map_err(|_| WireError::FrameTooLarge { len: raw })?;
    if count > r.remaining() {
        return Err(WireError::Truncated { what });
    }
    Ok(count)
}

fn write_u32(buf: &mut Vec<u8>, v: u32) {
    varint::write_u64(buf, u64::from(v));
}

fn read_u32(r: &mut Reader<'_>, what: &'static str) -> Result<u32, WireError> {
    u32::try_from(r.u64()?).map_err(|_| WireError::BadTag { what, tag: 0xff })
}

fn write_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(u8::from(v));
}

fn read_bool(r: &mut Reader<'_>, what: &'static str) -> Result<bool, WireError> {
    match r.u8(what)? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(WireError::BadTag { what, tag }),
    }
}

fn write_str(buf: &mut Vec<u8>, s: &str) {
    varint::write_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>, what: &'static str) -> Result<String, WireError> {
    let len = read_count(r, what)?;
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(r.u8(what)?);
    }
    String::from_utf8(bytes).map_err(|_| WireError::BadTag { what, tag: 0xff })
}

fn write_seq<T: WireEncode>(buf: &mut Vec<u8>, items: &[T]) {
    varint::write_u64(buf, items.len() as u64);
    for item in items {
        item.encode(buf);
    }
}

fn read_seq<T: WireDecode>(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<T>, WireError> {
    let count = read_count(r, what)?;
    let mut items = Vec::with_capacity(count);
    for _ in 0..count {
        items.push(T::decode(r)?);
    }
    Ok(items)
}

// ---------------------------------------------------------------------------
// Model types that only the trace layer ships
// ---------------------------------------------------------------------------

impl WireEncode for Epsilon {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_u32(buf, self.numerator());
        write_u32(buf, self.denominator());
    }
}

impl WireDecode for Epsilon {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num = read_u32(r, "Epsilon numerator")?;
        let den = read_u32(r, "Epsilon denominator")?;
        Epsilon::new(num, den).map_err(|_| WireError::BadTag {
            what: "Epsilon (not in (0, 1))",
            tag: 0xff,
        })
    }
}

impl WireEncode for MessageKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            MessageKind::Upstream => 0,
            MessageKind::DownstreamUnicast => 1,
            MessageKind::Broadcast => 2,
        });
    }
}

impl WireDecode for MessageKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("MessageKind")? {
            0 => Ok(MessageKind::Upstream),
            1 => Ok(MessageKind::DownstreamUnicast),
            2 => Ok(MessageKind::Broadcast),
            tag => Err(WireError::BadTag {
                what: "MessageKind",
                tag,
            }),
        }
    }
}

/// [`ProtocolLabel`] tags, in declaration order. Append-only: a new label
/// gets the next tag, existing tags never move.
const PROTOCOL_LABELS: [ProtocolLabel; 14] = [
    ProtocolLabel::Init,
    ProtocolLabel::Existence,
    ProtocolLabel::Maximum,
    ProtocolLabel::ExactTopK,
    ProtocolLabel::TopKPhase1,
    ProtocolLabel::TopKPhase2,
    ProtocolLabel::TopKPhase3,
    ProtocolLabel::TopKPhase4,
    ProtocolLabel::Dense,
    ProtocolLabel::Sub,
    ProtocolLabel::HalfEps,
    ProtocolLabel::Recovery,
    ProtocolLabel::Offline,
    ProtocolLabel::Other,
];

impl WireEncode for ProtocolLabel {
    fn encode(&self, buf: &mut Vec<u8>) {
        let tag = PROTOCOL_LABELS
            .iter()
            .position(|l| l == self)
            .expect("every label is in the tag table");
        buf.push(tag as u8);
    }
}

impl WireDecode for ProtocolLabel {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8("ProtocolLabel")?;
        PROTOCOL_LABELS
            .get(usize::from(tag))
            .copied()
            .ok_or(WireError::BadTag {
                what: "ProtocolLabel",
                tag,
            })
    }
}

impl WireEncode for CommStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.rounds);
        varint::write_u64(buf, self.time_steps);
        varint::write_u64(buf, self.by_label_kind.len() as u64);
        // BTreeMap iterates in ascending key order; the decoder enforces it,
        // which makes the encoding canonical (one byte string per value).
        for (&(label, kind), &count) in &self.by_label_kind {
            label.encode(buf);
            kind.encode(buf);
            varint::write_u64(buf, count);
        }
    }
}

impl WireDecode for CommStats {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let rounds = r.u64()?;
        let time_steps = r.u64()?;
        let entries = read_count(r, "CommStats entries")?;
        let mut stats = CommStats {
            rounds,
            time_steps,
            ..CommStats::default()
        };
        let mut last: Option<(ProtocolLabel, MessageKind)> = None;
        for _ in 0..entries {
            let label = ProtocolLabel::decode(r)?;
            let kind = MessageKind::decode(r)?;
            let count = r.u64()?;
            let key = (label, kind);
            if last.is_some_and(|prev| prev >= key) {
                return Err(WireError::BadTag {
                    what: "CommStats entries (not strictly ascending)",
                    tag: 0xff,
                });
            }
            last = Some(key);
            stats.by_label_kind.insert(key, count);
        }
        Ok(stats)
    }
}

impl WireEncode for LatencySpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            LatencySpec::Immediate => buf.push(0),
            LatencySpec::Fixed(rounds) => {
                buf.push(1);
                write_u32(buf, rounds);
            }
            LatencySpec::Uniform { lo, hi } => {
                buf.push(2);
                write_u32(buf, lo);
                write_u32(buf, hi);
            }
        }
    }
}

impl WireDecode for LatencySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("LatencySpec")? {
            0 => Ok(LatencySpec::Immediate),
            1 => Ok(LatencySpec::Fixed(read_u32(r, "LatencySpec::Fixed")?)),
            2 => Ok(LatencySpec::Uniform {
                lo: read_u32(r, "LatencySpec::Uniform lo")?,
                hi: read_u32(r, "LatencySpec::Uniform hi")?,
            }),
            tag => Err(WireError::BadTag {
                what: "LatencySpec",
                tag,
            }),
        }
    }
}

impl WireEncode for CrashSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_u32(buf, self.crash_permille);
        varint::write_u64(buf, self.down_steps);
        varint::write_u64(buf, self.max_down as u64);
    }
}

impl WireDecode for CrashSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CrashSpec {
            crash_permille: read_u32(r, "CrashSpec crash_permille")?,
            down_steps: r.u64()?,
            max_down: usize::try_from(r.u64()?).map_err(|_| WireError::BadTag {
                what: "CrashSpec max_down (exceeds usize)",
                tag: 0xff,
            })?,
        })
    }
}

impl WireEncode for FaultSpec {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.seed);
        write_u32(buf, self.drop_upstream_permille);
        write_u32(buf, self.drop_downstream_permille);
        write_u32(buf, self.reorder_permille);
        self.latency.encode(buf);
        match self.crash {
            None => buf.push(0),
            Some(crash) => {
                buf.push(1);
                crash.encode(buf);
            }
        }
    }
}

impl WireDecode for FaultSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let seed = r.u64()?;
        let drop_upstream_permille = read_u32(r, "FaultSpec drop_upstream_permille")?;
        let drop_downstream_permille = read_u32(r, "FaultSpec drop_downstream_permille")?;
        let reorder_permille = read_u32(r, "FaultSpec reorder_permille")?;
        let latency = LatencySpec::decode(r)?;
        let crash = match r.u8("FaultSpec crash presence byte")? {
            0 => None,
            1 => Some(CrashSpec::decode(r)?),
            tag => Err(WireError::BadTag {
                what: "FaultSpec crash presence byte",
                tag,
            })?,
        };
        Ok(FaultSpec {
            seed,
            drop_upstream_permille,
            drop_downstream_permille,
            reorder_permille,
            latency,
            crash,
        })
    }
}

// ---------------------------------------------------------------------------
// Record bodies
// ---------------------------------------------------------------------------

impl WireEncode for TraceHeader {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_str(buf, &self.protocol);
        varint::write_u64(buf, self.n);
        varint::write_u64(buf, self.k);
        self.eps.encode(buf);
        varint::write_u64(buf, self.seed);
        match self.fault {
            None => buf.push(0),
            Some(fault) => {
                buf.push(1);
                fault.encode(buf);
            }
        }
        write_str(buf, &self.label);
    }
}

impl WireDecode for TraceHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let protocol = read_str(r, "TraceHeader protocol")?;
        let n = r.u64()?;
        let k = r.u64()?;
        let eps = Epsilon::decode(r)?;
        let seed = r.u64()?;
        let fault = match r.u8("TraceHeader fault presence byte")? {
            0 => None,
            1 => Some(FaultSpec::decode(r)?),
            tag => Err(WireError::BadTag {
                what: "TraceHeader fault presence byte",
                tag,
            })?,
        };
        let label = read_str(r, "TraceHeader label")?;
        Ok(TraceHeader {
            protocol,
            n,
            k,
            eps,
            seed,
            fault,
            label,
        })
    }
}

impl WireEncode for TraceStep {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.step);
        write_seq(buf, &self.events);
        write_seq(buf, &self.row);
        write_seq(buf, &self.output);
        write_bool(buf, self.valid);
        varint::write_u64(buf, self.messages_total);
    }
}

impl WireDecode for TraceStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceStep {
            step: r.u64()?,
            events: read_seq(r, "TraceStep events")?,
            row: read_seq(r, "TraceStep row")?,
            output: read_seq(r, "TraceStep output")?,
            valid: read_bool(r, "TraceStep valid flag")?,
            messages_total: r.u64()?,
        })
    }
}

impl WireEncode for TraceEnd {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.steps);
        varint::write_u64(buf, self.invalid_steps);
        varint::write_u64(buf, self.inexact_steps);
        self.stats.encode(buf);
        write_seq(buf, &self.filters);
        write_seq(buf, &self.values);
    }
}

impl WireDecode for TraceEnd {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TraceEnd {
            steps: r.u64()?,
            invalid_steps: r.u64()?,
            inexact_steps: r.u64()?,
            stats: CommStats::decode(r)?,
            filters: read_seq(r, "TraceEnd filters")?,
            values: read_seq(r, "TraceEnd values")?,
        })
    }
}

impl WireEncode for TraceRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TraceRecord::Header(header) => {
                buf.push(0);
                header.encode(buf);
            }
            TraceRecord::Step(step) => {
                buf.push(1);
                step.encode(buf);
            }
            TraceRecord::End(end) => {
                buf.push(2);
                end.encode(buf);
            }
        }
    }
}

impl WireDecode for TraceRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8("TraceRecord")? {
            0 => Ok(TraceRecord::Header(TraceHeader::decode(r)?)),
            1 => Ok(TraceRecord::Step(TraceStep::decode(r)?)),
            2 => Ok(TraceRecord::End(TraceEnd::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "TraceRecord",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------------

/// Writes one record (length prefix + payload + CRC trailer) to the stream.
///
/// Returns the total bytes written, including the 4-byte prefix.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] if the encoded payload exceeds
/// [`MAX_RECORD_LEN`] — refused before any bytes are written — and
/// [`WireError::Io`] for writer failures.
pub fn write_record(w: &mut impl Write, record: &TraceRecord) -> Result<usize, WireError> {
    let mut payload = Vec::with_capacity(64);
    payload.push(TRACE_MAGIC);
    payload.push(TRACE_VERSION);
    record.encode(&mut payload);
    let crc = crc32(&payload);
    payload.extend_from_slice(&crc.to_le_bytes());
    if payload.len() > MAX_RECORD_LEN {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    let len = u32::try_from(payload.len()).expect("MAX_RECORD_LEN fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&payload)?;
    Ok(4 + payload.len())
}

/// Reads the next record, or `Ok(None)` on a clean end of stream.
///
/// "Clean" means EOF *before* the first length byte; EOF anywhere later is
/// [`WireError::Io`] (`UnexpectedEof`), so a truncated capture is always a
/// typed error rather than a silently shorter trace.
///
/// # Errors
///
/// [`WireError::FrameTooLarge`] for an oversized length prefix,
/// [`WireError::BadMagic`] / [`WireError::UnsupportedVersion`] for a bad
/// record header, [`WireError::ChecksumMismatch`] for a corrupted payload,
/// any decoding error for a corrupt body, and [`WireError::Io`] for reader
/// failures.
pub fn read_record(r: &mut impl Read) -> Result<Option<(TraceRecord, usize)>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    what: "trace record length prefix",
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_RECORD_LEN {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    // magic + version + record tag + 4-byte trailer is the minimum.
    if len < 7 {
        return Err(WireError::Truncated {
            what: "trace record header",
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let record = decode_record_payload(&payload)?;
    Ok(Some((record, 4 + len)))
}

/// Decodes one complete record payload: magic, version, CRC trailer, body.
fn decode_record_payload(payload: &[u8]) -> Result<TraceRecord, WireError> {
    let magic = payload[0];
    if magic != TRACE_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = payload[1];
    if version != TRACE_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let split = payload.len() - 4;
    let found = u32::from_le_bytes(payload[split..].try_into().expect("4 bytes"));
    let expected = crc32(&payload[..split]);
    if found != expected {
        return Err(WireError::ChecksumMismatch { expected, found });
    }
    from_bytes::<TraceRecord>(&payload[2..split])
}

/// Reads an entire stream into a record list (convenience for tests and the
/// replay driver).
///
/// # Errors
///
/// The same errors as [`read_record`].
pub fn read_all_records(r: &mut impl Read) -> Result<Vec<TraceRecord>, WireError> {
    let mut records = Vec::new();
    while let Some((record, _)) = read_record(r)? {
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic derivation of each record family from a few integers,
    /// sweeping every variant, presence flag and container length.
    fn header_from(x: u64, y: u64) -> TraceHeader {
        TraceHeader {
            protocol: ["exact_topk", "dense", "combined"][(x % 3) as usize].to_string(),
            n: x % 10_000,
            k: y % 64,
            eps: Epsilon::new((x % 9 + 1) as u32, 10).unwrap(),
            seed: x ^ y,
            fault: (x % 3 == 0).then(|| fault_from(x, y)),
            label: format!("cell-{}", y % 100),
        }
    }

    fn fault_from(x: u64, y: u64) -> FaultSpec {
        let mut spec = FaultSpec::none();
        spec.seed = x.wrapping_mul(31).wrapping_add(y);
        spec.drop_upstream_permille = (x % 1000) as u32;
        spec.drop_downstream_permille = (y % 1000) as u32;
        spec.reorder_permille = ((x ^ y) % 1000) as u32;
        spec.latency = match y % 3 {
            0 => LatencySpec::Immediate,
            1 => LatencySpec::Fixed((x % 5) as u32),
            _ => LatencySpec::Uniform {
                lo: (x % 3) as u32,
                hi: (x % 3 + y % 4) as u32,
            },
        };
        spec.crash = (y % 2 == 0).then_some(CrashSpec {
            crash_permille: (x % 200) as u32,
            down_steps: y % 20 + 1,
            max_down: (x % 8) as usize,
        });
        spec
    }

    fn step_from(x: u64, y: u64) -> TraceStep {
        let n = (x % 6 + 1) as usize;
        TraceStep {
            step: x,
            events: (0..y % 3)
                .map(|i| {
                    if (x + i) % 2 == 0 {
                        MembershipEvent::Leave(NodeId((i % n as u64) as usize))
                    } else {
                        MembershipEvent::Join(NodeId((i % n as u64) as usize))
                    }
                })
                .collect(),
            row: (0..n as u64).map(|i| i.wrapping_mul(x) ^ y).collect(),
            output: (0..(y % n as u64)).map(|i| NodeId(i as usize)).collect(),
            valid: x % 2 == 0,
            messages_total: x.wrapping_add(y),
        }
    }

    fn stats_from(x: u64, y: u64) -> CommStats {
        let mut stats = CommStats {
            rounds: x % 500,
            time_steps: y % 500,
            ..CommStats::default()
        };
        for (i, label) in PROTOCOL_LABELS.iter().enumerate() {
            if (x >> i) & 1 == 1 {
                let kind = MessageKind::ALL[(y as usize + i) % 3];
                stats.by_label_kind.insert((*label, kind), x ^ (i as u64));
            }
        }
        stats
    }

    fn end_from(x: u64, y: u64) -> TraceEnd {
        let n = (x % 6 + 1) as usize;
        TraceEnd {
            steps: x % 1000,
            invalid_steps: y % 10,
            inexact_steps: x % 10,
            stats: stats_from(x, y),
            filters: (0..n as u64)
                .map(|i| match (x + i) % 3 {
                    0 => Filter::at_least(i * 100),
                    1 => Filter::at_most(i * 100 + 7),
                    _ => Filter::bounded(i, i + y % 1000).unwrap(),
                })
                .collect(),
            values: (0..n as u64).map(|i| i.wrapping_mul(y)).collect(),
        }
    }

    fn record_from(sel: u8, x: u64, y: u64) -> TraceRecord {
        match sel % 3 {
            0 => TraceRecord::Header(header_from(x, y)),
            1 => TraceRecord::Step(step_from(x, y)),
            _ => TraceRecord::End(end_from(x, y)),
        }
    }

    /// Writes a record, reads it back, and asserts every strict prefix of
    /// the wire bytes fails — the same battery the frame codec runs.
    fn roundtrip_record(record: &TraceRecord) {
        let mut wire = Vec::new();
        let written = write_record(&mut wire, record).unwrap();
        assert_eq!(written, wire.len());
        let mut cursor = &wire[..];
        let (back, consumed) = read_record(&mut cursor).unwrap().expect("one record");
        assert_eq!(&back, record);
        assert_eq!(consumed, written);
        assert!(cursor.is_empty());
        for cut in 1..wire.len() {
            let mut cursor = &wire[..cut];
            assert!(
                read_record(&mut cursor).is_err(),
                "strict prefix of length {cut} decoded for {record:?}"
            );
        }
        // The empty prefix is the one legal truncation: a clean end of stream.
        let mut cursor = &wire[..0];
        assert!(matches!(read_record(&mut cursor), Ok(None)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Arbitrary record → write → read == original; strict prefixes fail.
        #[test]
        fn records_roundtrip(sel in 0u8..255, x in 0u64..u64::MAX, y in 0u64..u64::MAX) {
            roundtrip_record(&record_from(sel, x, y));
        }

        /// Flipping any payload byte (via an arbitrary xor mask) never
        /// decodes: the CRC trailer catches body corruption, and corruption
        /// of the trailer itself disagrees with the recomputed CRC.
        #[test]
        fn corrupted_records_never_decode(
            sel in 0u8..255,
            x in 0u64..u64::MAX,
            y in 0u64..u64::MAX,
            mask in 1u32..256,
        ) {
            let record = record_from(sel, x, y);
            let mut wire = Vec::new();
            write_record(&mut wire, &record).unwrap();
            for i in 4..wire.len() {
                let mut corrupt = wire.clone();
                corrupt[i] ^= mask as u8;
                let mut cursor = &corrupt[..];
                prop_assert!(
                    read_record(&mut cursor).is_err(),
                    "xor {mask:#x} at payload byte {} decoded",
                    i - 4
                );
            }
        }

        /// Multi-record streams (the actual trace file shape) round-trip and
        /// preserve order.
        #[test]
        fn streams_roundtrip(x in 0u64..u64::MAX, y in 0u64..u64::MAX, steps in 0u64..6) {
            let mut records = vec![TraceRecord::Header(header_from(x, y))];
            for s in 0..steps {
                records.push(TraceRecord::Step(step_from(x.wrapping_add(s), y)));
            }
            records.push(TraceRecord::End(end_from(x, y)));
            let mut wire = Vec::new();
            for record in &records {
                write_record(&mut wire, record).unwrap();
            }
            let back = read_all_records(&mut &wire[..]).unwrap();
            prop_assert_eq!(back, records);
        }
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let mut wire = Vec::new();
        write_record(&mut wire, &TraceRecord::Header(header_from(1, 2))).unwrap();
        // Bump the version byte and re-seal the CRC so only the version is
        // wrong — the reader must reject it as skew, not as corruption.
        wire[5] = TRACE_VERSION + 1;
        let split = wire.len() - 4;
        let crc = crc32(&wire[4..split]).to_le_bytes();
        wire[split..].copy_from_slice(&crc);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_record(&mut cursor),
            Err(WireError::UnsupportedVersion { found }) if found == TRACE_VERSION + 1
        ));
    }

    #[test]
    fn frame_magic_is_rejected() {
        let mut wire = Vec::new();
        write_record(&mut wire, &TraceRecord::Header(header_from(1, 2))).unwrap();
        wire[4] = crate::frame::MAGIC;
        let split = wire.len() - 4;
        let crc = crc32(&wire[4..split]).to_le_bytes();
        wire[split..].copy_from_slice(&crc);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_record(&mut cursor),
            Err(WireError::BadMagic { found }) if found == crate::frame::MAGIC
        ));
    }

    #[test]
    fn trailing_garbage_inside_a_record_is_rejected() {
        let record = TraceRecord::Step(step_from(3, 4));
        let mut wire = Vec::new();
        write_record(&mut wire, &record).unwrap();
        // Splice one extra byte between body and trailer, grow the declared
        // length, and re-seal the CRC: the only defect left is the stray byte.
        let split = wire.len() - 4;
        wire.insert(split, 0xAB);
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        let split = wire.len() - 4;
        let crc = crc32(&wire[4..split]).to_le_bytes();
        wire[split..].copy_from_slice(&crc);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_record(&mut cursor),
            Err(WireError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_record(&mut cursor),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn undersized_records_are_refused() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&6u32.to_le_bytes());
        wire.extend_from_slice(&[TRACE_MAGIC, TRACE_VERSION, 0, 0, 0, 0]);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_record(&mut cursor),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_counts_fail_fast_with_a_valid_crc() {
        // A huge row count with a correct CRC must be refused by the count
        // guard (Truncated), not by an allocation attempt.
        let mut payload = vec![TRACE_MAGIC, TRACE_VERSION, 1]; // Step tag
        varint::write_u64(&mut payload, 0); // step
        varint::write_u64(&mut payload, 0); // no events
        varint::write_u64(&mut payload, u64::MAX); // absurd row count
        let crc = crc32(&payload);
        payload.extend_from_slice(&crc.to_le_bytes());
        let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&payload);
        let mut cursor = &wire[..];
        assert!(matches!(
            read_record(&mut cursor),
            Err(WireError::FrameTooLarge { .. }) | Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn commstats_require_canonical_entry_order() {
        let mut stats = CommStats::default();
        stats
            .by_label_kind
            .insert((ProtocolLabel::Dense, MessageKind::Upstream), 5);
        stats
            .by_label_kind
            .insert((ProtocolLabel::Init, MessageKind::Broadcast), 3);
        let bytes = crate::codec::to_bytes(&stats);
        assert_eq!(
            crate::codec::from_bytes::<CommStats>(&bytes).unwrap(),
            stats
        );
        // Hand-build the same entries in descending order: rejected.
        let mut swapped = Vec::new();
        varint::write_u64(&mut swapped, stats.rounds);
        varint::write_u64(&mut swapped, stats.time_steps);
        varint::write_u64(&mut swapped, 2);
        for (label, kind, count) in [
            (ProtocolLabel::Dense, MessageKind::Upstream, 5u64),
            (ProtocolLabel::Init, MessageKind::Broadcast, 3),
        ] {
            label.encode(&mut swapped);
            kind.encode(&mut swapped);
            varint::write_u64(&mut swapped, count);
        }
        assert!(matches!(
            crate::codec::from_bytes::<CommStats>(&swapped),
            Err(WireError::BadTag { what, .. }) if what.contains("ascending")
        ));
    }
}
