//! Resumable frame reading for sockets with read timeouts.
//!
//! [`read_frame`](crate::read_frame) issues blocking `read_exact` calls, so
//! on a socket with a read timeout a mid-frame timeout *loses* the bytes
//! already consumed and permanently desynchronises the stream. The retrying
//! coordinator needs to time out waiting for a reply, send a poll, and then
//! keep reading the *same* stream — which requires a reader that can park a
//! partial frame across timeouts.
//!
//! [`FrameAccumulator`] is that reader: it buffers whatever bytes have
//! arrived, returns `Ok(None)` when the transport reports
//! [`WouldBlock`](std::io::ErrorKind::WouldBlock) /
//! [`TimedOut`](std::io::ErrorKind::TimedOut), and resumes exactly where it
//! left off on the next call. Frame validation (length bound, magic,
//! version, full body decode) is byte-for-byte the same as
//! [`read_frame`](crate::read_frame) — the two share the payload decoder.

use crate::error::WireError;
use crate::frame::{decode_payload, Frame, MAX_FRAME_LEN};
use std::io::{ErrorKind, Read};

/// Incremental frame reader that survives read timeouts (see module docs).
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    /// Bytes of the in-progress frame: length prefix, then payload.
    buf: Vec<u8>,
    /// Bytes of `buf` filled so far.
    filled: usize,
}

impl FrameAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> FrameAccumulator {
        FrameAccumulator::default()
    }

    /// Reads from `r` until one complete frame is available or the transport
    /// blocks. Returns the frame and its total wire size (including the
    /// 4-byte length prefix), or `Ok(None)` if `r` reported a timeout
    /// ([`WouldBlock`](ErrorKind::WouldBlock) / [`TimedOut`](ErrorKind::TimedOut))
    /// before the frame completed — call again later to resume; no bytes are
    /// lost. [`Interrupted`](ErrorKind::Interrupted) reads are retried
    /// internally.
    ///
    /// # Errors
    ///
    /// The same errors as [`read_frame`](crate::read_frame): an oversized or
    /// undersized length prefix, bad magic or version, a corrupt body, and
    /// [`WireError::Io`] with [`UnexpectedEof`](ErrorKind::UnexpectedEof) if
    /// the stream ends (cleanly or mid-frame).
    pub fn read_frame(&mut self, r: &mut impl Read) -> Result<Option<(Frame, usize)>, WireError> {
        // Phase 1: the 4-byte length prefix.
        if self.filled < 4 {
            self.buf.resize(4, 0);
            if !self.fill(r, 4)? {
                return Ok(None);
            }
            let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
            if len > MAX_FRAME_LEN {
                return Err(WireError::FrameTooLarge { len: len as u64 });
            }
            self.buf.resize(4 + len, 0);
        }
        // Phase 2: the payload (possibly empty — then decode fails with the
        // same Truncated error a blocking read would produce).
        let total = self.buf.len();
        if !self.fill(r, total)? {
            return Ok(None);
        }
        let frame = decode_payload(&self.buf[4..]);
        self.buf.clear();
        self.filled = 0;
        frame.map(|f| Some((f, total)))
    }

    /// Fills `buf` up to `target` bytes. Returns `false` if the transport
    /// blocked first (partial progress is kept in `filled`).
    fn fill(&mut self, r: &mut impl Read, target: usize) -> Result<bool, WireError> {
        while self.filled < target {
            match r.read(&mut self.buf[self.filled..target]) {
                Ok(0) => {
                    return Err(WireError::Io(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        if self.filled == 0 {
                            "stream closed between frames"
                        } else {
                            "stream closed mid-frame"
                        },
                    )))
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(false)
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use std::io;

    /// A reader that hands out its bytes in `chunk`-sized dribbles and
    /// reports a timeout between chunks, like a socket with a short read
    /// timeout receiving a slowly-arriving frame.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            self.ready = false;
            let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
            if n == 0 {
                return Ok(0);
            }
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn sample_frames() -> (Vec<Frame>, Vec<u8>) {
        let frames = vec![
            Frame::Join {
                shard: 3,
                max_version: crate::frame::WIRE_VERSION,
            },
            Frame::Poll { seq: 41 },
            Frame::Replies {
                seq: 41,
                replies: Vec::new(),
            },
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        (frames, wire)
    }

    #[test]
    fn accumulator_reassembles_dribbled_frames_across_timeouts() {
        let (frames, wire) = sample_frames();
        for chunk in [1, 2, 3, 7, 64] {
            let mut r = Dribble {
                data: wire.clone(),
                pos: 0,
                chunk,
                ready: false,
            };
            let mut acc = FrameAccumulator::new();
            let mut got = Vec::new();
            let mut timeouts = 0u32;
            while got.len() < frames.len() {
                match acc.read_frame(&mut r).unwrap() {
                    Some((frame, size)) => {
                        assert!(size >= 4 + 3, "wire size includes the prefix");
                        got.push(frame);
                    }
                    None => timeouts += 1,
                }
                assert!(timeouts < 10_000, "no forward progress");
            }
            assert_eq!(got, frames, "chunk size {chunk}");
            assert!(timeouts > 0, "the dribbler must have blocked at least once");
        }
    }

    #[test]
    fn accumulator_matches_blocking_reader_on_whole_streams() {
        let (frames, wire) = sample_frames();
        let mut cursor = &wire[..];
        let mut acc = FrameAccumulator::new();
        for expected in &frames {
            let (frame, size) = acc.read_frame(&mut cursor).unwrap().unwrap();
            assert_eq!(&frame, expected);
            let mut check = &wire[wire.len() - cursor.len() - size..];
            let (again, again_size) = crate::read_frame(&mut check).unwrap();
            assert_eq!(again, frame);
            assert_eq!(again_size, size);
        }
    }

    #[test]
    fn eof_mid_frame_is_an_error_not_a_timeout() {
        let (_, wire) = sample_frames();
        let mut cursor = &wire[..6]; // prefix + 2 payload bytes
        let mut acc = FrameAccumulator::new();
        match acc.read_frame(&mut cursor) {
            Err(WireError::Io(e)) => assert_eq!(e.kind(), ErrorKind::UnexpectedEof),
            other => panic!("expected mid-frame EOF error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_refused_without_buffering_the_body() {
        let mut wire = (u32::MAX).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0; 8]);
        let mut acc = FrameAccumulator::new();
        assert!(matches!(
            acc.read_frame(&mut &wire[..]),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_payloads_fail_like_the_blocking_reader() {
        let (_, mut wire) = sample_frames();
        wire[4] = 0x00; // first frame's magic byte
        let mut acc = FrameAccumulator::new();
        assert!(matches!(
            acc.read_frame(&mut &wire[..]),
            Err(WireError::BadMagic { found: 0x00 })
        ));
    }
}
