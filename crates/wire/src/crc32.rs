//! CRC32 (IEEE 802.3, reflected) for the optional frame integrity trailer.
//!
//! Wire version 3 appends a 4-byte little-endian CRC32 of the frame payload
//! (magic byte through the last body byte) so that a flipped bit inside a
//! frame body is caught at the receiver instead of silently corrupting a
//! decoded value whose varint happens to stay parseable. The polynomial is
//! the standard reflected `0xEDB88320` used by zlib, Ethernet and PNG, so
//! captures of the stream can be checked with off-the-shelf tooling.
//!
//! The byte-at-a-time table is built at compile time; the hot path is one
//! table lookup and one xor per byte, which is noise next to the socket I/O
//! that surrounds it.

/// Builds the reflected CRC32 lookup table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// Computes the CRC32 (IEEE, reflected, init/xorout `0xFFFFFFFF`) of `bytes`.
///
/// ```
/// // The canonical check value for this CRC variant.
/// assert_eq!(topk_wire::crc32::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"frame payload bytes".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "byte {i} bit {bit}");
            }
        }
    }
}
