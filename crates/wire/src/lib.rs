//! # topk-wire
//!
//! Compact binary wire format for every protocol message of the top-k
//! monitoring model, plus the length-prefixed frame codec the TCP transport
//! (`topk_net`'s `RemoteEngine`) speaks.
//!
//! The paper charges algorithms one unit per *model* message — probe, filter
//! update, violation report, existence response. The in-process engines
//! exchange those messages as function calls; this crate gives them a real
//! byte representation so the same protocols can cross a socket. The format
//! is designed around the model's `O(log(n·Δ))`-bit message bound: every
//! scalar is a LEB128 varint ([`varint`]), so a message naming a node id and
//! a value costs bytes proportional to their magnitudes, not to the maximum
//! the types could hold.
//!
//! The crate has three layers (documented in detail in `docs/WIRE.md`):
//!
//! * [`varint`] — LEB128 encoding of `u64`, the only scalar primitive;
//! * [`codec`] — [`WireEncode`]/[`WireDecode`] implementations with a stable
//!   one-byte tag per enum variant, for [`ServerMessage`], [`NodeMessage`]
//!   and every payload type they embed ([`Filter`], [`FilterParams`],
//!   [`NodeGroup`], [`Violation`], [`ExistencePredicate`]);
//! * [`frame`] — the transport unit: a little-endian `u32` length prefix
//!   followed by a payload starting with magic byte, version byte and a frame
//!   tag. A [`Frame`] batches many model messages (an observation row, the
//!   replies of an existence round) into one socket write. Reply-bearing
//!   frames carry a sequence number so a lossy transport can re-request a
//!   missing answer ([`Frame::Poll`]) and recognise duplicates. Version-3
//!   frames end with a CRC32 integrity trailer ([`crc32`]), negotiated in
//!   the `Join` handshake so version-2 peers keep working.
//!   [`stream::FrameAccumulator`] is the timeout-surviving reader the
//!   retrying coordinator uses.
//!
//! A fourth layer, [`trace`], reuses the same framing discipline for files
//! instead of sockets: a record stream capturing one monitored run step by
//! step (magic `0xC7`, its own version byte, a CRC32 trailer on every
//! record), the storage format of the golden-trace regression corpus under
//! `tests/traces/` and of `experiments --record`/`--replay`. The schema is
//! documented in `docs/SCENARIOS.md`.
//!
//! Decoding is strict: unknown tags, truncated input, oversized frames and
//! trailing bytes are all [`WireError`]s, never panics — a corrupt or
//! malicious peer cannot take the server down. The round-trip property
//! (`decode(encode(m)) == m` for every message, and `Err` for every strict
//! prefix) is enforced by proptests in [`codec`] and [`frame`].
//!
//! [`ServerMessage`]: topk_model::message::ServerMessage
//! [`NodeMessage`]: topk_model::message::NodeMessage
//! [`Filter`]: topk_model::filter::Filter
//! [`FilterParams`]: topk_model::rule::FilterParams
//! [`NodeGroup`]: topk_model::rule::NodeGroup
//! [`Violation`]: topk_model::filter::Violation
//! [`ExistencePredicate`]: topk_model::message::ExistencePredicate

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod error;
pub mod frame;
pub mod stream;
pub mod trace;
pub mod varint;

pub use codec::{from_bytes, to_bytes, Reader, WireDecode, WireEncode};
pub use error::WireError;
pub use frame::{
    read_frame, read_frame_versioned, write_frame, write_frame_versioned, Frame, ServerOp,
    CRC_WIRE_VERSION, LEGACY_WIRE_VERSION, MAX_FRAME_LEN, QUERY_WIRE_VERSION, WIRE_VERSION,
};
pub use stream::FrameAccumulator;
pub use trace::{
    read_all_records, read_record, write_record, TraceEnd, TraceHeader, TraceRecord, TraceStep,
    MAX_RECORD_LEN, TRACE_MAGIC, TRACE_VERSION,
};
