//! LEB128 variable-length integers — the only scalar primitive on the wire.
//!
//! Every number in the wire format (values, node ids, counts, rounds) is an
//! unsigned LEB128 varint: 7 payload bits per byte, high bit = continuation.
//! Small numbers — the common case everywhere in the model, where a message
//! carries `O(log(n·Δ))` bits by design — cost one byte; a full `u64` costs
//! at most ten. Signed values never appear in the model (`v ∈ ℕ`), so there
//! is no zig-zag variant.

use crate::codec::Reader;
use crate::error::WireError;

/// Maximum number of bytes a `u64` varint can occupy (`⌈64 / 7⌉`).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` to `buf` as a LEB128 varint (1–10 bytes).
pub fn write_u64(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `r`.
///
/// # Errors
///
/// [`WireError::Truncated`] if the input ends mid-varint,
/// [`WireError::VarintOverflow`] if the encoding runs past 10 bytes or sets
/// bits above the 64th (non-canonical overlong encodings of in-range values
/// are accepted, matching LEB128 practice).
pub fn read_u64(r: &mut Reader<'_>) -> Result<u64, WireError> {
    let mut value: u64 = 0;
    for i in 0..MAX_VARINT_LEN {
        let byte = r.u8("varint")?;
        let payload = u64::from(byte & 0x7f);
        // The 10th byte may only contribute the single bit that completes 64.
        if i == MAX_VARINT_LEN - 1 && payload > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(WireError::VarintOverflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        let mut r = Reader::new(&buf);
        assert_eq!(read_u64(&mut r).unwrap(), v);
        assert!(r.is_empty());
        buf.len()
    }

    #[test]
    fn boundary_values_roundtrip_at_expected_lengths() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip(u64::from(u32::MAX)), 5);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn truncated_varint_is_detected() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(matches!(read_u64(&mut r), Err(WireError::Truncated { .. })));
        }
    }

    #[test]
    fn overlong_and_overflowing_varints_are_rejected() {
        // Eleven continuation bytes: too long for any u64.
        let mut r = Reader::new(&[0x80; 11]);
        assert!(matches!(read_u64(&mut r), Err(WireError::VarintOverflow)));
        // Ten bytes whose last byte sets bits above the 64th.
        let mut bytes = [0x80u8; 10];
        bytes[9] = 0x02;
        let mut r = Reader::new(&bytes);
        assert!(matches!(read_u64(&mut r), Err(WireError::VarintOverflow)));
        // u64::MAX itself still decodes (last byte is exactly 0x01).
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        assert_eq!(buf[9], 0x01);
    }
}
