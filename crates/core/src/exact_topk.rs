//! Exact top-k monitoring with the generic halving framework (Corollary 3.3).
//!
//! The monitor proceeds in *phases*. A phase starts by computing the nodes with
//! the `k + 1` largest values (O(k log n) expected messages, [`crate::maximum`]),
//! fixing the output `F` to the top `k` of them and initialising the guess
//! interval `L = [ℓ, u]` with `ℓ = v_{π(k+1)}`, `u = v_{π(k)}`. The server then
//! broadcasts the midpoint `m` of `L`; nodes in `F` use the filter `[m, ∞)`, the
//! rest `[0, m]`. Whenever a violation is reported the interval is intersected
//! with `[v, ∞)` (violation from below by an outside node) or `[0, v]` (violation
//! from above by an output node) and the new midpoint is broadcast; the interval
//! at least halves per violation, so a phase costs O(log Δ) violations. When `L`
//! becomes empty the top-k set must have changed and a new phase starts.
//!
//! Together with the O(1)-expected-message violation detection of Corollary 3.2
//! this yields the O(k log n + log Δ) competitiveness of Corollary 3.3 — the
//! strengthening over the O(k log n + log Δ log n) bound of the predecessor paper
//! that Sect. 3 announces.

use topk_model::prelude::*;
use topk_net::Network;

use crate::existence::detect_violations;
use crate::maximum::top_m;
use crate::monitor::Monitor;

/// Safety cap on protocol iterations within a single time step; the analysis
/// bounds the real number by O(log Δ) per phase, so hitting the cap indicates a
/// bug rather than a long input.
const MAX_ITERATIONS_PER_STEP: u32 = 100_000;

/// Exact top-k monitor (Corollary 3.3).
#[derive(Debug, Clone)]
pub struct ExactTopKMonitor {
    k: usize,
    output: Vec<NodeId>,
    /// Guess interval `L = [lo, hi]` for the separating value; `lo > hi` encodes
    /// the empty interval.
    lo: Value,
    hi: Value,
    initialised: bool,
    /// Number of phases started so far (for experiment reporting).
    phases: u64,
}

impl ExactTopKMonitor {
    /// Creates a monitor for the `k` largest positions.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> ExactTopKMonitor {
        assert!(k >= 1, "k must be at least 1");
        ExactTopKMonitor {
            k,
            output: Vec::new(),
            lo: 0,
            hi: 0,
            initialised: false,
            phases: 0,
        }
    }

    /// Number of phases (recomputations of the top-(k+1) set) started so far.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Current guess interval `[lo, hi]` (empty iff `lo > hi`).
    pub fn guess_interval(&self) -> (Value, Value) {
        (self.lo, self.hi)
    }

    fn start_phase(&mut self, net: &mut dyn Network) {
        assert!(
            self.k < net.n(),
            "k = {} must be smaller than the number of nodes n = {}",
            self.k,
            net.n()
        );
        self.phases += 1;
        net.meter().push_label(ProtocolLabel::ExactTopK);
        let top = top_m(net, self.k + 1);
        debug_assert_eq!(top.len(), self.k + 1);
        self.output = top[..self.k].iter().map(|&(id, _)| id).collect();
        self.hi = top[self.k - 1].1;
        self.lo = top[self.k].1;
        // Partition the nodes: one broadcast resets everyone to Lower, k unicasts
        // promote the output nodes to Upper.
        net.broadcast_group(NodeGroup::Lower);
        for &(id, _) in &top[..self.k] {
            net.assign_group(id, NodeGroup::Upper);
        }
        self.broadcast_midpoint(net);
        net.meter().pop_label();
    }

    fn broadcast_midpoint(&mut self, net: &mut dyn Network) {
        let m = self.lo + (self.hi - self.lo) / 2;
        net.broadcast_params(FilterParams::Separator { lo: m, hi: m });
    }

    fn in_output(&self, node: NodeId) -> bool {
        self.output.contains(&node)
    }
}

impl Monitor for ExactTopKMonitor {
    fn k(&self) -> usize {
        self.k
    }

    fn eps(&self) -> Option<Epsilon> {
        None
    }

    fn process_step(&mut self, net: &mut dyn Network) {
        if !self.initialised {
            self.start_phase(net);
            self.initialised = true;
        }
        net.meter().push_label(ProtocolLabel::ExactTopK);
        for _ in 0..MAX_ITERATIONS_PER_STEP {
            let violations = detect_violations(net);
            let Some(first) = violations.first() else {
                break;
            };
            // The paper processes one violation at a time; re-running detection
            // after the filter update supersedes the remaining reports.
            let (node, value, direction) = match *first {
                NodeMessage::ViolationReport {
                    node,
                    value,
                    direction,
                } => (node, value, direction),
                ref other => unreachable!("violation detection returned {other:?}"),
            };
            match direction {
                // A non-output node rose above the separator: the true separating
                // value (if any) must be at least its value.
                Violation::FromBelow => self.lo = self.lo.max(value),
                // An output node fell below the separator: the separating value
                // must be at most its value.
                Violation::FromAbove => self.hi = self.hi.min(value),
            }
            // Nodes that changed sides relative to the current output make the
            // interval collapse eventually; restart once it is empty.
            let crossed = (direction == Violation::FromBelow && self.in_output(node))
                || (direction == Violation::FromAbove && !self.in_output(node));
            if self.lo > self.hi || crossed {
                net.meter().pop_label();
                self.start_phase(net);
                net.meter().push_label(ProtocolLabel::ExactTopK);
            } else {
                self.broadcast_midpoint(net);
            }
        }
        net.meter().pop_label();
    }

    fn output(&self) -> Vec<NodeId> {
        self.output.clone()
    }

    fn name(&self) -> &'static str {
        "exact-top-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::run_on_rows;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use topk_gen::{GapWorkload, RandomWalkWorkload, Workload};
    use topk_net::{DeterministicEngine, ThreadedEngine};

    fn drive(rows: Vec<Vec<Value>>, k: usize, seed: u64) -> (crate::RunReport, ExactTopKMonitor) {
        let n = rows[0].len();
        let mut net = DeterministicEngine::new(n, seed);
        let mut monitor = ExactTopKMonitor::new(k);
        let report = run_on_rows(&mut monitor, &mut net, rows, Epsilon::new(1, 1000).unwrap());
        (report, monitor)
    }

    #[test]
    fn output_is_exact_on_static_values() {
        let rows = vec![vec![10, 50, 30, 70, 20]; 10];
        let (report, monitor) = drive(rows, 2, 1);
        assert_eq!(report.inexact_steps, 0);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.phases(), 1);
        let mut out = monitor.output();
        out.sort();
        assert_eq!(out, vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn static_values_cost_only_the_initial_phase() {
        let rows = vec![vec![10, 50, 30, 70, 20]; 100];
        let (report, _) = drive(rows, 2, 3);
        // After the first step no more messages are exchanged (no violations).
        let single_step = drive(vec![vec![10, 50, 30, 70, 20]; 1], 2, 3).0;
        assert_eq!(report.messages(), single_step.messages());
    }

    #[test]
    fn tracks_leadership_changes_exactly() {
        // Node 0 and node 1 alternate in the lead; every swap crosses the
        // separator so the monitor must keep up.
        let rows: Vec<Vec<Value>> = (0..30)
            .map(|t| {
                if t % 2 == 0 {
                    vec![100, 60, 10]
                } else {
                    vec![60, 100, 10]
                }
            })
            .collect();
        let (report, _) = drive(rows, 1, 5);
        assert_eq!(report.inexact_steps, 0);
        assert_eq!(report.invalid_steps, 0);
    }

    #[test]
    fn exact_on_random_walks() {
        for seed in 0..5 {
            let mut w = RandomWalkWorkload::new(8, 10_000, 200, 0.7, seed);
            let rows: Vec<Vec<Value>> = (0..60).map(|_| w.next_step()).collect();
            let (report, _) = drive(rows, 3, seed);
            assert_eq!(report.inexact_steps, 0, "seed {seed}");
            assert_eq!(report.invalid_steps, 0, "seed {seed}");
        }
    }

    #[test]
    fn cheap_on_gap_workloads() {
        let mut w = GapWorkload::standard(40, 4, 1_000_000, 7);
        let rows: Vec<Vec<Value>> = (0..200).map(|_| w.next_step()).collect();
        let (report, monitor) = drive(rows, 4, 7);
        assert_eq!(report.inexact_steps, 0);
        // The designated top group never changes, so a handful of phases suffice
        // and the message count stays far below one-per-node-per-step.
        assert!(
            report.messages() < 200 * 40 / 4,
            "too many messages: {}",
            report.messages()
        );
        assert!(monitor.phases() < 50);
    }

    #[test]
    fn works_on_the_threaded_engine() {
        let rows: Vec<Vec<Value>> = (0..20).map(|t| vec![100 + t, 50, 10, 200 - t]).collect();
        let mut net = ThreadedEngine::new(4, 9);
        let mut monitor = ExactTopKMonitor::new(2);
        let report = run_on_rows(&mut monitor, &mut net, rows, Epsilon::new(1, 1000).unwrap());
        assert_eq!(report.inexact_steps, 0);
    }

    #[test]
    fn interval_shrinks_monotonically_within_a_phase() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|_| (0..6).map(|_| rng.gen_range(0..10_000)).collect())
            .collect();
        let (report, _) = drive(rows, 2, 3);
        assert_eq!(report.inexact_steps, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        let _ = ExactTopKMonitor::new(0);
    }

    #[test]
    #[should_panic]
    fn rejects_k_equal_to_n() {
        let rows = vec![vec![1, 2]];
        let _ = drive(rows, 2, 0);
    }
}
