//! `TopKProtocol` — the ε-approximate monitor of Sect. 4 (Theorem 4.5).
//!
//! The monitor fixes the exact top-k set as its output and *witnesses* its
//! validity as cheaply as possible. It maintains a guess interval `L = [ℓ, u]`
//! that must contain the lower endpoint of the upper filter of any offline
//! algorithm that has not communicated yet; the interval starts at
//! `[v_{π(k+1)}, v_{π(k)}]` and shrinks on every filter violation. The trick that
//! turns the `log Δ` of the exact protocol into `log log Δ + log 1/ε` is to
//! shrink `L` with four different strategies depending on its shape:
//!
//! | phase | property | separator broadcast |
//! |-------|----------|---------------------|
//! | P1 (`A1`) | `log log u > log log ℓ + 1` | `m = ℓ₀ + 2^(2^r)` after `r` violations (double-exponential probing) |
//! | P2 (`A2`) | gap at most double-exponential but `u > 4ℓ` | `m = 2^{mid(log ℓ, log u)}` (geometric midpoint) |
//! | P3 (`A3`) | `u ≤ 4ℓ` but `u > ℓ/(1−ε)` | arithmetic midpoint of `L` |
//! | P4 | `u ≤ ℓ/(1−ε)` | final overlapping filters `F₁ = [ℓ, ∞)`, `F₂ = [0, u]` |
//!
//! P1 costs O(log log Δ) violations, P2 O(1), P3 O(log 1/ε); P4 ends at the first
//! violation, at which point the interval is empty and the whole protocol
//! restarts (the analysis of Theorem 4.5 shows the *exact* offline adversary must
//! have communicated in the meantime).

use topk_model::prelude::*;
use topk_net::Network;

use crate::existence::detect_violations;
use crate::maximum::top_m;
use crate::monitor::Monitor;

/// Safety cap on protocol iterations within a single time step (the analysis
/// bounds the real number by O(log log Δ + log 1/ε) per protocol instance).
const MAX_ITERATIONS_PER_STEP: u32 = 100_000;

/// The four strategies of `TopKProtocol`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolPhase {
    /// Double-exponential probing (`A1`).
    P1,
    /// Geometric midpoint (`A2`).
    P2,
    /// Arithmetic midpoint (`A3`).
    P3,
    /// Final overlapping filters.
    P4,
}

impl ProtocolPhase {
    fn label(self) -> ProtocolLabel {
        match self {
            ProtocolPhase::P1 => ProtocolLabel::TopKPhase1,
            ProtocolPhase::P2 => ProtocolLabel::TopKPhase2,
            ProtocolPhase::P3 => ProtocolLabel::TopKPhase3,
            ProtocolPhase::P4 => ProtocolLabel::TopKPhase4,
        }
    }
}

/// `log₂ log₂ x` with the arguments clamped so the expression is defined.
fn loglog(x: Value) -> f64 {
    let lx = (x.max(2) as f64).log2();
    lx.max(1.0).log2()
}

/// `TopKProtocol` monitor (Theorem 4.5).
#[derive(Debug, Clone)]
pub struct TopKMonitor {
    k: usize,
    eps: Epsilon,
    output: Vec<NodeId>,
    lo: Value,
    hi: Value,
    phase: ProtocolPhase,
    /// `ℓ₀` of the current `A1` execution.
    a1_base: Value,
    /// Violations observed by the current `A1` execution.
    a1_violations: u32,
    initialised: bool,
    restarts: u64,
}

impl TopKMonitor {
    /// Creates the monitor for the top `k` positions with error `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, eps: Epsilon) -> TopKMonitor {
        assert!(k >= 1, "k must be at least 1");
        TopKMonitor {
            k,
            eps,
            output: Vec::new(),
            lo: 0,
            hi: 0,
            phase: ProtocolPhase::P4,
            a1_base: 0,
            a1_violations: 0,
            initialised: false,
            restarts: 0,
        }
    }

    /// Number of times the protocol restarted from scratch (equals the number of
    /// intervals in which the exact offline adversary must have communicated).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// The phase currently executed.
    pub fn phase(&self) -> ProtocolPhase {
        self.phase
    }

    /// The current guess interval `L = [ℓ, u]`.
    pub fn guess_interval(&self) -> (Value, Value) {
        (self.lo, self.hi)
    }

    /// Step 1 of `TopKProtocol`: compute the top-(k+1) values, fix the output and
    /// initialise the guess interval and filters.
    fn start_protocol(&mut self, net: &mut dyn Network) {
        assert!(
            self.k < net.n(),
            "k = {} must be smaller than the number of nodes n = {}",
            self.k,
            net.n()
        );
        self.restarts += 1;
        net.meter().push_label(ProtocolLabel::Init);
        let top = top_m(net, self.k + 1);
        debug_assert_eq!(top.len(), self.k + 1);
        self.output = top[..self.k].iter().map(|&(id, _)| id).collect();
        self.hi = top[self.k - 1].1;
        self.lo = top[self.k].1;
        net.broadcast_group(NodeGroup::Lower);
        for &(id, _) in &top[..self.k] {
            net.assign_group(id, NodeGroup::Upper);
        }
        net.meter().pop_label();
        // Reset the A1 state unconditionally: a fresh protocol instance starts a
        // fresh double-exponential probe from the new ℓ.
        self.phase = ProtocolPhase::P4;
        self.a1_base = self.lo;
        self.a1_violations = 0;
        self.enter_phase(self.dispatch());
        self.broadcast_separator(net);
    }

    /// Chooses the phase whose property currently holds (steps 2–5).
    fn dispatch(&self) -> ProtocolPhase {
        if self.lo > self.hi {
            // Empty interval: the caller restarts; P4 is returned as a harmless
            // placeholder.
            return ProtocolPhase::P4;
        }
        if loglog(self.hi) > loglog(self.lo) + 1.0 {
            ProtocolPhase::P1
        } else if self.hi > 4 * self.lo.max(1) {
            ProtocolPhase::P2
        } else if self.hi > self.eps.scale_up(self.lo) {
            ProtocolPhase::P3
        } else {
            ProtocolPhase::P4
        }
    }

    fn enter_phase(&mut self, phase: ProtocolPhase) {
        if phase == ProtocolPhase::P1 && self.phase != ProtocolPhase::P1 {
            self.a1_base = self.lo;
            self.a1_violations = 0;
        }
        self.phase = phase;
    }

    /// The separator value `m` the current phase broadcasts (clamped into
    /// `[ℓ, u]` so that every violation makes progress).
    fn separator(&self) -> Value {
        match self.phase {
            ProtocolPhase::P1 => {
                let exp = 1u64
                    .checked_shl(self.a1_violations)
                    .unwrap_or(u64::MAX)
                    .min(63);
                let probe = self.a1_base.saturating_add(1u64 << exp);
                probe.clamp(self.lo, self.hi)
            }
            ProtocolPhase::P2 => {
                let mid = (log2_clamped(self.lo) + log2_clamped(self.hi)) / 2.0;
                let m = mid.exp2().round() as Value;
                m.clamp(self.lo, self.hi)
            }
            ProtocolPhase::P3 | ProtocolPhase::P4 => self.lo + (self.hi - self.lo) / 2,
        }
    }

    fn broadcast_separator(&mut self, net: &mut dyn Network) {
        net.meter().push_label(self.phase.label());
        let params = match self.phase {
            ProtocolPhase::P4 => FilterParams::Separator {
                lo: self.lo,
                hi: self.hi,
            },
            _ => {
                let m = self.separator();
                FilterParams::Separator { lo: m, hi: m }
            }
        };
        net.broadcast_params(params);
        net.meter().pop_label();
    }
}

/// `log₂ x` clamped to be defined (used for the geometric midpoint of `A2`).
fn log2_clamped(x: Value) -> f64 {
    (x.max(1) as f64).log2()
}

impl Monitor for TopKMonitor {
    fn k(&self) -> usize {
        self.k
    }

    fn eps(&self) -> Option<Epsilon> {
        Some(self.eps)
    }

    fn process_step(&mut self, net: &mut dyn Network) {
        if !self.initialised {
            self.start_protocol(net);
            self.initialised = true;
        }
        for _ in 0..MAX_ITERATIONS_PER_STEP {
            let violations = detect_violations(net);
            let Some(first) = violations.first() else {
                break;
            };
            let (value, direction) = match *first {
                NodeMessage::ViolationReport {
                    value, direction, ..
                } => (value, direction),
                ref other => unreachable!("violation detection returned {other:?}"),
            };
            let was_p4 = self.phase == ProtocolPhase::P4;
            // Generic framework: intersect L with the half-line learned from the
            // violation (Sect. 3, "a generic approach").
            match direction {
                Violation::FromBelow => self.lo = self.lo.max(value),
                Violation::FromAbove => self.hi = self.hi.min(value),
            }
            self.a1_violations = self.a1_violations.saturating_add(1);
            if was_p4 || self.lo > self.hi {
                // Step 6: terminate; the driver immediately starts the next
                // protocol instance (Theorem 4.5 charges OPT once per instance).
                self.start_protocol(net);
            } else {
                self.enter_phase(self.dispatch());
                self.broadcast_separator(net);
            }
        }
    }

    fn output(&self) -> Vec<NodeId> {
        self.output.clone()
    }

    fn name(&self) -> &'static str {
        "topk-protocol"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{run_on_rows, RunReport};
    use topk_gen::{GapWorkload, RandomWalkWorkload, Workload};
    use topk_net::DeterministicEngine;

    fn drive(rows: Vec<Vec<Value>>, k: usize, eps: Epsilon, seed: u64) -> (RunReport, TopKMonitor) {
        let n = rows[0].len();
        let mut net = DeterministicEngine::new(n, seed);
        let mut monitor = TopKMonitor::new(k, eps);
        let report = run_on_rows(&mut monitor, &mut net, rows, eps);
        (report, monitor)
    }

    #[test]
    fn loglog_is_monotone_and_clamped() {
        assert_eq!(loglog(0), 0.0);
        assert_eq!(loglog(2), 0.0);
        assert!((loglog(16) - 2.0).abs() < 1e-9);
        assert!((loglog(1 << 16) - 4.0).abs() < 1e-9);
        assert!(loglog(1 << 40) > loglog(1 << 16));
    }

    #[test]
    fn phase_dispatch_matches_properties() {
        let mut m = TopKMonitor::new(1, Epsilon::HALF);
        // Huge double-exponential gap → P1.
        m.lo = 4;
        m.hi = 1 << 40;
        assert_eq!(m.dispatch(), ProtocolPhase::P1);
        // Single-exponential gap → P2.
        m.lo = 1 << 20;
        m.hi = 1 << 30;
        assert_eq!(m.dispatch(), ProtocolPhase::P2);
        // Small gap but wider than 1/(1-ε) → P3.
        m.lo = 100;
        m.hi = 350;
        assert_eq!(m.dispatch(), ProtocolPhase::P3);
        // Inside the ε slack → P4.
        m.lo = 100;
        m.hi = 150;
        assert_eq!(m.dispatch(), ProtocolPhase::P4);
    }

    #[test]
    fn separator_stays_inside_the_interval() {
        let mut m = TopKMonitor::new(1, Epsilon::HALF);
        m.lo = 10;
        m.hi = 1 << 35;
        m.enter_phase(ProtocolPhase::P1);
        for v in 0..10 {
            m.a1_violations = v;
            let s = m.separator();
            assert!(s >= m.lo && s <= m.hi, "P1 separator {s} out of range");
        }
        m.enter_phase(ProtocolPhase::P2);
        let s = m.separator();
        assert!(s >= m.lo && s <= m.hi);
        m.enter_phase(ProtocolPhase::P3);
        let s = m.separator();
        assert!(s >= m.lo && s <= m.hi);
    }

    #[test]
    fn valid_output_on_static_values() {
        let rows = vec![vec![10, 500, 30, 700, 20]; 20];
        let (report, _) = drive(rows, 2, Epsilon::HALF, 1);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(report.inexact_steps, 0);
    }

    #[test]
    fn valid_output_on_random_walks() {
        for seed in 0..5 {
            let mut w = RandomWalkWorkload::new(10, 100_000, 2_000, 0.8, seed);
            let rows: Vec<Vec<Value>> = (0..80).map(|_| w.next_step()).collect();
            let (report, _) = drive(rows, 3, Epsilon::new(1, 4).unwrap(), seed);
            assert_eq!(report.invalid_steps, 0, "seed {seed}");
        }
    }

    #[test]
    fn cheaper_than_exact_monitor_on_large_delta_gap_workload() {
        // Large Δ with a clear gap: the double-exponential probing of P1/P2
        // should reach the ε slack with far fewer broadcasts than the plain
        // midpoint halving needs.
        let mut w = GapWorkload::new(20, 2, 1 << 40, 1 << 10, 30, 0, 3);
        let rows: Vec<Vec<Value>> = (0..100).map(|_| w.next_step()).collect();
        let eps = Epsilon::HALF;
        let (approx_report, _) = drive(rows.clone(), 2, eps, 3);
        let mut net = DeterministicEngine::new(20, 3);
        let mut exact = crate::ExactTopKMonitor::new(2);
        let exact_report = run_on_rows(&mut exact, &mut net, rows, eps);
        assert_eq!(approx_report.invalid_steps, 0);
        assert_eq!(exact_report.invalid_steps, 0);
        assert!(
            approx_report.messages() <= exact_report.messages(),
            "TopKProtocol ({}) should not send more than the exact monitor ({})",
            approx_report.messages(),
            exact_report.messages()
        );
    }

    #[test]
    fn restarts_are_counted() {
        // Force repeated leadership swaps: each swap empties the interval and
        // restarts the protocol.
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|t| {
                if t % 2 == 0 {
                    vec![1000, 10, 5]
                } else {
                    vec![10, 1000, 5]
                }
            })
            .collect();
        let (report, monitor) = drive(rows, 1, Epsilon::TENTH, 9);
        assert_eq!(report.invalid_steps, 0);
        assert!(monitor.restarts() >= 10);
    }

    #[test]
    fn p4_reaches_quiescence_on_close_values() {
        // Values within the ε slack: the protocol should settle in P4 and then
        // stay silent while values wobble inside the overlapping filters.
        let rows: Vec<Vec<Value>> = (0..50)
            .map(|t| vec![1000 + (t % 3), 995 - (t % 3), 10])
            .collect();
        let (report, monitor) = drive(rows, 1, Epsilon::HALF, 4);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.phase(), ProtocolPhase::P4);
        // After the initial setup the wobble stays inside the filters: the last
        // 40 steps must be free.
        let early: Vec<Vec<Value>> = (0..10)
            .map(|t| vec![1000 + (t % 3), 995 - (t % 3), 10])
            .collect();
        let (early_report, _) = drive(early, 1, Epsilon::HALF, 4);
        assert_eq!(report.messages(), early_report.messages());
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        let _ = TopKMonitor::new(0, Epsilon::HALF);
    }
}
