//! The common monitoring interface and the step driver.
//!
//! Every online algorithm in this crate implements [`Monitor`]: it is given the
//! network after each observation step and must afterwards report a candidate
//! output set of `k` nodes. The driver functions [`run_on_rows`] (pre-recorded
//! workloads) and [`run_adaptive`] (adaptive adversaries that see the filters)
//! feed observations, invoke the monitor, validate every output against the
//! ε-top-k definition of Sect. 2 and collect the [`RunReport`] the experiments
//! are built from.

use topk_model::prelude::*;
use topk_net::Network;

/// A filter-based online monitoring algorithm.
pub trait Monitor {
    /// The monitored `k`.
    fn k(&self) -> usize;

    /// The error the monitor is allowed in its output (`None` for monitors that
    /// solve the exact problem).
    fn eps(&self) -> Option<Epsilon>;

    /// Called after every [`Network::advance_time`] (including the first one).
    /// The monitor runs its communication protocol here: detect violations,
    /// update filters, possibly recompute its output.
    fn process_step(&mut self, net: &mut dyn Network);

    /// The monitor's current output set `F(t)` (must have exactly `k` elements
    /// once at least one step was processed).
    fn output(&self) -> Vec<NodeId>;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

/// Outcome of driving a monitor over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Number of observation steps processed.
    pub steps: u64,
    /// Number of steps at which the output violated the ε-top-k definition
    /// (0 for a correct monitor).
    pub invalid_steps: u64,
    /// Number of steps at which the output differed from the *exact* top-k set
    /// (informational: allowed to be non-zero for approximate monitors).
    pub inexact_steps: u64,
    /// Communication statistics accumulated by the engine.
    pub stats: CommStats,
    /// Largest value observed over the run (`Δ`).
    pub delta: Value,
    /// Largest ε-neighbourhood size observed over the run (`σ`).
    pub sigma: usize,
}

impl RunReport {
    /// Total number of messages the online algorithm sent.
    pub fn messages(&self) -> u64 {
        self.stats.total_messages()
    }
}

/// Drives `monitor` over pre-recorded observation rows.
///
/// `validation_eps` is the error used to *validate* the output (usually the same
/// as the monitor's own ε; pass something larger to accept sloppier outputs).
///
/// # Panics
///
/// Panics if a row's length differs from `net.n()`.
pub fn run_on_rows(
    monitor: &mut dyn Monitor,
    net: &mut dyn Network,
    rows: impl IntoIterator<Item = Vec<Value>>,
    validation_eps: Epsilon,
) -> RunReport {
    run_adaptive(monitor, net, validation_eps, {
        let mut iter = rows.into_iter();
        move |_filters: &[Filter]| iter.next()
    })
}

/// Drives `monitor` with an adaptive source: `next_row` sees the filters
/// currently assigned to the nodes (what the adversary of Theorem 5.1 needs) and
/// returns `None` to end the run.
///
/// ```
/// use topk_core::monitor::run_adaptive;
/// use topk_core::TopKMonitor;
/// use topk_model::Epsilon;
/// use topk_net::DeterministicEngine;
///
/// let mut net = DeterministicEngine::new(3, 7);
/// let mut monitor = TopKMonitor::new(1, Epsilon::HALF);
/// let mut step = 0u64;
/// let report = run_adaptive(&mut monitor, &mut net, Epsilon::HALF, |filters| {
///     // The source sees the current filters — an adaptive adversary would
///     // aim its next row exactly at their boundaries.
///     assert_eq!(filters.len(), 3);
///     step += 1;
///     (step <= 4).then(|| vec![100 + step, 50, 10])
/// });
/// assert_eq!(report.steps, 4);
/// assert_eq!(report.invalid_steps, 0, "the ε-top-1 must be valid at every step");
/// ```
pub fn run_adaptive(
    monitor: &mut dyn Monitor,
    net: &mut dyn Network,
    validation_eps: Epsilon,
    next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
) -> RunReport {
    run_adaptive_observed(monitor, net, validation_eps, next_row, |_| {})
}

/// Everything the driver knows about one completed observation step, handed to
/// the observer of [`run_adaptive_observed`].
///
/// The campaign runner uses this to attribute message cost to *workload
/// phases* (e.g. the quiet/dense/adversarial segments of a regime-switching
/// generator): `messages_total` is cumulative, so the delta between two
/// consecutive observations is exactly what the step between them cost.
#[derive(Debug, Clone, Copy)]
pub struct StepObservation<'a> {
    /// 0-based index of the step that just completed.
    pub step: u64,
    /// The observations delivered at this step.
    pub row: &'a [Value],
    /// Membership events applied before this step's row was delivered
    /// (always empty under [`run_adaptive_observed`]).
    pub events: &'a [MembershipEvent],
    /// The monitor's output after processing the step.
    pub output: &'a [NodeId],
    /// Whether the output was a valid ε-top-k set for this row.
    pub valid: bool,
    /// Cumulative message count over the run, *including* this step.
    pub messages_total: u64,
}

/// [`run_adaptive`] with a per-step observer.
///
/// The observer runs after the monitor processed the step and the output was
/// validated — it sees the row, the output, the validity verdict and the
/// cumulative message count, but cannot influence the run (the adaptive
/// adversary contract stays with `next_row`).
pub fn run_adaptive_observed(
    monitor: &mut dyn Monitor,
    net: &mut dyn Network,
    validation_eps: Epsilon,
    next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
    observer: impl FnMut(StepObservation<'_>),
) -> RunReport {
    // A run without membership events: the population stays full and the
    // masking below is a no-op, so this is exactly the historical driver.
    run_with_membership_observed(
        monitor,
        net,
        validation_eps,
        next_row,
        |_| Vec::new(),
        observer,
    )
}

/// Drives `monitor` over an adaptive source *and* a membership schedule.
///
/// `events_at(step)` returns the [`MembershipEvent`]s taking effect at the
/// given 0-based step; they are applied — to the engine via
/// [`Network::apply_membership`] and to a driver-owned [`Population`] copy —
/// *before* the step's observation row is delivered, so a joiner observes
/// the row of the step it joins at. Validation is against the *masked* row
/// (dead slots pinned to `0`): that is the value vector the model actually
/// holds, and the ε-top-k definition applies to it unchanged.
///
/// # Panics
///
/// Panics on a malformed schedule (joining a live slot, a dead slot
/// leaving) — the same panic every engine raises, so driver and engine can
/// never silently disagree on who is live.
pub fn run_with_membership(
    monitor: &mut dyn Monitor,
    net: &mut dyn Network,
    validation_eps: Epsilon,
    next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
    events_at: impl FnMut(u64) -> Vec<MembershipEvent>,
) -> RunReport {
    run_with_membership_observed(monitor, net, validation_eps, next_row, events_at, |_| {})
}

/// [`run_with_membership`] with a per-step observer (see
/// [`run_adaptive_observed`] for the observer contract).
pub fn run_with_membership_observed(
    monitor: &mut dyn Monitor,
    net: &mut dyn Network,
    validation_eps: Epsilon,
    mut next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
    mut events_at: impl FnMut(u64) -> Vec<MembershipEvent>,
    mut observer: impl FnMut(StepObservation<'_>),
) -> RunReport {
    let k = monitor.k();
    let mut population = Population::new(net.n());
    let mut report = RunReport {
        steps: 0,
        invalid_steps: 0,
        inexact_steps: 0,
        stats: CommStats::default(),
        delta: 0,
        sigma: 0,
    };
    // One filter buffer for the whole run, refilled in place every step.
    let mut filters: Vec<Filter> = Vec::new();
    loop {
        net.peek_filters_into(&mut filters);
        let Some(mut row) = next_row(&filters) else {
            break;
        };
        let events = events_at(report.steps);
        if !events.is_empty() {
            for &event in &events {
                population.apply(event);
            }
            net.apply_membership(&events);
        }
        // The engines mask dead slots themselves; masking here too makes the
        // validated/observed row the model's value vector, not the raw
        // workload output.
        if population.live_count() != population.n() {
            population.mask_row(&mut row);
        }
        net.advance_time(&row);
        monitor.process_step(net);
        let output = monitor.output();
        let view = TopKView::new(&row, k, validation_eps);
        let valid = view.validate_output(&output).is_valid();
        if !valid {
            report.invalid_steps += 1;
        }
        if !view.validate_exact(&output) {
            report.inexact_steps += 1;
        }
        // `CostMeter::total_messages` is an O(1) running counter, so this
        // per-step path takes no CommStats snapshot and no map traversal.
        let messages_total = net.meter().total_messages();
        observer(StepObservation {
            step: report.steps,
            row: &row,
            events: &events,
            output: &output,
            valid,
            messages_total,
        });
        report.steps += 1;
        report.delta = report.delta.max(row.iter().copied().max().unwrap_or(0));
        report.sigma = report.sigma.max(view.sigma());
    }
    report.stats = net.stats();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::DeterministicEngine;

    /// A trivial (and expensive) reference monitor: probes every node every step
    /// and outputs the exact top-k. Used to test the driver itself.
    struct ProbeAllMonitor {
        k: usize,
        eps: Epsilon,
        output: Vec<NodeId>,
    }

    impl ProbeAllMonitor {
        fn new(k: usize, eps: Epsilon) -> Self {
            ProbeAllMonitor {
                k,
                eps,
                output: Vec::new(),
            }
        }
    }

    impl Monitor for ProbeAllMonitor {
        fn k(&self) -> usize {
            self.k
        }
        fn eps(&self) -> Option<Epsilon> {
            Some(self.eps)
        }
        fn process_step(&mut self, net: &mut dyn Network) {
            let values: Vec<Value> = (0..net.n()).map(|i| net.probe(NodeId(i))).collect();
            self.output = TopKView::new(&values, self.k, self.eps).exact_top_k();
        }
        fn output(&self) -> Vec<NodeId> {
            self.output.clone()
        }
        fn name(&self) -> &'static str {
            "probe-all"
        }
    }

    /// A deliberately broken monitor that always outputs nodes 0..k.
    struct ConstantMonitor {
        k: usize,
    }

    impl Monitor for ConstantMonitor {
        fn k(&self) -> usize {
            self.k
        }
        fn eps(&self) -> Option<Epsilon> {
            Some(Epsilon::HALF)
        }
        fn process_step(&mut self, _net: &mut dyn Network) {}
        fn output(&self) -> Vec<NodeId> {
            (0..self.k).map(NodeId).collect()
        }
        fn name(&self) -> &'static str {
            "constant"
        }
    }

    #[test]
    fn driver_counts_steps_and_messages() {
        let rows = vec![vec![1, 2, 3], vec![3, 2, 1], vec![2, 3, 1]];
        let mut net = DeterministicEngine::new(3, 1);
        let mut monitor = ProbeAllMonitor::new(1, Epsilon::HALF);
        let report = run_on_rows(&mut monitor, &mut net, rows, Epsilon::HALF);
        assert_eq!(report.steps, 3);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(report.inexact_steps, 0);
        // 3 steps × 3 probes × 2 messages each.
        assert_eq!(report.messages(), 18);
        assert_eq!(report.delta, 3);
        assert_eq!(monitor.name(), "probe-all");
    }

    #[test]
    fn driver_flags_invalid_outputs() {
        // Node 2 clearly dominates but the constant monitor reports node 0.
        let rows = vec![vec![1, 2, 1000], vec![1, 2, 1000]];
        let mut net = DeterministicEngine::new(3, 1);
        let mut monitor = ConstantMonitor { k: 1 };
        let report = run_on_rows(&mut monitor, &mut net, rows, Epsilon::HALF);
        assert_eq!(report.invalid_steps, 2);
        assert_eq!(report.inexact_steps, 2);
        assert_eq!(report.messages(), 0);
    }

    #[test]
    fn observer_sees_every_step_with_cumulative_messages() {
        let rows = vec![vec![1, 2, 3], vec![3, 2, 1], vec![2, 3, 1]];
        let mut net = DeterministicEngine::new(3, 1);
        let mut monitor = ProbeAllMonitor::new(1, Epsilon::HALF);
        let mut seen: Vec<(u64, u64, bool)> = Vec::new();
        let mut iter = rows.into_iter();
        let report = run_adaptive_observed(
            &mut monitor,
            &mut net,
            Epsilon::HALF,
            move |_| iter.next(),
            |obs| {
                assert_eq!(obs.row.len(), 3);
                assert_eq!(obs.output.len(), 1);
                seen.push((obs.step, obs.messages_total, obs.valid));
                if let Some(prev) = seen.len().checked_sub(2) {
                    assert!(
                        seen[prev].1 <= obs.messages_total,
                        "message counter must be cumulative"
                    );
                }
            },
        );
        assert_eq!(report.steps, 3);
        // Probe-all costs 6 messages per step; the observer saw the ramp.
        assert_eq!(report.messages(), 18);
    }

    #[test]
    fn membership_driver_masks_validation_and_applies_events() {
        // Node 2 dominates, leaves at step 1, rejoins at step 3. The
        // probe-all monitor must stay valid throughout because validation is
        // against the masked row, and the probes must see the masked values.
        let rows = vec![vec![1, 2, 1000]; 5];
        let mut net = DeterministicEngine::new(3, 1);
        let mut monitor = ProbeAllMonitor::new(1, Epsilon::HALF);
        let mut iter = rows.into_iter();
        let mut observed: Vec<(u64, Vec<Value>, Vec<NodeId>)> = Vec::new();
        let report = run_with_membership_observed(
            &mut monitor,
            &mut net,
            Epsilon::HALF,
            move |_| iter.next(),
            |step| match step {
                1 => vec![MembershipEvent::Leave(NodeId(2))],
                3 => vec![MembershipEvent::Join(NodeId(2))],
                _ => Vec::new(),
            },
            |obs| observed.push((obs.step, obs.row.to_vec(), obs.output.to_vec())),
        );
        assert_eq!(report.steps, 5);
        assert_eq!(report.invalid_steps, 0, "masked validation must hold");
        assert_eq!(observed[0].1, vec![1, 2, 1000]);
        assert_eq!(observed[1].1, vec![1, 2, 0], "dead slot masked");
        assert_eq!(observed[2].1, vec![1, 2, 0]);
        assert_eq!(observed[3].1, vec![1, 2, 1000], "joiner observes again");
        assert_eq!(
            observed[1].2,
            vec![NodeId(1)],
            "top-1 re-resolves to node 1"
        );
        assert_eq!(observed[3].2, vec![NodeId(2)]);
        assert_eq!(net.peek_value(NodeId(2)), 1000);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn membership_driver_rejects_malformed_schedules() {
        let mut net = DeterministicEngine::new(2, 1);
        let mut monitor = ProbeAllMonitor::new(1, Epsilon::HALF);
        let mut steps = 0;
        run_with_membership(
            &mut monitor,
            &mut net,
            Epsilon::HALF,
            move |_| {
                steps += 1;
                (steps <= 2).then(|| vec![1, 2])
            },
            |_| vec![MembershipEvent::Join(NodeId(0))],
        );
    }

    #[test]
    fn adaptive_driver_passes_filters() {
        let mut net = DeterministicEngine::new(2, 1);
        let mut monitor = ProbeAllMonitor::new(1, Epsilon::HALF);
        let mut calls = 0;
        let report = run_adaptive(&mut monitor, &mut net, Epsilon::HALF, |filters| {
            calls += 1;
            assert_eq!(filters.len(), 2);
            if calls <= 3 {
                Some(vec![10 * calls as Value, 5])
            } else {
                None
            }
        });
        assert_eq!(report.steps, 3);
        assert_eq!(report.sigma, 2);
    }
}
