//! The ε/2-gap algorithm of Corollary 5.9.
//!
//! When the online algorithm may use error `ε` but the offline adversary only
//! `ε' ≤ ε/2`, a much simpler (and cheaper) strategy than `DenseProtocol`
//! suffices: simulate only the *first* round of `DenseProtocol` and decide nodes
//! eagerly. Nodes observing values above `u₀ ≈ (1−ε/2)z/(1−ε)` go straight to
//! `V₁`, nodes below `ℓ₀ ≈ (1−ε/2)z` straight to `V₃`; a `V₂` node that violates
//! its `[ℓ₀, u₀]` filter is moved to `V₁` or `V₃` immediately (no candidate sets,
//! no interval halving). The protocol terminates — and restarts — as soon as a
//! `V₁` or `V₃` node violates its filter, more than `k` nodes end up in `V₁`, or
//! fewer than `k` nodes remain in `V₁ ∪ V₂`; each such event forces the ε/2
//! adversary to communicate (proof of Corollary 5.9), which is what buys the
//! `O(σ + k log n + log log Δ + log 1/ε)` competitiveness.
//!
//! If the initial probe shows a unique output (`v_{k+1}` clearly smaller than
//! `v_k`) the algorithm delegates to `TopKProtocol`, exactly as Corollary 5.9
//! prescribes.

use topk_model::prelude::*;
use topk_net::Network;

use crate::existence::detect_violations;
use crate::maximum::top_m;
use crate::monitor::Monitor;
use crate::topk_protocol::TopKMonitor;

/// Safety cap on protocol iterations within a single time step.
const MAX_ITERATIONS_PER_STEP: u32 = 200_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Part {
    V1,
    V2,
    V3,
}

/// Which mode the monitor currently runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HalfEpsMode {
    /// Unique output: the inner `TopKProtocol` is running.
    TopK,
    /// Dense neighbourhood: the simplified single-round partition is running.
    SingleRound,
}

/// Corollary 5.9 monitor.
#[derive(Debug, Clone)]
pub struct HalfEpsMonitor {
    k: usize,
    eps: Epsilon,
    mode: HalfEpsMode,
    topk: TopKMonitor,
    seen_topk_restarts: u64,
    /// Pivot and round-0 separators of the single-round mode.
    z: Value,
    l0: Value,
    u0: Value,
    part: Vec<Part>,
    output: Vec<NodeId>,
    initialised: bool,
    restarts: u64,
}

impl HalfEpsMonitor {
    /// Creates the monitor (online error `eps`; the adversary it is competitive
    /// against may use at most `eps/2`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, eps: Epsilon) -> HalfEpsMonitor {
        HalfEpsMonitor {
            k,
            eps,
            mode: HalfEpsMode::SingleRound,
            topk: TopKMonitor::new(k, eps),
            seen_topk_restarts: 0,
            z: 0,
            l0: 0,
            u0: 0,
            part: Vec::new(),
            output: Vec::new(),
            initialised: false,
            restarts: 0,
        }
    }

    /// Number of times the protocol restarted (each completed single-round
    /// instance forces the ε/2 adversary to communicate at least once).
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// The mode currently active.
    pub fn mode(&self) -> HalfEpsMode {
        self.mode
    }

    /// (Re)starts the protocol: probe the top-(k+1) values, pick the mode, and in
    /// single-round mode partition all nodes and assign round-0 filters.
    fn start_instance(&mut self, net: &mut dyn Network) {
        let n = net.n();
        assert!(
            self.k < n,
            "k = {} must be smaller than the number of nodes n = {}",
            self.k,
            n
        );
        self.restarts += 1;
        net.meter().push_label(ProtocolLabel::HalfEps);
        let top = top_m(net, self.k + 1);
        let v_k = top[self.k - 1].1;
        let v_k1 = top[self.k].1;
        if self.eps.clearly_smaller(v_k1, v_k) {
            // Unique output: delegate to TopKProtocol from a clean slate.
            self.mode = HalfEpsMode::TopK;
            self.topk = TopKMonitor::new(self.k, self.eps);
            self.seen_topk_restarts = 0;
            net.meter().pop_label();
            return;
        }
        self.mode = HalfEpsMode::SingleRound;
        self.z = v_k.max(1);
        let z_lo = self.eps.scale_down(self.z);
        self.l0 = z_lo + (self.z - z_lo) / 2;
        self.u0 = self.eps.scale_up(self.l0);

        // Partition by the round-0 separators so that no node violates right
        // after the (re)start; the separators coincide with the paper's
        // (1 − ε/2)-thresholds up to integer rounding.
        self.part = vec![Part::V3; n];
        net.broadcast_group(NodeGroup::V3);
        let mut upper: Option<(Value, NodeId)> = None;
        while let Some((node, value)) = crate::maximum::find_max_below(net, upper) {
            if value < self.l0 {
                break;
            }
            let i = node.index();
            self.part[i] = if value > self.u0 { Part::V1 } else { Part::V2 };
            net.assign_group(
                node,
                if value > self.u0 {
                    NodeGroup::V1
                } else {
                    NodeGroup::V2_PLAIN
                },
            );
            upper = Some((value, node));
        }
        net.broadcast_params(FilterParams::Dense {
            l_r: self.l0,
            u_r: self.u0,
            z_lo: self.eps.scale_down(self.z),
            z_hi: self.eps.scale_up(self.z),
        });
        self.recompute_output();
        net.meter().pop_label();
    }

    fn recompute_output(&mut self) -> bool {
        let mut mandatory = Vec::new();
        let mut fill = Vec::new();
        for (i, part) in self.part.iter().enumerate() {
            match part {
                Part::V1 => mandatory.push(NodeId(i)),
                Part::V2 => fill.push(NodeId(i)),
                Part::V3 => {}
            }
        }
        if mandatory.len() > self.k || mandatory.len() + fill.len() < self.k {
            return false;
        }
        mandatory.extend(fill.into_iter().take(self.k - mandatory.len()));
        self.output = mandatory;
        true
    }

    fn single_round_step(&mut self, net: &mut dyn Network) {
        net.meter().push_label(ProtocolLabel::HalfEps);
        for _ in 0..MAX_ITERATIONS_PER_STEP {
            let violations = detect_violations(net);
            let Some(first) = violations.first() else {
                break;
            };
            let (node, direction) = match *first {
                NodeMessage::ViolationReport {
                    node, direction, ..
                } => (node, direction),
                ref other => unreachable!("violation detection returned {other:?}"),
            };
            let i = node.index();
            match (self.part[i], direction) {
                // Any violation by a decided node terminates the instance: the
                // ε/2 adversary cannot have survived it (Corollary 5.9 proof).
                (Part::V1, _) | (Part::V3, _) => {
                    net.meter().pop_label();
                    self.start_instance(net);
                    net.meter().push_label(ProtocolLabel::HalfEps);
                    if self.mode != HalfEpsMode::SingleRound {
                        // The restart switched to TopKProtocol; the caller hands
                        // the rest of this time step to the inner monitor.
                        break;
                    }
                    continue;
                }
                // Undecided nodes are decided eagerly.
                (Part::V2, Violation::FromBelow) => {
                    self.part[i] = Part::V1;
                    net.assign_group(node, NodeGroup::V1);
                }
                (Part::V2, Violation::FromAbove) => {
                    self.part[i] = Part::V3;
                    net.assign_group(node, NodeGroup::V3);
                }
            }
            if !self.recompute_output() {
                net.meter().pop_label();
                self.start_instance(net);
                net.meter().push_label(ProtocolLabel::HalfEps);
                if self.mode != HalfEpsMode::SingleRound {
                    break;
                }
            }
        }
        net.meter().pop_label();
    }
}

impl Monitor for HalfEpsMonitor {
    fn k(&self) -> usize {
        self.k
    }

    fn eps(&self) -> Option<Epsilon> {
        Some(self.eps)
    }

    fn process_step(&mut self, net: &mut dyn Network) {
        if !self.initialised {
            self.start_instance(net);
            self.initialised = true;
        }
        // A mode switch mid-step hands the rest of the step to the other
        // handler; two passes suffice because a switch re-initialises filters
        // from the current values.
        for _ in 0..2 {
            match self.mode {
                HalfEpsMode::SingleRound => {
                    self.single_round_step(net);
                    if self.mode == HalfEpsMode::SingleRound {
                        break;
                    }
                }
                HalfEpsMode::TopK => {
                    self.topk.process_step(net);
                    // When the inner TopKProtocol terminates an instance,
                    // re-evaluate which mode fits the current input.
                    if self.seen_topk_restarts > 0 && self.topk.restarts() > self.seen_topk_restarts
                    {
                        self.start_instance(net);
                        if self.mode == HalfEpsMode::TopK {
                            // Re-dispatched to a fresh TopKProtocol instance:
                            // initialise it now so the output is never stale.
                            self.topk.process_step(net);
                        } else {
                            // Hand the rest of the step to the single-round mode.
                            continue;
                        }
                    }
                    self.seen_topk_restarts = self.topk.restarts();
                    break;
                }
            }
        }
    }

    fn output(&self) -> Vec<NodeId> {
        match self.mode {
            HalfEpsMode::SingleRound => self.output.clone(),
            HalfEpsMode::TopK => {
                let out = self.topk.output();
                if out.is_empty() {
                    self.output.clone()
                } else {
                    out
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "half-eps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{run_on_rows, RunReport};
    use topk_gen::{GapWorkload, NoiseOscillationWorkload, Workload};
    use topk_net::DeterministicEngine;

    fn drive(
        rows: Vec<Vec<Value>>,
        k: usize,
        eps: Epsilon,
        seed: u64,
    ) -> (RunReport, HalfEpsMonitor) {
        let n = rows[0].len();
        let mut net = DeterministicEngine::new(n, seed);
        let mut monitor = HalfEpsMonitor::new(k, eps);
        let report = run_on_rows(&mut monitor, &mut net, rows, eps);
        (report, monitor)
    }

    #[test]
    fn delegates_to_topk_on_gap_inputs() {
        let mut w = GapWorkload::standard(10, 2, 100_000, 3);
        let rows: Vec<Vec<Value>> = (0..40).map(|_| w.next_step()).collect();
        let (report, monitor) = drive(rows, 2, Epsilon::TENTH, 3);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.mode(), HalfEpsMode::TopK);
    }

    #[test]
    fn single_round_mode_on_dense_inputs() {
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(16, 2, 10, 100_000, eps, 5);
        let rows: Vec<Vec<Value>> = (0..60).map(|_| w.next_step()).collect();
        let (report, monitor) = drive(rows, 5, eps, 5);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.mode(), HalfEpsMode::SingleRound);
    }

    #[test]
    fn valid_on_static_values() {
        let rows = vec![vec![100, 97, 94, 40, 10]; 20];
        let (report, monitor) = drive(rows, 2, Epsilon::TENTH, 1);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.restarts(), 1);
    }

    #[test]
    fn cheaper_than_dense_protocol_against_weak_adversary_workload() {
        // On a dense oscillation the single-round strategy should not cost more
        // than the full DenseProtocol (it gives up earlier and re-initialises,
        // but never pays for interval halving or sub-protocols).
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(20, 2, 8, 500_000, eps, 11);
        let rows: Vec<Vec<Value>> = (0..100).map(|_| w.next_step()).collect();
        let (half_report, _) = drive(rows.clone(), 4, eps, 11);
        let mut net = DeterministicEngine::new(20, 11);
        let mut dense = crate::DenseMonitor::new(4, eps);
        let dense_report = run_on_rows(&mut dense, &mut net, rows, eps);
        assert_eq!(half_report.invalid_steps, 0);
        assert_eq!(dense_report.invalid_steps, 0);
        // Both must be far below the trivial per-step cost; we do not assert a
        // strict ordering because the workloads are random, only sanity.
        assert!(half_report.messages() < 100 * 20);
    }

    #[test]
    fn restarts_forced_by_decided_node_violations() {
        // A V1 node crashing to a tiny value forces a restart.
        let mut rows = vec![vec![2000, 980, 960, 940, 10]; 10];
        rows.extend(vec![vec![5, 980, 960, 940, 10]; 10]);
        let (report, monitor) = drive(rows, 2, Epsilon::TENTH, 2);
        assert_eq!(report.invalid_steps, 0);
        assert!(monitor.restarts() >= 2);
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        let _ = HalfEpsMonitor::new(0, Epsilon::HALF);
    }
}
