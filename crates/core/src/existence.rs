//! The existence protocol (Sect. 3 of the paper).
//!
//! All nodes hold a bit (here: the result of evaluating an
//! [`ExistencePredicate`] locally); the server wants to know whether any node
//! holds a 1, and — because responses carry the sender's identity and value —
//! *which* nodes do. The protocol proceeds in rounds `r = 0, 1, …, ⌈log₂ n⌉`: in
//! round `r` every node holding a 1 sends a message independently with
//! probability `2^r / n`. The run ends as soon as at least one message arrived or
//! the last round finished. Lemma 3.1 shows the expected number of node messages
//! is at most 6 regardless of how many nodes hold a 1 (a Las Vegas protocol: the
//! answer is always correct, only the cost is random). Experiment E1 measures
//! this constant.
//!
//! Corollary 3.2 instantiates the predicate with "I observed a filter violation"
//! to detect violations with O(1) expected messages per time step — the
//! work-horse every other protocol in this crate uses after every observation.

use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_net::Network;

/// Result of one existence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExistenceOutcome {
    /// The responses received in the terminating round (empty iff no node's
    /// predicate holds — the protocol is always correct).
    pub responses: Vec<NodeMessage>,
    /// The round in which the first responses arrived, if any.
    pub terminated_in_round: Option<u32>,
}

impl ExistenceOutcome {
    /// Whether some node's predicate holds.
    pub fn exists(&self) -> bool {
        !self.responses.is_empty()
    }
}

/// Number of rounds the protocol uses for `n` nodes: `⌈log₂ n⌉ + 1` (rounds are
/// numbered `0..=⌈log₂ n⌉`, and in the last round active nodes send with
/// probability 1).
pub fn round_budget(n: usize) -> u32 {
    (n.max(1) as u64).next_power_of_two().trailing_zeros() + 1
}

/// Runs the existence protocol of Lemma 3.1 for `predicate`.
///
/// Returns the responses of the terminating round. The expected number of
/// upstream messages is O(1); if at least one response arrives the server
/// announces the end of the run with one broadcast (silent runs need no
/// announcement, so a time step without filter violations is free).
///
/// ```
/// use topk_core::existence::existence;
/// use topk_model::message::ExistencePredicate;
/// use topk_model::NodeId;
/// use topk_net::{DeterministicEngine, Network};
///
/// let mut net = DeterministicEngine::new(8, 42);
/// net.advance_time(&[1, 2, 3, 4, 5, 6, 7, 100]);
/// // Distributed OR: "does any node hold a value above 50?" — always
/// // correct, O(1) expected messages (Lemma 3.1).
/// let out = existence(&mut net, ExistencePredicate::GreaterThan(50));
/// assert!(out.exists());
/// assert!(out.responses.iter().all(|r| r.sender() == NodeId(7)));
/// // No node above 100: a silent run, free of model messages.
/// let out = existence(&mut net, ExistencePredicate::GreaterThan(100));
/// assert!(!out.exists());
/// assert_eq!(out.terminated_in_round, None);
/// ```
pub fn existence(net: &mut dyn Network, predicate: ExistencePredicate) -> ExistenceOutcome {
    let mut responses = Vec::new();
    let terminated_in_round = existence_into(net, predicate, &mut responses);
    ExistenceOutcome {
        responses,
        terminated_in_round,
    }
}

/// Buffer-reusing variant of [`existence`]: clears `responses` and fills it
/// with the responses of the terminating round (leaving it empty for a silent
/// run), returning the round that terminated the run, if any.
///
/// This is the engine-agnostic hot path: every [`Network`] implementation's
/// `existence_round_into` keeps silent rounds allocation-free, and a caller
/// that runs many existence runs (one violation check per time step, or the
/// record-breaking search of the maximum protocol) reuses one buffer across
/// all of them instead of allocating per responding run.
pub fn existence_into(
    net: &mut dyn Network,
    predicate: ExistencePredicate,
    responses: &mut Vec<NodeMessage>,
) -> Option<u32> {
    net.meter().push_label(ProtocolLabel::Existence);
    let n = net.n();
    // The `ExistenceRound` wire message carries the population as 32 bits
    // (plenty for the model's O(log(n·Δ))-bit budget). Refuse larger populations
    // loudly instead of silently truncating the send probability.
    let population = u32::try_from(n).unwrap_or_else(|_| {
        panic!("existence protocol: population n = {n} exceeds the u32::MAX supported by the ExistenceRound wire format")
    });
    let rounds = round_budget(n);
    let mut terminated_in_round = None;
    responses.clear();
    for round in 0..rounds {
        net.existence_round_into(round, population, predicate, responses);
        if !responses.is_empty() {
            net.end_existence_run();
            terminated_in_round = Some(round);
            break;
        }
    }
    net.meter().pop_label();
    terminated_in_round
}

/// Detects filter violations at the current time step (Corollary 3.2).
///
/// Every node that currently observes a value outside its filter participates
/// with a 1; the reports carry the violating value and the direction, so the
/// caller can react without further probes.
pub fn detect_violations(net: &mut dyn Network) -> Vec<NodeMessage> {
    existence(net, ExistencePredicate::PendingViolation).responses
}

/// Buffer-reusing variant of [`detect_violations`]: clears `reports` and
/// fills it with the violation reports of the current time step. Drivers that
/// check for violations every step (the monitors, the throughput harness)
/// reuse one buffer for the whole run.
pub fn detect_violations_into(net: &mut dyn Network, reports: &mut Vec<NodeMessage>) {
    existence_into(net, ExistencePredicate::PendingViolation, reports);
}

/// Convenience wrapper: "is any value strictly above `threshold`?".
pub fn any_above(net: &mut dyn Network, threshold: Value) -> ExistenceOutcome {
    existence(net, ExistencePredicate::GreaterThan(threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::DeterministicEngine;

    #[test]
    fn round_budget_is_log_n_plus_one() {
        assert_eq!(round_budget(1), 1);
        assert_eq!(round_budget(2), 2);
        assert_eq!(round_budget(8), 4);
        assert_eq!(round_budget(9), 5);
        assert_eq!(round_budget(1024), 11);
    }

    #[test]
    fn existence_is_always_correct() {
        for seed in 0..30 {
            let mut net = DeterministicEngine::new(16, seed);
            let mut values = vec![0u64; 16];
            values[(seed as usize) % 16] = 100;
            net.advance_time(&values);
            // Exactly one node above 50.
            let out = any_above(&mut net, 50);
            assert!(out.exists());
            assert!(out.responses.iter().all(|r| r.value() == 100));
            // No node above 100.
            let out = any_above(&mut net, 100);
            assert!(!out.exists());
            assert_eq!(out.terminated_in_round, None);
        }
    }

    #[test]
    fn silent_runs_cost_nothing() {
        let mut net = DeterministicEngine::new(64, 3);
        net.advance_time(&vec![10; 64]);
        let before = net.stats().total_messages();
        let out = any_above(&mut net, 100);
        assert!(!out.exists());
        assert_eq!(
            net.stats().total_messages(),
            before,
            "silent run must be free"
        );
        // But it still uses its round budget.
        assert_eq!(net.stats().rounds, u64::from(round_budget(64)));
    }

    #[test]
    fn expected_messages_are_constant() {
        // Lemma 3.1: expected messages <= 6 for any number b of ones. We measure
        // the empirical mean over many runs for b = n (the worst case for naive
        // polling) and assert it is far below b.
        let n = 256;
        let trials = 200;
        let mut total_upstream = 0u64;
        for seed in 0..trials {
            let mut net = DeterministicEngine::new(n, seed);
            net.advance_time(&vec![100u64; n]);
            let out = any_above(&mut net, 0);
            assert!(out.exists());
            total_upstream += net.stats().messages_of_kind(MessageKind::Upstream);
        }
        let mean = total_upstream as f64 / trials as f64;
        assert!(
            mean <= 6.0,
            "mean upstream messages {mean} exceeds the Lemma 3.1 bound"
        );
        assert!(mean >= 1.0);
    }

    #[test]
    fn existence_into_reuses_the_buffer_and_matches_the_allocating_form() {
        let mut a = DeterministicEngine::new(16, 21);
        let mut b = DeterministicEngine::new(16, 21);
        let values: Vec<Value> = (0..16).map(|i| i * 5).collect();
        a.advance_time(&values);
        b.advance_time(&values);
        let mut buf = vec![NodeMessage::ExistenceResponse {
            node: NodeId(0),
            value: 0,
        }]; // stale contents must be replaced
        for threshold in [0, 30, 70, 100] {
            let round =
                existence_into(&mut a, ExistencePredicate::GreaterThan(threshold), &mut buf);
            let outcome = existence(&mut b, ExistencePredicate::GreaterThan(threshold));
            assert_eq!(buf, outcome.responses);
            assert_eq!(round, outcome.terminated_in_round);
        }
        assert_eq!(a.stats(), b.stats());
        // The violation wrapper clears the buffer on silent steps too.
        buf.push(NodeMessage::ExistenceResponse {
            node: NodeId(1),
            value: 1,
        });
        detect_violations_into(&mut a, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn detect_violations_reports_direction_and_value() {
        let mut net = DeterministicEngine::new(4, 9);
        net.advance_time(&[10, 20, 30, 40]);
        net.assign_filter(NodeId(3), Filter::at_most(35));
        net.assign_filter(NodeId(0), Filter::at_least(15));
        let mut reports = detect_violations(&mut net);
        reports.sort_by_key(|r| r.sender());
        // Both violations exist; the existence protocol may surface one or both
        // in the terminating round, but at least one must be reported.
        assert!(!reports.is_empty());
        for r in &reports {
            match *r {
                NodeMessage::ViolationReport {
                    node,
                    value,
                    direction,
                } => {
                    if node == NodeId(0) {
                        assert_eq!(value, 10);
                        assert_eq!(direction, Violation::FromAbove);
                    } else {
                        assert_eq!(node, NodeId(3));
                        assert_eq!(value, 40);
                        assert_eq!(direction, Violation::FromBelow);
                    }
                }
                ref other => panic!("unexpected response {other:?}"),
            }
        }
        // No violations → empty.
        net.assign_filter(NodeId(3), Filter::FULL);
        net.assign_filter(NodeId(0), Filter::FULL);
        assert!(detect_violations(&mut net).is_empty());
    }

    #[test]
    fn messages_are_attributed_to_the_existence_label() {
        let mut net = DeterministicEngine::new(8, 1);
        net.advance_time(&[1, 2, 3, 4, 5, 6, 7, 100]);
        let _ = any_above(&mut net, 50);
        let stats = net.stats();
        assert_eq!(
            stats.messages_of_label(ProtocolLabel::Existence),
            stats.total_messages()
        );
    }
}
