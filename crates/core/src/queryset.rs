//! Multi-query monitoring: many concurrent top-k queries over one shared
//! node population.
//!
//! A [`QuerySet`] registers `Q` queries — each a [`QuerySpec`] (`k`, `ε`,
//! protocol, node subset) paired with the [`Monitor`] that runs it — against a
//! single engine. The normative semantics live in `docs/QUERIES.md`; in
//! brief:
//!
//! * **Effective filters.** A node stays a single-filter device: its physical
//!   filter is the *intersection* of the bands every covering query assigns
//!   it ([`Filter::intersect`]). The per-query bands are mirrored server-side
//!   ([`QuerySet`] keeps one group/params/band mirror per query), and every
//!   band change pushes the recomputed intersection through
//!   [`Network::assign_query_filter`] (the changed band's own charged
//!   unicast) or [`Network::load_query_filters`] (free recomputation on nodes
//!   whose own band did not change).
//! * **Violation routing.** Because the effective filter is the intersection,
//!   a physical violation is a violation of *at least one* covering query's
//!   band. Reports are routed to exactly the queries whose band the value
//!   violates, with the direction rewritten against that query's band. A
//!   per-step **report pool** lets one physical report serve every consumer:
//!   the first consumer's existence run elicits it, later consumers are
//!   served from the pool without new upstream traffic — this is where the
//!   joint run beats `Q` independent runs.
//! * **Split-charging.** Every attributed wire message lands in a
//!   [`QueryCostLedger`]: messages sent on behalf of one query are charged to
//!   it exclusively, pool-shared reports are split in [`SPLIT_SCALE`]
//!   fixed-point units. The runner asserts the ledger invariant — per-query
//!   units sum to `SPLIT_SCALE ×` the engine's message total — after every
//!   run.
//! * **Single-query equivalence.** A `QuerySet` of one full-population query
//!   delegates to [`run_with_membership_observed`] and therefore reproduces
//!   the legacy single-monitor run *byte for byte* — same replies, same
//!   `CommStats`, same filters, values and RNG streams on every engine. The
//!   differential battery and the golden-trace corpus enforce this.
//!
//! Membership churn composed with multi-query monitoring is out of scope:
//! the multi-query driver rejects non-empty membership schedules (the solo
//! path supports them unchanged).

use crate::monitor::{run_with_membership_observed, Monitor};
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_net::Network;

/// A set of concurrent queries over one shared population of `n` nodes.
///
/// Queries are registered in order; [`QueryId`]s are their dense 0-based
/// registration ranks. The set owns the monitors and is driven by
/// [`run_query_set`] / [`run_query_set_observed`].
pub struct QuerySet {
    n: usize,
    queries: Vec<RegisteredQuery>,
}

struct RegisteredQuery {
    spec: QuerySpec,
    monitor: Box<dyn Monitor>,
    /// Resolved subset: sorted, deduplicated global node ids.
    subset: Vec<NodeId>,
}

impl std::fmt::Debug for QuerySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySet")
            .field("n", &self.n)
            .field("queries", &self.queries.len())
            .finish()
    }
}

impl QuerySet {
    /// An empty query set over a population of `n` nodes.
    pub fn new(n: usize) -> QuerySet {
        QuerySet {
            n,
            queries: Vec::new(),
        }
    }

    /// Registers a query and the monitor that runs it, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the spec's `k` disagrees with the monitor's, if the subset
    /// names a node outside the population, or if `k` exceeds the subset
    /// size (the query could never produce `k` outputs).
    pub fn register(&mut self, spec: QuerySpec, monitor: Box<dyn Monitor>) -> QueryId {
        assert_eq!(
            spec.k,
            monitor.k(),
            "query spec k = {} but the monitor runs k = {}",
            spec.k,
            monitor.k()
        );
        let subset = spec.subset.resolve(self.n);
        assert!(
            spec.k <= subset.len(),
            "query k = {} exceeds its subset of {} nodes",
            spec.k,
            subset.len()
        );
        let id = QueryId(self.queries.len() as u32);
        self.queries.push(RegisteredQuery {
            spec,
            monitor,
            subset,
        });
        id
    }

    /// Population size the set monitors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether no query is registered yet.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The spec a query was registered with.
    pub fn spec(&self, q: QueryId) -> &QuerySpec {
        &self.queries[q.index()].spec
    }

    /// The resolved (sorted, deduplicated) node subset of a query.
    pub fn subset(&self, q: QueryId) -> &[NodeId] {
        &self.queries[q.index()].subset
    }

    /// Whether this set takes the bit-identical single-query fast path: one
    /// query covering the full population.
    pub fn is_solo(&self) -> bool {
        self.queries.len() == 1 && self.queries[0].subset.len() == self.n
    }
}

/// Per-query outcome of a query-set run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRunReport {
    /// The query this report belongs to.
    pub query: QueryId,
    /// Steps processed (same for every query of a set).
    pub steps: u64,
    /// Steps at which this query's output violated its ε-top-k definition.
    pub invalid_steps: u64,
    /// Steps at which this query's output differed from its exact top-k.
    pub inexact_steps: u64,
    /// Attributed cost in [`SPLIT_SCALE`] fixed-point units per message.
    pub units: u64,
}

impl QueryRunReport {
    /// Attributed cost in (fractional) messages.
    pub fn attributed_messages(&self) -> f64 {
        self.units as f64 / SPLIT_SCALE as f64
    }
}

/// Outcome of driving a [`QuerySet`] over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySetReport {
    /// Steps processed.
    pub steps: u64,
    /// Communication statistics of the shared engine (the *joint* wire cost).
    pub stats: CommStats,
    /// Largest value observed over the run.
    pub delta: Value,
    /// Per-query reports, in registration order.
    pub per_query: Vec<QueryRunReport>,
    /// Every violation-report delivery `(query, global node)` of the run, in
    /// delivery order — the audit trail the routing proptests check.
    pub deliveries: Vec<(QueryId, NodeId)>,
}

impl QuerySetReport {
    /// Total messages the joint run put on the wire.
    pub fn messages(&self) -> u64 {
        self.stats.total_messages()
    }

    /// Sum of all per-query attributed units. After every run this equals
    /// `SPLIT_SCALE ×` [`QuerySetReport::messages`] (asserted by the runner).
    pub fn total_units(&self) -> u64 {
        self.per_query.iter().map(|r| r.units).sum()
    }
}

/// Everything the driver knows about one completed observation step of a
/// query-set run, handed to the observer of [`run_query_set_observed`].
#[derive(Debug, Clone, Copy)]
pub struct QueryStepObservation<'a> {
    /// 0-based index of the step that just completed.
    pub step: u64,
    /// The observations delivered at this step (global, full population).
    pub row: &'a [Value],
    /// Each query's output after the step, mapped to *global* node ids, in
    /// registration order.
    pub outputs: &'a [Vec<NodeId>],
    /// Per-query validity verdicts for this step, in registration order.
    pub valid: &'a [bool],
    /// Cumulative message count of the shared engine, including this step.
    pub messages_total: u64,
    /// Cumulative attributed units per query, in registration order.
    pub units: &'a [u64],
}

/// Drives a query set over pre-recorded observation rows.
///
/// # Panics
///
/// Panics if the set is empty or a row's length differs from the population.
pub fn run_query_set(
    set: &mut QuerySet,
    net: &mut dyn Network,
    rows: impl IntoIterator<Item = Vec<Value>>,
) -> QuerySetReport {
    let mut iter = rows.into_iter();
    run_query_set_observed(
        set,
        net,
        move |_filters| iter.next(),
        |_| Vec::new(),
        |_| {},
    )
}

/// Drives a query set with an adaptive source (the source sees the *effective*
/// filters currently assigned to the nodes).
pub fn run_query_set_adaptive(
    set: &mut QuerySet,
    net: &mut dyn Network,
    next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
) -> QuerySetReport {
    run_query_set_observed(set, net, next_row, |_| Vec::new(), |_| {})
}

/// The full query-set driver: adaptive source, membership schedule and
/// per-step observer.
///
/// `net` must be a fresh engine (no prior traffic) — the attribution ledger
/// accounts the engine's whole message total. A set of one full-population
/// query runs on the bit-identical legacy path and supports membership
/// events; a genuinely multi-query set rejects non-empty schedules.
///
/// # Panics
///
/// Panics if the set is empty, a row length differs from the population, or a
/// multi-query run is given membership events.
pub fn run_query_set_observed(
    set: &mut QuerySet,
    net: &mut dyn Network,
    next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
    events_at: impl FnMut(u64) -> Vec<MembershipEvent>,
    observer: impl FnMut(QueryStepObservation<'_>),
) -> QuerySetReport {
    assert!(!set.is_empty(), "cannot run an empty query set");
    assert_eq!(
        set.n(),
        net.n(),
        "query set monitors {} nodes but the engine hosts {}",
        set.n(),
        net.n()
    );
    if set.is_solo() {
        run_solo(set, net, next_row, events_at, observer)
    } else {
        run_multi(set, net, next_row, events_at, observer)
    }
}

/// The single-query fast path: delegates to the legacy driver so the run is
/// byte-for-byte the legacy monitor run (same replies, `CommStats`, filters,
/// values and RNG streams on every engine).
fn run_solo(
    set: &mut QuerySet,
    net: &mut dyn Network,
    next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
    events_at: impl FnMut(u64) -> Vec<MembershipEvent>,
    mut observer: impl FnMut(QueryStepObservation<'_>),
) -> QuerySetReport {
    let rq = &mut set.queries[0];
    let eps = rq.spec.eps;
    let report =
        run_with_membership_observed(rq.monitor.as_mut(), net, eps, next_row, events_at, |obs| {
            let outputs = [obs.output.to_vec()];
            let valid = [obs.valid];
            let units = [obs.messages_total * SPLIT_SCALE];
            observer(QueryStepObservation {
                step: obs.step,
                row: obs.row,
                outputs: &outputs,
                valid: &valid,
                messages_total: obs.messages_total,
                units: &units,
            });
        });
    QuerySetReport {
        steps: report.steps,
        delta: report.delta,
        per_query: vec![QueryRunReport {
            query: QueryId(0),
            steps: report.steps,
            invalid_steps: report.invalid_steps,
            inexact_steps: report.inexact_steps,
            units: report.stats.total_messages() * SPLIT_SCALE,
        }],
        stats: report.stats,
        deliveries: Vec::new(),
    }
}

/// Server-side mirror of one query's node-facing state: what a dedicated
/// single-query deployment's nodes would hold for this query.
struct QueryMirror {
    /// Global node index per local id (sorted ascending, so local order
    /// preserves global `(value, id)` tie-breaking).
    subset: Vec<usize>,
    /// Local id per global node index (`None` outside the subset).
    local_of: Vec<Option<u32>>,
    /// The query's band per local node — initially [`Filter::FULL`].
    bands: Vec<Filter>,
    /// The query's group per local node — initially [`NodeGroup::Lower`],
    /// mirroring a fresh node.
    groups: Vec<NodeGroup>,
    /// The query's last broadcast parameters (`None` until the first
    /// broadcast, mirroring a fresh node).
    params: Option<FilterParams>,
    /// Whether the current existence run of this query ran a physical round
    /// (a fully pool-served run is physically silent, so its end-of-run
    /// broadcast is suppressed and uncharged).
    run_had_physical: bool,
}

/// One node's entry in the per-step shared report pool.
struct PoolEntry {
    /// Global node index.
    node: usize,
    /// The value the node reported this step.
    value: Value,
    /// Whether a physical upstream charge is currently held for this report
    /// (strays are retracted until their first consumer re-charges them).
    charged: bool,
    /// Open split-charge ledger entry, once a consumer exists.
    ledger_entry: Option<usize>,
    /// Which queries this report was already delivered to.
    served: Vec<bool>,
}

/// The per-step report pool: one entry per node that reported this step.
struct StepPool {
    entries: Vec<PoolEntry>,
    /// Global node index → pool entry index.
    index: Vec<Option<u32>>,
}

impl StepPool {
    fn new(n: usize) -> StepPool {
        StepPool {
            entries: Vec::new(),
            index: vec![None; n],
        }
    }

    fn reset(&mut self) {
        for e in self.entries.drain(..) {
            self.index[e.node] = None;
        }
    }

    /// Returns the entry index for `node`, creating an uncharged, unserved
    /// entry when the node has not reported this step yet.
    fn upsert(&mut self, node: usize, value: Value, queries: usize) -> usize {
        match self.index[node] {
            Some(i) => {
                self.entries[i as usize].value = value;
                i as usize
            }
            None => {
                let i = self.entries.len();
                self.entries.push(PoolEntry {
                    node,
                    value,
                    charged: false,
                    ledger_entry: None,
                    served: vec![false; queries],
                });
                self.index[node] = Some(i as u32);
                i
            }
        }
    }
}

/// All shared state of a multi-query run; [`QueryView`] borrows it per query.
struct MultiState<'n> {
    net: &'n mut dyn Network,
    mirrors: Vec<QueryMirror>,
    /// Queries covering each global node, in registration order.
    cover: Vec<Vec<u32>>,
    pool: StepPool,
    ledger: QueryCostLedger,
    deliveries: Vec<(QueryId, NodeId)>,
    scratch: Vec<NodeMessage>,
    push_buf: Vec<(NodeId, Filter)>,
}

impl MultiState<'_> {
    /// The intersection of every covering query's band for global node `g`.
    fn effective(&self, g: usize) -> Filter {
        let mut f = Filter::FULL;
        for &qi in &self.cover[g] {
            let m = &self.mirrors[qi as usize];
            let l = m.local_of[g].expect("cover lists only subset members") as usize;
            f = f.intersect(&m.bands[l]);
        }
        f
    }

    /// Pushes the recomputed effective filter of one node on behalf of query
    /// `q`'s own charged unicast.
    fn push_one_charged(&mut self, q: usize, l: usize) {
        let g = self.mirrors[q].subset[l];
        let eff = self.effective(g);
        self.net
            .assign_query_filter(QueryId(q as u32), NodeId(g), eff);
        self.ledger.charge_exclusive(QueryId(q as u32), 1);
    }

    /// Pushes the recomputed effective filters of query `q`'s whole subset
    /// free of charge (the nodes recompute locally after a broadcast).
    fn push_all_free(&mut self, q: usize) {
        let mut pairs = std::mem::take(&mut self.push_buf);
        pairs.clear();
        for l in 0..self.mirrors[q].subset.len() {
            let g = self.mirrors[q].subset[l];
            pairs.push((NodeId(g), self.effective(g)));
        }
        self.net.load_query_filters(&pairs);
        self.push_buf = pairs;
    }
}

/// The `|S_q|`-node [`Network`] one query's monitor programs against: node
/// ids are local subset ranks, bands are the query's own mirrors, and every
/// transport call is translated to shared-engine traffic with per-query
/// attribution. See the module docs for the translation rules.
struct QueryView<'n, 's> {
    st: &'s mut MultiState<'n>,
    q: usize,
}

impl QueryView<'_, '_> {
    fn qid(&self) -> QueryId {
        QueryId(self.q as u32)
    }

    fn to_global(&self, local: NodeId) -> NodeId {
        NodeId(self.st.mirrors[self.q].subset[local.index()])
    }

    /// Translates local [`ExistencePredicate`] coordinates to global ones.
    /// The subset is sorted ascending, so the local → global map is monotone
    /// and rank comparisons are preserved.
    fn remap_predicate(&self, p: ExistencePredicate) -> ExistencePredicate {
        match p {
            ExistencePredicate::RankWindow { above, below } => ExistencePredicate::RankWindow {
                above: above.map(|(v, id)| (v, self.to_global(id))),
                below: below.map(|(v, id)| (v, self.to_global(id))),
            },
            other => other,
        }
    }

    /// Serves the pool to this query: every undelivered report whose value
    /// violates the query's band, as reconstructed [`NodeMessage`]s in local
    /// coordinates. Returns whether anything was served.
    fn serve_pool(&mut self, replies: &mut Vec<NodeMessage>) -> bool {
        let st = &mut *self.st;
        let qid = QueryId(self.q as u32);
        let mirror = &st.mirrors[self.q];
        let mut hits: Vec<(usize, u32, Value, Violation)> = Vec::new();
        for (ei, entry) in st.pool.entries.iter().enumerate() {
            if entry.served[self.q] {
                continue;
            }
            let Some(l) = mirror.local_of[entry.node] else {
                continue;
            };
            if let Some(dir) = mirror.bands[l as usize].check(entry.value) {
                hits.push((ei, l, entry.value, dir));
            }
        }
        if hits.is_empty() {
            return false;
        }
        hits.sort_by_key(|h| h.1);
        // The reconstruction is free of physical traffic but still occupies
        // one protocol round.
        st.net.meter().record_round();
        for (ei, l, value, direction) in hits {
            let entry = &mut st.pool.entries[ei];
            if !entry.charged {
                // First consumer of a pooled stray: the report goes on the
                // wire after all.
                st.net.meter().record(MessageKind::Upstream);
                entry.charged = true;
            }
            match entry.ledger_entry {
                Some(e) => st.ledger.add_sharer(e, qid),
                None => entry.ledger_entry = Some(st.ledger.open_shared(qid)),
            }
            entry.served[self.q] = true;
            st.deliveries.push((qid, NodeId(entry.node)));
            replies.push(NodeMessage::ViolationReport {
                node: NodeId(l as usize),
                value,
                direction,
            });
        }
        true
    }
}

fn with_sender(msg: &NodeMessage, node: NodeId) -> NodeMessage {
    match *msg {
        NodeMessage::ValueReport { value, .. } => NodeMessage::ValueReport { node, value },
        NodeMessage::ViolationReport {
            value, direction, ..
        } => NodeMessage::ViolationReport {
            node,
            value,
            direction,
        },
        NodeMessage::ExistenceResponse { value, .. } => {
            NodeMessage::ExistenceResponse { node, value }
        }
    }
}

impl Network for QueryView<'_, '_> {
    fn n(&self) -> usize {
        self.st.mirrors[self.q].subset.len()
    }

    fn advance_time(&mut self, _values: &[Value]) {
        panic!("a query view does not drive time; the query-set driver owns advance_time");
    }

    fn apply_membership(&mut self, _events: &[MembershipEvent]) {
        panic!(
            "membership churn under multi-query monitoring is not supported (see docs/QUERIES.md)"
        );
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        let st = &mut *self.st;
        let qid = QueryId(self.q as u32);
        st.net.meter().record(MessageKind::Broadcast);
        st.ledger.charge_exclusive(qid, 1);
        let mirror = &mut st.mirrors[self.q];
        mirror.params = Some(params);
        for l in 0..mirror.bands.len() {
            mirror.bands[l] = filter_for(mirror.groups[l], &params);
        }
        st.push_all_free(self.q);
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        let mirror = &mut self.st.mirrors[self.q];
        let l = node.index();
        mirror.groups[l] = group;
        if let Some(p) = mirror.params {
            mirror.bands[l] = filter_for(group, &p);
        }
        self.st.push_one_charged(self.q, l);
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        let st = &mut *self.st;
        let qid = QueryId(self.q as u32);
        st.net.meter().record(MessageKind::Broadcast);
        st.ledger.charge_exclusive(qid, 1);
        let mirror = &mut st.mirrors[self.q];
        for l in 0..mirror.groups.len() {
            mirror.groups[l] = group;
            if let Some(p) = mirror.params {
                mirror.bands[l] = filter_for(group, &p);
            }
        }
        st.push_all_free(self.q);
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        let l = node.index();
        self.st.mirrors[self.q].bands[l] = filter;
        self.st.push_one_charged(self.q, l);
    }

    fn load_query_filters(&mut self, filters: &[(NodeId, Filter)]) {
        // Free band updates (never emitted by the monitors themselves, but
        // kept faithful: the effective filters are re-pushed uncharged).
        for &(node, filter) in filters {
            let l = node.index();
            self.st.mirrors[self.q].bands[l] = filter;
            let g = self.st.mirrors[self.q].subset[l];
            let eff = self.st.effective(g);
            let pair = [(NodeId(g), eff)];
            self.st.net.load_query_filters(&pair);
        }
    }

    fn probe(&mut self, node: NodeId) -> Value {
        let g = self.to_global(node);
        let v = self.st.net.probe(g);
        self.st.ledger.charge_exclusive(self.qid(), 2);
        v
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        replies.clear();
        if round == 0 {
            self.st.mirrors[self.q].run_had_physical = false;
            if predicate == ExistencePredicate::PendingViolation && self.serve_pool(replies) {
                return;
            }
        }
        let phys_pred = self.remap_predicate(predicate);
        let qid = self.qid();
        let st = &mut *self.st;
        st.mirrors[self.q].run_had_physical = true;
        let mut raw = std::mem::take(&mut st.scratch);
        st.net
            .existence_round_into(round, population, phys_pred, &mut raw);
        let queries = st.mirrors.len();
        for msg in &raw {
            let g = msg.sender().index();
            let v = msg.value();
            if predicate == ExistencePredicate::PendingViolation {
                let mirror = &st.mirrors[self.q];
                let deliver = mirror.local_of[g]
                    .and_then(|l| mirror.bands[l as usize].check(v).map(|d| (l, d)));
                match deliver {
                    Some((l, direction)) => {
                        let ei = st.pool.upsert(g, v, queries);
                        let entry = &mut st.pool.entries[ei];
                        if entry.charged {
                            // A repeat report by the same node this step (a
                            // later detection run of the same or another
                            // query): a fresh physical message, charged to
                            // its receiver outright.
                            st.ledger.charge_exclusive(qid, 1);
                        } else {
                            entry.charged = true;
                            match entry.ledger_entry {
                                Some(e) => st.ledger.add_sharer(e, qid),
                                None => entry.ledger_entry = Some(st.ledger.open_shared(qid)),
                            }
                        }
                        entry.served[self.q] = true;
                        st.deliveries.push((qid, NodeId(g)));
                        replies.push(NodeMessage::ViolationReport {
                            node: NodeId(l as usize),
                            value: v,
                            direction,
                        });
                    }
                    None => {
                        // A stray: the node violates its effective filter but
                        // not this query's band (or sits outside the subset).
                        // Pool it for a later consumer and retract the charge
                        // until one exists.
                        st.net.meter().retract(MessageKind::Upstream, 1);
                        let _ = st.pool.upsert(g, v, queries);
                    }
                }
            } else {
                // Value predicates: in-subset responders are delivered in
                // local coordinates, out-of-subset responders are artifacts
                // of the shared engine and are retracted.
                match st.mirrors[self.q].local_of[g] {
                    Some(l) => {
                        st.ledger.charge_exclusive(qid, 1);
                        replies.push(with_sender(msg, NodeId(l as usize)));
                    }
                    None => st.net.meter().retract(MessageKind::Upstream, 1),
                }
            }
        }
        st.scratch = raw;
    }

    fn end_existence_run(&mut self) {
        let st = &mut *self.st;
        if st.mirrors[self.q].run_had_physical {
            st.net.end_existence_run();
            st.ledger.charge_exclusive(QueryId(self.q as u32), 1);
        }
        // A fully pool-served run was physically silent: no node took part,
        // so no end-of-run announcement is needed (or charged).
    }

    fn meter(&mut self) -> &mut CostMeter {
        self.st.net.meter()
    }

    fn stats(&self) -> CommStats {
        self.st.net.stats()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        let g = self.to_global(node);
        self.st.net.peek_value(g)
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.st.mirrors[self.q].bands[node.index()]
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.st.mirrors[self.q].groups[node.index()]
    }
}

/// The genuinely multi-query driver. See the module docs for the semantics.
fn run_multi(
    set: &mut QuerySet,
    net: &mut dyn Network,
    mut next_row: impl FnMut(&[Filter]) -> Option<Vec<Value>>,
    mut events_at: impl FnMut(u64) -> Vec<MembershipEvent>,
    mut observer: impl FnMut(QueryStepObservation<'_>),
) -> QuerySetReport {
    let n = net.n();
    let queries = set.queries.len();
    let mut cover: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut mirrors = Vec::with_capacity(queries);
    for (qi, rq) in set.queries.iter().enumerate() {
        let subset: Vec<usize> = rq.subset.iter().map(|id| id.index()).collect();
        let mut local_of = vec![None; n];
        for (l, &g) in subset.iter().enumerate() {
            local_of[g] = Some(l as u32);
            cover[g].push(qi as u32);
        }
        let m = subset.len();
        mirrors.push(QueryMirror {
            subset,
            local_of,
            bands: vec![Filter::FULL; m],
            groups: vec![NodeGroup::Lower; m],
            params: None,
            run_had_physical: false,
        });
    }
    let mut st = MultiState {
        net,
        mirrors,
        cover,
        pool: StepPool::new(n),
        ledger: QueryCostLedger::new(queries),
        deliveries: Vec::new(),
        scratch: Vec::new(),
        push_buf: Vec::new(),
    };
    let start_messages = st.net.meter().total_messages();
    let mut steps = 0u64;
    let mut delta: Value = 0;
    let mut invalid = vec![0u64; queries];
    let mut inexact = vec![0u64; queries];
    let mut filters: Vec<Filter> = Vec::new();
    let mut outputs: Vec<Vec<NodeId>> = vec![Vec::new(); queries];
    let mut valid = vec![true; queries];
    loop {
        st.net.peek_filters_into(&mut filters);
        let Some(row) = next_row(&filters) else {
            break;
        };
        assert_eq!(
            row.len(),
            n,
            "observation row has {} entries for {n} nodes",
            row.len()
        );
        assert!(
            events_at(steps).is_empty(),
            "membership churn under multi-query monitoring is not supported (see docs/QUERIES.md)"
        );
        st.net.advance_time(&row);
        st.pool.reset();
        for (qi, rq) in set.queries.iter_mut().enumerate() {
            let mut view = QueryView { st: &mut st, q: qi };
            rq.monitor.process_step(&mut view);
        }
        st.ledger.settle_step();
        for (qi, rq) in set.queries.iter().enumerate() {
            let local_row: Vec<Value> = rq.subset.iter().map(|id| row[id.index()]).collect();
            let out_local = rq.monitor.output();
            let view = TopKView::new(&local_row, rq.spec.k, rq.spec.eps);
            valid[qi] = view.validate_output(&out_local).is_valid();
            if !valid[qi] {
                invalid[qi] += 1;
            }
            if !view.validate_exact(&out_local) {
                inexact[qi] += 1;
            }
            outputs[qi].clear();
            outputs[qi].extend(out_local.iter().map(|l| rq.subset[l.index()]));
        }
        let messages_total = st.net.meter().total_messages();
        observer(QueryStepObservation {
            step: steps,
            row: &row,
            outputs: &outputs,
            valid: &valid,
            messages_total,
            units: st.ledger.per_query_units(),
        });
        steps += 1;
        delta = delta.max(row.iter().copied().max().unwrap_or(0));
    }
    let wire = st.net.meter().total_messages() - start_messages;
    assert_eq!(
        st.ledger.total_units(),
        wire * SPLIT_SCALE,
        "split-charge ledger must sum to the attributed wire total"
    );
    let per_query = (0..queries)
        .map(|qi| QueryRunReport {
            query: QueryId(qi as u32),
            steps,
            invalid_steps: invalid[qi],
            inexact_steps: inexact[qi],
            units: st.ledger.units(QueryId(qi as u32)),
        })
        .collect();
    QuerySetReport {
        steps,
        stats: st.net.stats(),
        delta,
        per_query,
        deliveries: std::mem::take(&mut st.deliveries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::run_on_rows;
    use crate::topk_protocol::TopKMonitor;
    use topk_net::DeterministicEngine;

    fn ramp_rows(n: usize, steps: usize) -> Vec<Vec<Value>> {
        // A workload with regular lead changes so violations actually occur.
        (0..steps)
            .map(|t| {
                (0..n)
                    .map(|i| 100 + ((i * 13 + t * 29) % 97) as Value)
                    .collect()
            })
            .collect()
    }

    fn oscillator_rows(n: usize, steps: usize) -> Vec<Vec<Value>> {
        // One node oscillates across the top-k boundary inside a stable
        // field: every step has a violation, and its resolution is cheap —
        // the regime where report sharing amortizes best.
        (0..steps)
            .map(|t| {
                (0..n)
                    .map(|i| {
                        if i == n / 2 {
                            if t % 2 == 0 {
                                2000
                            } else {
                                100
                            }
                        } else {
                            1000 + (i as Value) * 10
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn solo_query_set_is_bit_identical_to_the_legacy_run() {
        let rows = ramp_rows(12, 20);
        let mut legacy_net = DeterministicEngine::new(12, 7);
        let mut legacy = TopKMonitor::new(3, Epsilon::TENTH);
        let legacy_report = run_on_rows(&mut legacy, &mut legacy_net, rows.clone(), Epsilon::TENTH);

        let mut net = DeterministicEngine::new(12, 7);
        let mut set = QuerySet::new(12);
        let q = set.register(
            QuerySpec::new(3, Epsilon::TENTH, "topk"),
            Box::new(TopKMonitor::new(3, Epsilon::TENTH)),
        );
        assert_eq!(q, QueryId(0));
        assert!(set.is_solo());
        let report = run_query_set(&mut set, &mut net, rows);

        assert_eq!(report.steps, legacy_report.steps);
        assert_eq!(report.stats, legacy_report.stats);
        assert_eq!(report.delta, legacy_report.delta);
        assert_eq!(
            report.per_query[0].invalid_steps,
            legacy_report.invalid_steps
        );
        assert_eq!(
            report.per_query[0].inexact_steps,
            legacy_report.inexact_steps
        );
        assert_eq!(
            report.per_query[0].units,
            legacy_report.stats.total_messages() * SPLIT_SCALE
        );
        assert_eq!(legacy_net.peek_filters(), net.peek_filters());
        assert_eq!(legacy_net.peek_values(), net.peek_values());
    }

    #[test]
    fn twin_queries_share_violation_reports() {
        let rows = oscillator_rows(16, 40);
        let mut net = DeterministicEngine::new(16, 42);
        let mut set = QuerySet::new(16);
        for _ in 0..2 {
            set.register(
                QuerySpec::new(4, Epsilon::TENTH, "topk"),
                Box::new(TopKMonitor::new(4, Epsilon::TENTH)),
            );
        }
        assert!(!set.is_solo());
        let report = run_query_set(&mut set, &mut net, rows.clone());
        assert_eq!(report.steps, 40);
        assert_eq!(
            report.total_units(),
            report.messages() * SPLIT_SCALE,
            "attribution must cover the wire total exactly"
        );
        // Both queries monitor identical bands, so at least one physical
        // report must have been shared through the pool: some node delivered
        // to both queries.
        let q0: std::collections::HashSet<NodeId> = report
            .deliveries
            .iter()
            .filter(|(q, _)| *q == QueryId(0))
            .map(|&(_, n)| n)
            .collect();
        let shared = report
            .deliveries
            .iter()
            .any(|(q, n)| *q == QueryId(1) && q0.contains(n));
        assert!(shared, "twin queries never shared a report");
        // Both queries must stay valid: the joint run may not degrade either.
        assert_eq!(report.per_query[0].invalid_steps, 0);
        assert_eq!(report.per_query[1].invalid_steps, 0);
        // And the joint run must beat two independent runs.
        let mut solo_net = DeterministicEngine::new(16, 11);
        let mut solo = TopKMonitor::new(4, Epsilon::TENTH);
        let solo_report = run_on_rows(&mut solo, &mut solo_net, rows, Epsilon::TENTH);
        assert!(
            report.messages() < 2 * solo_report.messages(),
            "joint {} must amortize below 2 × {}",
            report.messages(),
            solo_report.messages()
        );
    }

    #[test]
    fn disjoint_queries_never_cross_deliver() {
        let rows = ramp_rows(16, 25);
        let mut net = DeterministicEngine::new(16, 3);
        let mut set = QuerySet::new(16);
        set.register(
            QuerySpec::new(2, Epsilon::TENTH, "topk").with_subset(NodeSubset::range(0, 8)),
            Box::new(TopKMonitor::new(2, Epsilon::TENTH)),
        );
        set.register(
            QuerySpec::new(2, Epsilon::TENTH, "topk").with_subset(NodeSubset::range(8, 8)),
            Box::new(TopKMonitor::new(2, Epsilon::TENTH)),
        );
        let report = run_query_set(&mut set, &mut net, rows);
        assert!(!report.deliveries.is_empty());
        for &(q, node) in &report.deliveries {
            let subset = set.subset(q);
            assert!(
                subset.contains(&node),
                "{q} received a report from {node} outside its subset"
            );
        }
        assert_eq!(report.total_units(), report.messages() * SPLIT_SCALE);
        // Each query's output stays inside its subset.
        assert_eq!(report.per_query[0].invalid_steps, 0);
        assert_eq!(report.per_query[1].invalid_steps, 0);
    }

    #[test]
    fn overlapping_queries_with_different_k_stay_valid() {
        let rows = ramp_rows(12, 20);
        let mut net = DeterministicEngine::new(12, 5);
        let mut set = QuerySet::new(12);
        set.register(
            QuerySpec::new(2, Epsilon::TENTH, "topk"),
            Box::new(TopKMonitor::new(2, Epsilon::TENTH)),
        );
        set.register(
            QuerySpec::new(5, Epsilon::HALF, "topk"),
            Box::new(TopKMonitor::new(5, Epsilon::HALF)),
        );
        let report = run_query_set(&mut set, &mut net, rows);
        assert_eq!(report.per_query[0].invalid_steps, 0);
        assert_eq!(report.per_query[1].invalid_steps, 0);
        assert_eq!(report.total_units(), report.messages() * SPLIT_SCALE);
    }

    #[test]
    #[should_panic(expected = "exceeds its subset")]
    fn register_rejects_k_larger_than_subset() {
        let mut set = QuerySet::new(8);
        set.register(
            QuerySpec::new(5, Epsilon::HALF, "topk").with_subset(NodeSubset::range(0, 4)),
            Box::new(TopKMonitor::new(5, Epsilon::HALF)),
        );
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn multi_query_rejects_membership_events() {
        let mut net = DeterministicEngine::new(8, 1);
        let mut set = QuerySet::new(8);
        for _ in 0..2 {
            set.register(
                QuerySpec::new(2, Epsilon::HALF, "topk"),
                Box::new(TopKMonitor::new(2, Epsilon::HALF)),
            );
        }
        let mut rows = ramp_rows(8, 3).into_iter();
        run_query_set_observed(
            &mut set,
            &mut net,
            move |_| rows.next(),
            |_| vec![MembershipEvent::Leave(NodeId(0))],
            |_| {},
        );
    }

    #[test]
    fn observer_sees_per_query_outputs_and_units() {
        let rows = ramp_rows(8, 5);
        let mut net = DeterministicEngine::new(8, 2);
        let mut set = QuerySet::new(8);
        for k in [1usize, 3] {
            set.register(
                QuerySpec::new(k, Epsilon::HALF, "topk"),
                Box::new(TopKMonitor::new(k, Epsilon::HALF)),
            );
        }
        let mut steps_seen = 0u64;
        let mut rows_iter = rows.into_iter();
        run_query_set_observed(
            &mut set,
            &mut net,
            move |_| rows_iter.next(),
            |_| Vec::new(),
            |obs| {
                assert_eq!(obs.outputs.len(), 2);
                assert_eq!(obs.outputs[0].len(), 1);
                assert_eq!(obs.outputs[1].len(), 3);
                assert_eq!(obs.valid.len(), 2);
                assert_eq!(obs.units.len(), 2);
                assert_eq!(obs.step, steps_seen);
                steps_seen += 1;
            },
        );
    }
}
