//! # topk-core
//!
//! Competitive filter-based online algorithms for (approximate) Top-k-Position
//! Monitoring of distributed streams — the primary contribution of the paper by
//! Mäcker, Malatyali and Meyer auf der Heide (2016).
//!
//! All algorithms are written against the [`topk_net::Network`] transport trait
//! and therefore run unchanged on the deterministic engine and on the
//! channel-based threaded engine.
//!
//! | module | paper result | what it implements |
//! |--------|--------------|--------------------|
//! | [`existence`] | Lemma 3.1, Corollary 3.2 | the O(1)-expected-messages distributed OR (existence protocol) and violation detection built on it |
//! | [`maximum`] | Lemma 2.6 | computing the node with the maximum value / the nodes with the `m` largest values, O(log n) expected messages per rank |
//! | [`exact_topk`] | Corollary 3.3 | the exact top-k monitor with the generic midpoint halving framework, O(k log n + log Δ)-competitive |
//! | [`topk_protocol`] | Theorem 4.5 | `TopKProtocol` with phases P1–P4 (algorithms A1, A2, A3), O(k log n + log log Δ + log 1/ε)-competitive vs an exact adversary |
//! | [`dense`] | Theorem 5.8 (Lemmas 5.2–5.7) | `DenseProtocol` and `SubProtocol` for inputs with a dense ε-neighbourhood |
//! | [`combined`] | Theorem 5.8 | the dispatcher that runs `TopKProtocol` when the output is unique and `DenseProtocol` otherwise |
//! | [`half_eps`] | Corollary 5.9 | the cheaper algorithm that is competitive against an adversary with error ε' ≤ ε/2 |
//! | [`monitor`] | — | the common `Monitor` trait and the step driver used by examples, tests and benchmarks |
//!
//! ## Quick start
//!
//! ```
//! use topk_core::monitor::{run_on_rows, Monitor};
//! use topk_core::topk_protocol::TopKMonitor;
//! use topk_model::Epsilon;
//! use topk_net::DeterministicEngine;
//!
//! // Three nodes, monitor the top-1 with ε = 1/2.
//! let rows = vec![
//!     vec![100, 40, 10],
//!     vec![102, 41, 10],
//!     vec![101, 45, 11],
//!     vec![30, 46, 12], // leadership change
//!     vec![31, 47, 12],
//! ];
//! let mut net = DeterministicEngine::new(3, 7);
//! let mut monitor = TopKMonitor::new(1, Epsilon::HALF);
//! let report = run_on_rows(&mut monitor, &mut net, rows.iter().cloned(), Epsilon::HALF);
//! assert_eq!(report.steps, 5);
//! assert_eq!(report.invalid_steps, 0, "output must be a valid ε-top-1 at every step");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod combined;
pub mod dense;
pub mod exact_topk;
pub mod existence;
pub mod half_eps;
pub mod maximum;
pub mod monitor;
pub mod queryset;
pub mod topk_protocol;

pub use combined::CombinedMonitor;
pub use dense::DenseMonitor;
pub use exact_topk::ExactTopKMonitor;
pub use half_eps::HalfEpsMonitor;
pub use monitor::{
    run_adaptive, run_adaptive_observed, run_on_rows, run_with_membership,
    run_with_membership_observed, Monitor, RunReport, StepObservation,
};
pub use queryset::{
    run_query_set, run_query_set_adaptive, run_query_set_observed, QueryRunReport, QuerySet,
    QuerySetReport, QueryStepObservation,
};
pub use topk_protocol::TopKMonitor;
