//! `DenseProtocol` and `SubProtocol` (Sect. 5.2 of the paper, Theorem 5.8).
//!
//! These protocols handle the regime the lower bound of Theorem 5.1 is built on:
//! many nodes (`σ` of them) oscillate inside the ε-neighbourhood of the k-th
//! largest value, so an ε-approximate offline algorithm barely communicates while
//! the exact top-k set changes constantly.
//!
//! ## Structure
//!
//! The server partitions the nodes into
//!
//! * `V₁` — nodes that observed a value above `z/(1−ε)` and therefore belong to
//!   every valid output,
//! * `V₃` — nodes that observed a value below `(1−ε)z` and therefore belong to no
//!   valid output,
//! * `V₂` — the undecided nodes in the ε-neighbourhood of the pivot `z` (the
//!   value of the k-th largest node when the protocol starts),
//!
//! and maintains a guess interval `L ⊆ [(1−ε)z, z]` that must contain the lower
//! endpoint `ℓ*` of the upper filter of any offline algorithm that has not
//! communicated yet. Each round broadcasts `ℓ_r` (the midpoint of `L`) and
//! `u_r = ℓ_r/(1−ε)`; `V₂` nodes whose values stray above `u_r` are remembered in
//! the candidate set `S₁`, nodes straying below `ℓ_r` in `S₂`. Violations either
//! move a node into `V₁`/`V₃` (it left the neighbourhood), halve `L` (the server
//! learnt on which side `ℓ*` must lie), or — when one node is in both `S₁` and
//! `S₂` — trigger the nested `SubProtocol`, which performs the same halving game
//! on the lower half of `L` until it can either place the node or halve `L`.
//! When `L` becomes empty no valid `ℓ*` remains, so the ε-approximate offline
//! algorithm must have communicated; the protocol charges it one message and
//! restarts (Lemma 5.7).
//!
//! The output at any time is `V₁ ∪ (S₁ \ S₂)` filled up to `k` nodes from
//! `V₂ \ S₂` (Lemma 5.2 shows this is always possible and valid).
//!
//! ## Deviations from the pseudocode
//!
//! * Group/flag changes that the paper folds into "update all filters using the
//!   rules in 2." are realised as one broadcast of the round parameters plus one
//!   unicast per node whose `S`-membership actually changed. This keeps the
//!   message count within the same `O(σ log(ε v_k))` order as the analysis.
//! * The paper's hand-over to `TopKProtocol` (step 3.d) is handled by
//!   [`crate::combined::CombinedMonitor`]; the standalone monitor simply
//!   restarts itself, which is correct but may be less efficient on inputs whose
//!   neighbourhood empties out.

use topk_model::prelude::*;
use topk_net::Network;

use crate::existence::detect_violations;
use crate::maximum::top_m;
use crate::monitor::Monitor;

/// Safety cap on protocol iterations within a single time step.
const MAX_ITERATIONS_PER_STEP: u32 = 200_000;

/// Coarse partition of a node (the `S`-membership lives in separate flag vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Part {
    V1,
    V2,
    V3,
}

/// Which dense-level candidate set to clear when a round ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Clear {
    S1,
    S2,
}

/// Which half of an interval to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Half {
    Lower,
    Upper,
}

/// Closed integer interval with explicit emptiness; used for `L` and `L'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: Value,
    hi: Value,
}

impl Interval {
    fn new(lo: Value, hi: Value) -> Interval {
        Interval { lo, hi }
    }

    fn empty() -> Interval {
        Interval { lo: 1, hi: 0 }
    }

    fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    fn midpoint(&self) -> Value {
        debug_assert!(!self.is_empty());
        self.lo + (self.hi - self.lo) / 2
    }

    /// Keeps one half; a singleton interval becomes empty, as prescribed by the
    /// protocol ("in case `L_r` contains one value and gets halved, `L_{r+1}` is
    /// defined to be empty").
    fn halved(&self, half: Half) -> Interval {
        if self.is_empty() || self.lo == self.hi {
            return Interval::empty();
        }
        let mid = self.midpoint();
        match half {
            Half::Lower => Interval::new(self.lo, mid),
            Half::Upper => Interval::new(mid + 1, self.hi),
        }
    }
}

/// State of a running `SubProtocol` invocation.
#[derive(Debug, Clone)]
struct SubState {
    /// The sub-interval `L'` (a subset of the lower half of `L`).
    interval: Interval,
    /// `S'₁` and `S'₂` per node.
    s1p: Vec<bool>,
    s2p: Vec<bool>,
    /// The node whose membership in both `S₁` and `S₂` started the sub-protocol.
    initiator: NodeId,
    /// The last node in `S'₁ ∩ S'₂` that violated from above (step 3.b.1 of the
    /// sub-protocol moves this node to `V₃` when `L'` collapses upward).
    last_dual_from_above: Option<NodeId>,
}

/// `DenseProtocol` monitor (Theorem 5.8, without the `TopKProtocol` dispatch —
/// see [`crate::combined::CombinedMonitor`] for the full Theorem 5.8 algorithm).
#[derive(Debug, Clone)]
pub struct DenseMonitor {
    k: usize,
    eps: Epsilon,
    /// Pivot value `z` of the current instance.
    z: Value,
    /// Dense-level guess interval `L_r`.
    interval: Interval,
    part: Vec<Part>,
    dense_s1: Vec<bool>,
    dense_s2: Vec<bool>,
    /// The group most recently *sent* to each node (unicast or broadcast). The
    /// server must restore groups by diffing against this — not against the
    /// current flag vectors — because the sub-protocol resets its flags in bulk
    /// without telling the nodes (see [`DenseMonitor::end_sub`]).
    sent_groups: Vec<NodeGroup>,
    /// Nodes the server has seen (via reports this round) above `u_r` / below `ℓ_r`.
    observed_above: Vec<bool>,
    observed_below: Vec<bool>,
    sub: Option<SubState>,
    output: Vec<NodeId>,
    initialised: bool,
    instances: u64,
    sub_calls: u64,
}

impl DenseMonitor {
    /// Creates the monitor for the top `k` positions with error `eps`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, eps: Epsilon) -> DenseMonitor {
        assert!(k >= 1, "k must be at least 1");
        DenseMonitor {
            k,
            eps,
            z: 0,
            interval: Interval::empty(),
            part: Vec::new(),
            dense_s1: Vec::new(),
            dense_s2: Vec::new(),
            sent_groups: Vec::new(),
            observed_above: Vec::new(),
            observed_below: Vec::new(),
            sub: None,
            output: Vec::new(),
            initialised: false,
            instances: 0,
            sub_calls: 0,
        }
    }

    /// Number of protocol instances started so far (the ε-approximate offline
    /// adversary must communicate at least once per completed instance,
    /// Lemma 5.7).
    pub fn instances(&self) -> u64 {
        self.instances
    }

    /// Number of `SubProtocol` invocations so far.
    pub fn sub_calls(&self) -> u64 {
        self.sub_calls
    }

    /// The pivot value `z` of the current instance.
    pub fn pivot(&self) -> Value {
        self.z
    }

    // ------------------------------------------------------------------
    // Round parameters and group bookkeeping
    // ------------------------------------------------------------------

    fn l_r(&self) -> Value {
        self.interval.midpoint()
    }

    fn u_r(&self) -> Value {
        self.eps.scale_up(self.l_r())
    }

    fn z_lo(&self) -> Value {
        self.eps.scale_down(self.z)
    }

    fn z_hi(&self) -> Value {
        self.eps.scale_up(self.z)
    }

    fn current_params(&self) -> FilterParams {
        match &self.sub {
            None => FilterParams::Dense {
                l_r: self.l_r(),
                u_r: self.u_r(),
                z_lo: self.z_lo(),
                z_hi: self.z_hi(),
            },
            Some(sub) => {
                let l_rp = sub.interval.midpoint();
                FilterParams::SubDense {
                    l_r: self.l_r(),
                    l_rp,
                    u_rp: self.eps.scale_up(l_rp),
                    z_lo: self.z_lo(),
                    z_hi: self.z_hi(),
                }
            }
        }
    }

    /// The group a node should currently have (sub-protocol flags take
    /// precedence while a sub-protocol runs).
    fn visible_group(&self, i: usize) -> NodeGroup {
        match self.part[i] {
            Part::V1 => NodeGroup::V1,
            Part::V3 => NodeGroup::V3,
            Part::V2 => match &self.sub {
                None => NodeGroup::V2 {
                    s1: self.dense_s1[i],
                    s2: self.dense_s2[i],
                },
                Some(sub) => NodeGroup::V2 {
                    s1: sub.s1p[i],
                    s2: sub.s2p[i],
                },
            },
        }
    }

    /// Unicasts the node's current group (after a membership change).
    fn push_group(&mut self, net: &mut dyn Network, i: usize) {
        let group = self.visible_group(i);
        self.sent_groups[i] = group;
        net.assign_group(NodeId(i), group);
    }

    /// Broadcasts the current round parameters.
    fn push_params(&mut self, net: &mut dyn Network) {
        net.broadcast_params(self.current_params());
    }

    // ------------------------------------------------------------------
    // Instance management
    // ------------------------------------------------------------------

    /// (Re)starts the protocol: probe the k-th largest value, set the pivot,
    /// partition the nodes and broadcast the first round's filters.
    fn start_instance(&mut self, net: &mut dyn Network) {
        let n = net.n();
        assert!(
            self.k < n,
            "k = {} must be smaller than the number of nodes n = {}",
            self.k,
            n
        );
        self.instances += 1;
        self.sub = None;
        net.meter().push_label(ProtocolLabel::Init);
        let top = top_m(net, self.k);
        self.z = top[self.k - 1].1.max(1);
        net.meter().pop_label();

        net.meter().push_label(ProtocolLabel::Dense);
        self.interval = Interval::new(self.z_lo(), self.z);
        self.part = vec![Part::V3; n];
        self.dense_s1 = vec![false; n];
        self.dense_s2 = vec![false; n];
        self.observed_above = vec![false; n];
        self.observed_below = vec![false; n];

        // Every node defaults to V3 via one broadcast; the nodes at or above the
        // neighbourhood (at most k + σ of them) are then enumerated by rank and
        // promoted individually — this is the "probe all nodes in the
        // ε-neighbourhood" step of Lemma 5.3, O((k + σ) log n) expected messages.
        net.broadcast_group(NodeGroup::V3);
        self.sent_groups = vec![NodeGroup::V3; n];
        let mut upper: Option<(Value, NodeId)> = None;
        while let Some((node, value)) = crate::maximum::find_max_below(net, upper) {
            if self.eps.clearly_smaller(value, self.z) {
                break;
            }
            let i = node.index();
            self.part[i] = if self.eps.clearly_larger(value, self.z) {
                Part::V1
            } else {
                Part::V2
            };
            self.push_group(net, i);
            upper = Some((value, node));
        }
        self.push_params(net);
        self.recompute_output();
        net.meter().pop_label();
    }

    /// Ends the current dense round: halve `L`, clear one candidate set, reset the
    /// per-round observation counters and re-broadcast. If `L` becomes empty the
    /// instance terminates and a new one starts.
    fn new_dense_round(&mut self, net: &mut dyn Network, half: Half, clear: Clear) {
        self.clear_flags(clear);
        self.sync_groups(net);
        self.advance_dense_round(net, half);
    }

    /// Halves `L`, resets the per-round observation counters and re-broadcasts
    /// (or restarts the instance when `L` becomes empty). Group changes must
    /// already have been pushed.
    fn advance_dense_round(&mut self, net: &mut dyn Network, half: Half) {
        self.interval = self.interval.halved(half);
        self.observed_above.iter_mut().for_each(|b| *b = false);
        self.observed_below.iter_mut().for_each(|b| *b = false);
        if self.interval.is_empty() {
            // Lemma 5.7: no feasible ℓ* remains, OPT must have communicated.
            self.start_instance(net);
        } else {
            self.push_params(net);
        }
    }

    /// Clears the dense-level `S₁` or `S₂` flags without notifying nodes.
    fn clear_flags(&mut self, clear: Clear) {
        let flags = match clear {
            Clear::S1 => &mut self.dense_s1,
            Clear::S2 => &mut self.dense_s2,
        };
        flags.iter_mut().for_each(|f| *f = false);
    }

    /// Unicasts the currently visible group to every `V₂` node whose node-side
    /// group (the one last sent) differs from it. This is the single
    /// reconciliation point after any bulk flag change — dense-level clears,
    /// sub-protocol starts, bulk `S'`-resets and sub-protocol termination all
    /// route through it, so server- and node-side state cannot diverge.
    fn sync_groups(&mut self, net: &mut dyn Network) {
        for i in 0..self.part.len() {
            if self.part[i] == Part::V2 && self.sent_groups[i] != self.visible_group(i) {
                self.push_group(net, i);
            }
        }
    }

    /// Moves a `V₂` node into `V₁` or `V₃` and unicasts its new group.
    fn move_node(&mut self, net: &mut dyn Network, i: usize, to: Part) {
        self.part[i] = to;
        self.dense_s1[i] = false;
        self.dense_s2[i] = false;
        if let Some(sub) = &mut self.sub {
            sub.s1p[i] = false;
            sub.s2p[i] = false;
        }
        self.push_group(net, i);
    }

    // ------------------------------------------------------------------
    // SubProtocol
    // ------------------------------------------------------------------

    /// Starts the sub-protocol for `initiator ∈ S₁ ∩ S₂`.
    fn start_sub(&mut self, net: &mut dyn Network, initiator: usize) {
        self.sub_calls += 1;
        net.meter().push_label(ProtocolLabel::Sub);
        let n = self.part.len();
        // L' starts as the part of L below ℓ_r (step 1 of the sub-protocol).
        let l_r = self.l_r();
        let interval = Interval::new(self.interval.lo, l_r.min(self.interval.hi));
        let mut s1p = self.dense_s1.clone();
        let s2p_init = {
            let mut v = vec![false; n];
            v[initiator] = true;
            v
        };
        s1p[initiator] = true;
        self.sub = Some(SubState {
            interval,
            s1p,
            s2p: s2p_init,
            initiator: NodeId(initiator),
            last_dual_from_above: None,
        });
        // The sub-protocol's filters differ from the dense ones for the nodes
        // whose S'-flags differ from their dense S-flags (only dense-S₂ members
        // and the initiator, because S'₁ starts as S₁ and S'₂ as {initiator}).
        self.sync_groups(net);
        self.push_params(net);
        net.meter().pop_label();
    }

    /// Terminates the sub-protocol, restores the dense-level groups and applies
    /// the dense-level action the terminating case prescribes.
    fn end_sub(&mut self, net: &mut dyn Network, dense_action: Option<(Half, Clear)>) {
        if self.sub.take().is_none() {
            return;
        }
        // Apply the dense-level flag clear *before* restoring groups, so the
        // single diff below targets the groups the next round will actually
        // use (clearing afterwards would unicast some nodes twice).
        if let Some((_, clear)) = dense_action {
            self.clear_flags(clear);
        }
        // Restore dense-level S-flags for every V2 node whose *node-side* group
        // differs from the dense-level one. The diff must run against the groups
        // actually sent (`sent_groups`), not against the sub-protocol's final
        // flag vectors: cases 3.b.1 and 3.d.2 reset `S'₁`/`S'₂` in bulk without
        // notifying the nodes, so the final flags may coincide with the dense
        // flags while a node still holds a stale earlier assignment — leaving it
        // with a too-wide filter that silently misses violations.
        self.sync_groups(net);
        match dense_action {
            Some((half, _)) => self.advance_dense_round(net, half),
            None => self.push_params(net),
        }
    }

    /// Handles a violation while the sub-protocol is active.
    fn handle_sub_violation(
        &mut self,
        net: &mut dyn Network,
        i: usize,
        _value: Value,
        direction: Violation,
    ) {
        let k = self.k;
        let n = self.part.len();
        let initiator = self.sub.as_ref().map(|s| s.initiator).unwrap_or(NodeId(i));
        match (self.part[i], direction) {
            // Case a: a V1 node fell below ℓ_r → ℓ* < ℓ_r.
            (Part::V1, Violation::FromAbove) => {
                self.end_sub(net, Some((Half::Lower, Clear::S2)));
            }
            // Case a': a V3 node rose above u'_{r'} → ℓ* must lie higher.
            (Part::V3, Violation::FromBelow) => {
                self.sub_collapse_upward(net, initiator);
            }
            (Part::V2, dir) => {
                let (in_s1p, in_s2p) = {
                    let sub = self.sub.as_ref().expect("sub active");
                    (sub.s1p[i], sub.s2p[i])
                };
                match (in_s1p, in_s2p, dir) {
                    // Case b: plain V2 node rose above u'_{r'}.
                    (false, false, Violation::FromBelow) => {
                        if self.count(&self.observed_above) > k {
                            self.sub_collapse_upward(net, initiator);
                        } else {
                            self.set_sub_flag(net, i, true);
                        }
                    }
                    // Case b': plain V2 node fell below ℓ_r.
                    (false, false, Violation::FromAbove) => {
                        if self.count(&self.observed_below) > n - k {
                            self.end_sub(net, Some((Half::Lower, Clear::S2)));
                        } else {
                            self.set_sub_flag(net, i, false);
                        }
                    }
                    // Case c.1: S'1-only node rose above z/(1−ε) → must be in F*.
                    (true, false, Violation::FromBelow) => {
                        self.move_node(net, i, Part::V1);
                    }
                    // Case c.2: S'1-only node fell below ℓ'_{r'}.
                    (true, false, Violation::FromAbove) => {
                        self.set_sub_flag(net, i, false);
                    }
                    // Case c'.1: S'2-only node fell below (1−ε)z → never in F*.
                    (false, true, Violation::FromAbove) => {
                        self.move_node(net, i, Part::V3);
                    }
                    // Case c'.2: S'2-only node rose above u'_{r'}.
                    (false, true, Violation::FromBelow) => {
                        self.set_sub_flag(net, i, true);
                    }
                    // Case d.1: a node in S'1 ∩ S'2 rose above z/(1−ε).
                    (true, true, Violation::FromBelow) => {
                        self.move_node(net, i, Part::V1);
                        self.end_sub(net, None);
                    }
                    // Case d.2: a node in S'1 ∩ S'2 fell below ℓ'_{r'}.
                    (true, true, Violation::FromAbove) => {
                        let collapsed = {
                            let sub = self.sub.as_mut().expect("sub active");
                            sub.last_dual_from_above = Some(NodeId(i));
                            sub.interval = sub.interval.halved(Half::Lower);
                            for f in sub.s2p.iter_mut() {
                                *f = false;
                            }
                            sub.interval.is_empty()
                        };
                        if collapsed {
                            self.move_node(net, i, Part::V3);
                            self.end_sub(net, None);
                        } else {
                            // Push the cleared S'2 flags and the new sub round.
                            self.sync_groups(net);
                            self.push_params(net);
                        }
                    }
                }
            }
            // A V1 node violating from below or a V3 node from above cannot occur
            // with the filters the protocol assigns; treat it as a stale report.
            _ => {}
        }
    }

    /// Sub-protocol step shared by cases 3.b.1 and 3.a': halve `L'` upward and
    /// reset `S'₁ := S₁`; if `L'` collapses, move the recorded dual violator (or
    /// the initiator) to `V₃` and terminate.
    fn sub_collapse_upward(&mut self, net: &mut dyn Network, initiator: NodeId) {
        let (collapsed, victim) = {
            let sub = self.sub.as_mut().expect("sub active");
            sub.interval = sub.interval.halved(Half::Upper);
            sub.s1p = self.dense_s1.clone();
            sub.s1p[initiator.index()] = true;
            (
                sub.interval.is_empty(),
                sub.last_dual_from_above.unwrap_or(initiator),
            )
        };
        if collapsed {
            self.move_node(net, victim.index(), Part::V3);
            self.end_sub(net, None);
        } else {
            self.sync_groups(net);
            self.push_params(net);
        }
    }

    /// Adds node `i` to `S'₁` (`to_s1` true) or `S'₂` and pushes its new group.
    fn set_sub_flag(&mut self, net: &mut dyn Network, i: usize, to_s1: bool) {
        {
            let sub = self.sub.as_mut().expect("sub active");
            if to_s1 {
                sub.s1p[i] = true;
            } else {
                sub.s2p[i] = true;
            }
        }
        self.push_group(net, i);
    }

    // ------------------------------------------------------------------
    // Dense-level violation handling
    // ------------------------------------------------------------------

    fn handle_violation(
        &mut self,
        net: &mut dyn Network,
        i: usize,
        value: Value,
        direction: Violation,
    ) {
        if !self.interval.is_empty() {
            if value > self.u_r() {
                self.observed_above[i] = true;
            }
            if value < self.l_r() {
                self.observed_below[i] = true;
            }
        }
        if self.sub.is_some() {
            self.handle_sub_violation(net, i, value, direction);
            return;
        }
        let k = self.k;
        let n = self.part.len();
        match (self.part[i], direction) {
            // Case a: V1 node fell below ℓ_r.
            (Part::V1, Violation::FromAbove) => {
                self.new_dense_round(net, Half::Lower, Clear::S2);
            }
            // Case a': V3 node rose above u_r.
            (Part::V3, Violation::FromBelow) => {
                self.new_dense_round(net, Half::Upper, Clear::S1);
            }
            (Part::V2, dir) => {
                let (s1, s2) = (self.dense_s1[i], self.dense_s2[i]);
                match (s1, s2, dir) {
                    // Case b: plain V2 node rose above u_r.
                    (false, false, Violation::FromBelow) => {
                        if self.count(&self.observed_above) > k {
                            self.new_dense_round(net, Half::Upper, Clear::S1);
                        } else {
                            self.dense_s1[i] = true;
                            self.push_group(net, i);
                        }
                    }
                    // Case b': plain V2 node fell below ℓ_r.
                    (false, false, Violation::FromAbove) => {
                        if self.count(&self.observed_below) > n - k {
                            self.new_dense_round(net, Half::Lower, Clear::S2);
                        } else {
                            self.dense_s2[i] = true;
                            self.push_group(net, i);
                        }
                    }
                    // Case c.1: S1 node rose above z/(1−ε) → it must be in F*.
                    (true, false, Violation::FromBelow) => {
                        self.move_node(net, i, Part::V1);
                    }
                    // Case c.2: S1 node fell below ℓ_r → it is in S1 ∩ S2,
                    // call the sub-protocol.
                    (true, false, Violation::FromAbove) => {
                        self.dense_s2[i] = true;
                        self.start_sub(net, i);
                    }
                    // Case c'.1: S2 node fell below (1−ε)z → it can never be in F*.
                    (false, true, Violation::FromAbove) => {
                        self.move_node(net, i, Part::V3);
                    }
                    // Case c'.2: S2 node rose above u_r → S1 ∩ S2, sub-protocol.
                    (false, true, Violation::FromBelow) => {
                        self.dense_s1[i] = true;
                        self.start_sub(net, i);
                    }
                    // A node already in S1 ∩ S2 outside a sub-protocol should not
                    // exist; resolve it by starting the sub-protocol.
                    (true, true, _) => {
                        self.start_sub(net, i);
                    }
                }
            }
            // V1 from below / V3 from above are impossible under the assigned
            // filters; ignore stale reports defensively.
            _ => {}
        }
    }

    fn count(&self, flags: &[bool]) -> usize {
        flags.iter().filter(|&&b| b).count()
    }

    // ------------------------------------------------------------------
    // Output
    // ------------------------------------------------------------------

    /// Recomputes the output `V₁ ∪ (S₁ \ S₂)` (or the sub-protocol variant)
    /// filled from `V₂ \ S₂`. Returns `false` if no valid output of size `k`
    /// exists, in which case the caller restarts the instance.
    fn recompute_output(&mut self) -> bool {
        let n = self.part.len();
        let mut mandatory = Vec::new();
        let mut fill = Vec::new();
        for i in 0..n {
            match self.part[i] {
                Part::V1 => mandatory.push(NodeId(i)),
                Part::V3 => {}
                Part::V2 => {
                    let (s1, s2) = match &self.sub {
                        None => (self.dense_s1[i], self.dense_s2[i]),
                        Some(sub) => (sub.s1p[i], sub.s2p[i]),
                    };
                    // S1-members (including S1 ∩ S2 while the sub-protocol runs)
                    // are part of the output; S2-only members are excluded from
                    // the fill.
                    if s1 {
                        mandatory.push(NodeId(i));
                    } else if !s2 {
                        fill.push(NodeId(i));
                    }
                }
            }
        }
        if mandatory.len() > self.k || mandatory.len() + fill.len() < self.k {
            return false;
        }
        mandatory.extend(fill.into_iter().take(self.k - mandatory.len()));
        self.output = mandatory;
        true
    }
}

impl Monitor for DenseMonitor {
    fn k(&self) -> usize {
        self.k
    }

    fn eps(&self) -> Option<Epsilon> {
        Some(self.eps)
    }

    fn process_step(&mut self, net: &mut dyn Network) {
        if !self.initialised {
            self.start_instance(net);
            self.initialised = true;
        }
        net.meter().push_label(ProtocolLabel::Dense);
        for _ in 0..MAX_ITERATIONS_PER_STEP {
            let violations = detect_violations(net);
            let Some(first) = violations.first() else {
                break;
            };
            let (node, value, direction) = match *first {
                NodeMessage::ViolationReport {
                    node,
                    value,
                    direction,
                } => (node, value, direction),
                ref other => unreachable!("violation detection returned {other:?}"),
            };
            self.handle_violation(net, node.index(), value, direction);
            if !self.recompute_output() {
                self.start_instance(net);
            }
        }
        net.meter().pop_label();
    }

    fn output(&self) -> Vec<NodeId> {
        self.output.clone()
    }

    fn name(&self) -> &'static str {
        "dense-protocol"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{run_on_rows, RunReport};
    use topk_gen::{NoiseOscillationWorkload, RandomWalkWorkload, Workload};
    use topk_net::DeterministicEngine;

    fn drive(
        rows: Vec<Vec<Value>>,
        k: usize,
        eps: Epsilon,
        seed: u64,
    ) -> (RunReport, DenseMonitor) {
        let n = rows[0].len();
        let mut net = DeterministicEngine::new(n, seed);
        let mut monitor = DenseMonitor::new(k, eps);
        let report = run_on_rows(&mut monitor, &mut net, rows, eps);
        (report, monitor)
    }

    #[test]
    fn interval_halving_behaves() {
        let i = Interval::new(10, 20);
        assert_eq!(i.midpoint(), 15);
        assert_eq!(i.halved(Half::Lower), Interval::new(10, 15));
        assert_eq!(i.halved(Half::Upper), Interval::new(16, 20));
        let s = Interval::new(7, 7);
        assert!(s.halved(Half::Lower).is_empty());
        assert!(s.halved(Half::Upper).is_empty());
        assert!(Interval::empty().halved(Half::Lower).is_empty());
        // Repeated halving always terminates.
        let mut i = Interval::new(0, 1_000_000);
        let mut rounds = 0;
        while !i.is_empty() {
            i = i.halved(if rounds % 2 == 0 {
                Half::Lower
            } else {
                Half::Upper
            });
            rounds += 1;
            assert!(rounds < 64);
        }
    }

    #[test]
    fn valid_output_on_static_values() {
        let rows = vec![vec![100, 95, 90, 50, 10]; 15];
        let (report, monitor) = drive(rows, 2, Epsilon::TENTH, 1);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.instances(), 1);
    }

    #[test]
    fn valid_output_on_noise_oscillation() {
        let eps = Epsilon::TENTH;
        for seed in 0..4 {
            let mut w = NoiseOscillationWorkload::new(16, 3, 8, 100_000, eps, seed);
            let rows: Vec<Vec<Value>> = (0..60).map(|_| w.next_step()).collect();
            let (report, _) = drive(rows, 6, eps, seed);
            assert_eq!(report.invalid_steps, 0, "seed {seed}");
        }
    }

    #[test]
    fn valid_output_on_random_walks() {
        let eps = Epsilon::new(1, 4).unwrap();
        for seed in 0..3 {
            let mut w = RandomWalkWorkload::new(10, 50_000, 1_000, 0.8, seed);
            let rows: Vec<Vec<Value>> = (0..60).map(|_| w.next_step()).collect();
            let (report, _) = drive(rows, 3, eps, seed);
            assert_eq!(report.invalid_steps, 0, "seed {seed}");
        }
    }

    #[test]
    fn cheaper_than_exact_monitor_on_dense_oscillation() {
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(24, 4, 12, 1_000_000, eps, 7);
        let rows: Vec<Vec<Value>> = (0..150).map(|_| w.next_step()).collect();
        let (dense_report, _) = drive(rows.clone(), 8, eps, 7);
        let mut net = DeterministicEngine::new(24, 7);
        let mut exact = crate::ExactTopKMonitor::new(8);
        let exact_report = run_on_rows(&mut exact, &mut net, rows, eps);
        assert_eq!(dense_report.invalid_steps, 0);
        assert!(
            dense_report.messages() < exact_report.messages(),
            "dense ({}) should beat exact ({}) on oscillating inputs",
            dense_report.messages(),
            exact_report.messages()
        );
    }

    #[test]
    fn oscillation_inside_the_neighbourhood_is_eventually_silent() {
        // Two nodes swap inside a narrow band around z while a clear leader and a
        // clear loser exist; after the protocol settles, the swaps must not cost
        // messages every step.
        let eps = Epsilon::HALF;
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|t| {
                let a = if t % 2 == 0 { 100 } else { 96 };
                let b = if t % 2 == 0 { 96 } else { 100 };
                vec![1000, a, b, 5]
            })
            .collect();
        let (report, _) = drive(rows, 2, eps, 3);
        assert_eq!(report.invalid_steps, 0);
        // A per-step-communication monitor would send ≥ 200 messages; the dense
        // monitor should settle and stay well below that.
        assert!(
            report.messages() < 120,
            "dense monitor did not settle: {} messages",
            report.messages()
        );
    }

    #[test]
    fn sub_protocol_is_exercised() {
        // A node that alternately jumps above u_r and below ℓ_r ends up in S1 ∩ S2
        // and triggers the sub-protocol.
        let eps = Epsilon::new(1, 4).unwrap();
        let rows: Vec<Vec<Value>> = (0..60)
            .map(|t| {
                let wobble = match t % 4 {
                    0 => 1000,
                    1 => 790,
                    2 => 1200,
                    _ => 760,
                };
                vec![1100, 1000, wobble, 900, 100]
            })
            .collect();
        let (report, monitor) = drive(rows, 3, eps, 5);
        assert_eq!(report.invalid_steps, 0);
        assert!(
            monitor.sub_calls() > 0,
            "expected at least one sub-protocol invocation"
        );
    }

    #[test]
    fn instances_restart_when_the_neighbourhood_moves() {
        // The whole value landscape collapses halfway through; the old pivot z
        // becomes useless and the protocol must restart.
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|t| {
                if t < 20 {
                    vec![1000, 990, 980, 970, 10]
                } else {
                    vec![100, 99, 98, 97, 10]
                }
            })
            .collect();
        let (report, monitor) = drive(rows, 2, Epsilon::TENTH, 2);
        assert_eq!(report.invalid_steps, 0);
        assert!(monitor.instances() >= 2);
    }

    #[test]
    #[should_panic]
    fn rejects_k_zero() {
        let _ = DenseMonitor::new(0, Epsilon::HALF);
    }
}
