//! Computing maxima and top-m sets (Lemma 2.6 of the paper).
//!
//! The paper cites its predecessor \[6\] for an algorithm that identifies the
//! node holding the largest value with O(log n) messages on expectation. The
//! reconstruction used here drives the existence protocol as a random
//! record-breaking search:
//!
//! 1. maintain the best `(value, id)` rank seen so far (initially none),
//! 2. run an existence run for the predicate "my rank lies strictly between the
//!    current best and the given upper bound",
//! 3. if somebody responds, update the best to the largest responder and repeat;
//!    if nobody responds, the current best is the maximum.
//!
//! Every run costs O(1) expected messages (Lemma 3.1) and at least halves — in
//! expectation — the number of nodes still above the best (the responder that
//! terminates a run is close to uniform among the active nodes, and taking the
//! maximum over *all* responders of that round only helps), so O(log n) runs
//! suffice in expectation. Experiment E2 verifies the logarithmic growth
//! empirically.
//!
//! Repeating the search below the rank found last yields the nodes with the `m`
//! largest values for O(m log n) expected messages — exactly the
//! "compute the nodes holding the (k+1) largest values" step every protocol of
//! the paper starts with.

use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::types::value_order;
use topk_net::Network;

use crate::existence::existence_into;

/// Finds the node with the maximum `(value, id)` rank strictly below `upper`
/// (`None` means "no upper bound", i.e. the global maximum).
///
/// Returns `None` if no node has a rank below `upper`.
pub fn find_max_below(
    net: &mut dyn Network,
    upper: Option<(Value, NodeId)>,
) -> Option<(NodeId, Value)> {
    net.meter().push_label(ProtocolLabel::Maximum);
    let mut best: Option<(Value, NodeId)> = None;
    // One response buffer for the whole record-breaking search (O(log n)
    // existence runs in expectation).
    let mut responses: Vec<NodeMessage> = Vec::new();
    loop {
        existence_into(
            net,
            ExistencePredicate::RankWindow {
                above: best,
                below: upper,
            },
            &mut responses,
        );
        if responses.is_empty() {
            break;
        }
        let round_best = responses
            .iter()
            .map(|r| (r.value(), r.sender()))
            .max_by(|a, b| value_order(*a, *b))
            .expect("non-empty responses");
        best = Some(round_best);
    }
    net.meter().pop_label();
    best.map(|(value, node)| (node, value))
}

/// Finds the node holding the largest value (Lemma 2.6), O(log n) expected
/// messages.
pub fn find_max(net: &mut dyn Network) -> Option<(NodeId, Value)> {
    find_max_below(net, None)
}

/// Finds the nodes holding the `m` largest values, in decreasing rank order,
/// using O(m log n) expected messages. Returns fewer than `m` entries only if
/// the network has fewer than `m` nodes.
pub fn top_m(net: &mut dyn Network, m: usize) -> Vec<(NodeId, Value)> {
    let mut out: Vec<(NodeId, Value)> = Vec::with_capacity(m);
    let mut upper: Option<(Value, NodeId)> = None;
    for _ in 0..m.min(net.n()) {
        match find_max_below(net, upper) {
            Some((node, value)) => {
                upper = Some((value, node));
                out.push((node, value));
            }
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use topk_net::DeterministicEngine;

    #[test]
    fn finds_the_unique_maximum() {
        for seed in 0..20 {
            let mut net = DeterministicEngine::new(32, seed);
            let mut values: Vec<Value> = (1..=32).map(|v| v * 10).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            values.shuffle(&mut rng);
            net.advance_time(&values);
            let (node, value) = find_max(&mut net).unwrap();
            assert_eq!(value, 320);
            assert_eq!(values[node.index()], 320);
        }
    }

    #[test]
    fn ties_are_broken_by_node_id() {
        let mut net = DeterministicEngine::new(5, 3);
        net.advance_time(&[7, 9, 9, 9, 2]);
        let (node, value) = find_max(&mut net).unwrap();
        assert_eq!(value, 9);
        assert_eq!(
            node,
            NodeId(1),
            "smallest id among ties has the highest rank"
        );
    }

    #[test]
    fn top_m_returns_ranks_in_order() {
        let mut net = DeterministicEngine::new(8, 11);
        let values = vec![5, 80, 20, 80, 50, 1, 99, 3];
        net.advance_time(&values);
        let top = top_m(&mut net, 4);
        let got: Vec<(usize, Value)> = top.iter().map(|(n, v)| (n.index(), *v)).collect();
        assert_eq!(got, vec![(6, 99), (1, 80), (3, 80), (4, 50)]);
    }

    #[test]
    fn top_m_with_m_larger_than_n() {
        let mut net = DeterministicEngine::new(3, 2);
        net.advance_time(&[3, 1, 2]);
        let top = top_m(&mut net, 10);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, NodeId(0));
        assert_eq!(top[2].0, NodeId(1));
    }

    #[test]
    fn find_max_below_lowest_rank_is_none() {
        let mut net = DeterministicEngine::new(4, 2);
        net.advance_time(&[10, 20, 30, 40]);
        // The lowest-ranked node is node 0 with value 10; nothing is below it.
        assert_eq!(find_max_below(&mut net, Some((10, NodeId(0)))), None);
        // Just above it: node 0 itself is the only node below (11, any-id).
        assert_eq!(
            find_max_below(&mut net, Some((11, NodeId(0)))),
            Some((NodeId(0), 10))
        );
    }

    #[test]
    fn expected_messages_grow_logarithmically() {
        // Measure the mean number of messages for find_max over many seeds at two
        // problem sizes; the ratio must be far below the linear ratio.
        let mean_messages = |n: usize| {
            let trials = 60;
            let mut total = 0u64;
            for seed in 0..trials {
                let mut net = DeterministicEngine::new(n, seed);
                let mut values: Vec<Value> = (1..=n as Value).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xabc);
                values.shuffle(&mut rng);
                net.advance_time(&values);
                let _ = find_max(&mut net);
                total += net.stats().total_messages();
            }
            total as f64 / trials as f64
        };
        let small = mean_messages(32);
        let large = mean_messages(512);
        assert!(
            large / small < 4.0,
            "messages should grow ~log n: {small} -> {large}"
        );
        assert!(large < 80.0, "absolute message count too high: {large}");
    }

    #[test]
    fn messages_are_attributed_to_the_maximum_label() {
        let mut net = DeterministicEngine::new(16, 5);
        net.advance_time(&(1..=16).collect::<Vec<Value>>());
        let _ = find_max(&mut net);
        let stats = net.stats();
        assert_eq!(stats.messages_of_label(ProtocolLabel::Maximum), 0);
        // All messages of the nested existence runs carry the Existence label
        // because it is pushed innermost; the Maximum label is only a grouping
        // aid for drivers that do not nest. Total must still be positive.
        assert!(stats.total_messages() > 0);
    }
}
