//! The combined algorithm of Theorem 5.8.
//!
//! "At time `t` at which the algorithm is started, the algorithm probes the nodes
//! holding the `k + 1` largest values. If `v_{π(k+1,t)} < (1 − ε)·v_{π(k,t)}`
//! holds, the algorithm `TopKProtocol` is called. Otherwise the algorithm
//! `DenseProtocol` is executed. After termination of the respective call, the
//! procedure starts over again."
//!
//! [`CombinedMonitor`] implements exactly this dispatcher on top of
//! [`crate::topk_protocol::TopKMonitor`] and [`crate::dense::DenseMonitor`]. Both
//! inner monitors restart themselves when their protocol instance terminates;
//! the dispatcher watches their restart counters and re-evaluates the dispatch
//! condition (with one cheap top-(k+1) probe) whenever that happens, switching
//! the active protocol if the input moved between the "unique output" and the
//! "dense ε-neighbourhood" regime.

use topk_model::prelude::*;
use topk_net::Network;

use crate::dense::DenseMonitor;
use crate::maximum::top_m;
use crate::monitor::Monitor;
use crate::topk_protocol::TopKMonitor;

/// Which inner protocol is currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveProtocol {
    /// `TopKProtocol` (unique-output regime).
    TopK,
    /// `DenseProtocol` (dense ε-neighbourhood regime).
    Dense,
}

/// The Theorem 5.8 monitor: `TopKProtocol` when the output is unique,
/// `DenseProtocol` otherwise.
#[derive(Debug, Clone)]
pub struct CombinedMonitor {
    k: usize,
    eps: Epsilon,
    topk: TopKMonitor,
    dense: DenseMonitor,
    active: ActiveProtocol,
    /// Generation counters of the inner monitors at the last dispatch decision.
    seen_topk_restarts: u64,
    seen_dense_instances: u64,
    initialised: bool,
    switches: u64,
}

impl CombinedMonitor {
    /// Creates the combined monitor.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, eps: Epsilon) -> CombinedMonitor {
        CombinedMonitor {
            k,
            eps,
            topk: TopKMonitor::new(k, eps),
            dense: DenseMonitor::new(k, eps),
            active: ActiveProtocol::TopK,
            seen_topk_restarts: 0,
            seen_dense_instances: 0,
            initialised: false,
            switches: 0,
        }
    }

    /// The protocol currently executing.
    pub fn active(&self) -> ActiveProtocol {
        self.active
    }

    /// How often the dispatcher switched between the two protocols.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Evaluates the dispatch condition of Theorem 5.8 with a top-(k+1) probe:
    /// unique output → `TopKProtocol`, dense neighbourhood → `DenseProtocol`.
    fn dispatch(&mut self, net: &mut dyn Network) -> ActiveProtocol {
        net.meter().push_label(ProtocolLabel::Init);
        let top = top_m(net, self.k + 1);
        net.meter().pop_label();
        let v_k = top[self.k - 1].1;
        let v_k1 = top[self.k].1;
        if self.eps.clearly_smaller(v_k1, v_k) {
            ActiveProtocol::TopK
        } else {
            ActiveProtocol::Dense
        }
    }

    fn maybe_switch(&mut self, net: &mut dyn Network) {
        let restarted = match self.active {
            ActiveProtocol::TopK => self.topk.restarts() > self.seen_topk_restarts,
            ActiveProtocol::Dense => self.dense.instances() > self.seen_dense_instances,
        };
        if !restarted {
            return;
        }
        let wanted = self.dispatch(net);
        if wanted != self.active {
            self.switches += 1;
            self.active = wanted;
            // Start the newly selected protocol from a clean slate; it will
            // initialise (and assign fresh filters) on its next step.
            match wanted {
                ActiveProtocol::TopK => self.topk = TopKMonitor::new(self.k, self.eps),
                ActiveProtocol::Dense => self.dense = DenseMonitor::new(self.k, self.eps),
            }
        }
        self.seen_topk_restarts = self.topk.restarts();
        self.seen_dense_instances = self.dense.instances();
    }
}

impl Monitor for CombinedMonitor {
    fn k(&self) -> usize {
        self.k
    }

    fn eps(&self) -> Option<Epsilon> {
        Some(self.eps)
    }

    fn process_step(&mut self, net: &mut dyn Network) {
        if !self.initialised {
            self.active = self.dispatch(net);
            self.initialised = true;
        }
        match self.active {
            ActiveProtocol::TopK => self.topk.process_step(net),
            ActiveProtocol::Dense => self.dense.process_step(net),
        }
        self.maybe_switch(net);
    }

    fn output(&self) -> Vec<NodeId> {
        match self.active {
            ActiveProtocol::TopK => {
                let out = self.topk.output();
                if out.is_empty() {
                    self.dense.output()
                } else {
                    out
                }
            }
            ActiveProtocol::Dense => {
                let out = self.dense.output();
                if out.is_empty() {
                    self.topk.output()
                } else {
                    out
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "combined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{run_on_rows, RunReport};
    use topk_gen::{GapWorkload, NoiseOscillationWorkload, Workload};
    use topk_net::DeterministicEngine;

    fn drive(
        rows: Vec<Vec<Value>>,
        k: usize,
        eps: Epsilon,
        seed: u64,
    ) -> (RunReport, CombinedMonitor) {
        let n = rows[0].len();
        let mut net = DeterministicEngine::new(n, seed);
        let mut monitor = CombinedMonitor::new(k, eps);
        let report = run_on_rows(&mut monitor, &mut net, rows, eps);
        (report, monitor)
    }

    #[test]
    fn picks_topk_protocol_on_gap_inputs() {
        let mut w = GapWorkload::standard(12, 3, 100_000, 1);
        let rows: Vec<Vec<Value>> = (0..50).map(|_| w.next_step()).collect();
        let (report, monitor) = drive(rows, 3, Epsilon::TENTH, 1);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.active(), ActiveProtocol::TopK);
    }

    #[test]
    fn picks_dense_protocol_on_oscillating_inputs() {
        let eps = Epsilon::TENTH;
        let mut w = NoiseOscillationWorkload::new(16, 2, 10, 100_000, eps, 2);
        let rows: Vec<Vec<Value>> = (0..50).map(|_| w.next_step()).collect();
        let (report, monitor) = drive(rows, 5, eps, 2);
        assert_eq!(report.invalid_steps, 0);
        assert_eq!(monitor.active(), ActiveProtocol::Dense);
    }

    #[test]
    fn switches_when_the_regime_changes() {
        let eps = Epsilon::TENTH;
        // 40 steps of clear gap, then 40 steps of dense oscillation around the
        // (new) k-th value.
        let mut gap = GapWorkload::standard(12, 3, 100_000, 4);
        let mut dense = NoiseOscillationWorkload::new(12, 1, 8, 50_000, eps, 4);
        let mut rows: Vec<Vec<Value>> = (0..40).map(|_| gap.next_step()).collect();
        rows.extend((0..40).map(|_| dense.next_step()));
        let (report, monitor) = drive(rows, 3, eps, 4);
        assert_eq!(report.invalid_steps, 0);
        assert!(
            monitor.switches() >= 1,
            "expected at least one protocol switch"
        );
        assert_eq!(monitor.active(), ActiveProtocol::Dense);
    }

    #[test]
    fn beats_exact_monitor_on_mixed_workloads() {
        let eps = Epsilon::TENTH;
        let mut dense = NoiseOscillationWorkload::new(20, 3, 10, 1_000_000, eps, 9);
        let rows: Vec<Vec<Value>> = (0..120).map(|_| dense.next_step()).collect();
        let (combined_report, _) = drive(rows.clone(), 6, eps, 9);
        let mut net = DeterministicEngine::new(20, 9);
        let mut exact = crate::ExactTopKMonitor::new(6);
        let exact_report = run_on_rows(&mut exact, &mut net, rows, eps);
        assert_eq!(combined_report.invalid_steps, 0);
        assert!(
            combined_report.messages() < exact_report.messages(),
            "combined ({}) should beat exact ({})",
            combined_report.messages(),
            exact_report.messages()
        );
    }
}
