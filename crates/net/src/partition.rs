//! Contiguous shard partitioning, shared by the sharded and threaded engines.
//!
//! Both engines split the node population into `W` contiguous id ranges with
//! the same arithmetic; keeping the boundary builder and the owner lookup in
//! one place keeps the two partitioning schemes incapable of drifting apart.

/// Shard boundaries for `n` nodes over `workers` shards: shard `s` owns
/// global ids `bounds[s]..bounds[s + 1]` with `bounds[s] = ⌊s·n/W⌋` (ranges
/// differ in size by at most one; some are empty when `workers > n`).
pub(crate) fn shard_bounds(n: usize, workers: usize) -> Vec<usize> {
    (0..=workers).map(|s| s * n / workers).collect()
}

/// The shard owning `node`, in O(1): `⌈(node+1)·W/n⌉ - 1`.
///
/// Proof that the result `s` satisfies `bounds[s] ≤ node < bounds[s+1]`:
/// `s·n ≤ (node+1)·W - 1` gives `⌊s·n/W⌋ ≤ node`, and
/// `(s+1)·n ≥ (node+1)·W` gives `node < ⌊(s+1)·n/W⌋`. The unit test below
/// checks the closed form against the boundary array exhaustively.
///
/// # Panics
///
/// Panics (in debug builds) if `node >= n`; callers assert range with their
/// own message first.
pub(crate) fn shard_of(n: usize, workers: usize, node: usize) -> usize {
    debug_assert!(node < n, "node {node} out of range (n = {n})");
    ((node + 1) * workers - 1) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_owner_matches_the_boundaries() {
        for n in 1..60 {
            for workers in 1..16 {
                let bounds = shard_bounds(n, workers);
                assert_eq!(bounds.len(), workers + 1);
                assert_eq!(bounds[0], 0);
                assert_eq!(bounds[workers], n);
                for node in 0..n {
                    let s = shard_of(n, workers, node);
                    assert!(
                        bounds[s] <= node && node < bounds[s + 1],
                        "n={n} workers={workers}: node {node} routed to shard {s} [{}, {})",
                        bounds[s],
                        bounds[s + 1]
                    );
                }
            }
        }
    }
}
