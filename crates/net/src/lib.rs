//! # topk-net
//!
//! Simulation runtimes for the continuous distributed monitoring model used by
//! the paper *On Competitive Algorithms for Approximations of Top-k-Position
//! Monitoring of Distributed Streams*.
//!
//! The crate provides five interchangeable engines behind the [`Network`] trait
//! (`docs/ARCHITECTURE.md` has a which-engine-when decision guide):
//!
//! * [`DeterministicEngine`] — executes all node logic in-process and in a fixed
//!   order. Message counts are exactly reproducible for a given seed, which is
//!   what the competitive-ratio experiments need. Reference semantics, Θ(n)
//!   work per existence round.
//! * [`IndexedEngine`] — same bit-identical behaviour as the deterministic
//!   engine (same replies, same counts, same RNG streams), but stores node
//!   state as struct-of-arrays and maintains incremental active-set indexes so
//!   an existence round costs O(active) instead of Θ(n). This is the
//!   single-threaded reference for large `n`; see `crates/net/src/indexed.rs`
//!   for the argument why skipping inactive nodes is exact.
//! * [`ShardedEngine`] — the indexed engine's algorithm partitioned into
//!   contiguous node-range shards on a fixed worker pool, with per-shard reply
//!   buffers merged in node-id order. Bit-identical to the baseline for any
//!   shard count (the differential suite asserts it), with a tuned bulk
//!   observation path; this is the engine for production-scale populations.
//! * [`ThreadedEngine`] — hosts the same node state machine ([`SimNode`]) on a
//!   fixed pool of shard threads (contiguous node ranges per thread) and moves
//!   every server → node and node → server interaction over `crossbeam`
//!   channels. Because the node logic and the per-node RNG seeding are shared,
//!   all engines produce *identical* message counts; the threaded engine
//!   exists to demonstrate that the protocols are genuinely message-passing
//!   algorithms and to measure wall-clock behaviour under real concurrency.
//! * [`RemoteEngine`] — the server coordinator in this process, the node
//!   population as shard *client connections* over loopback TCP, every
//!   interaction encoded in the `topk-wire` binary format (`docs/WIRE.md`).
//!   Still bit-identical to the baseline — replies, `CommStats` and node
//!   state — while the messages genuinely cross a socket; exposes wire-level
//!   [`TransportStats`] (frames/bytes) for the throughput harness's
//!   `--remote` axis.
//!
//! Orthogonally to the engine choice, [`FaultyTransport`] wraps any of the
//! five behind the same [`Network`] trait and executes a deterministic
//! seed-driven fault plan ([`topk_model::FaultSpec`]) — message drop, latency,
//! reply reordering and node crash/rejoin with recovery replay. With
//! `FaultSpec::none()` the wrapper is bit-transparent; `docs/FAULTS.md` has
//! the full semantics and determinism contract.
//!
//! ## Cost accounting
//!
//! Every transport primitive charges the [`topk_model::CostMeter`] owned by the
//! engine:
//!
//! | primitive | cost |
//! |-----------|------|
//! | [`Network::broadcast_params`] | 1 broadcast |
//! | [`Network::assign_group`], [`Network::assign_filter`] | 1 downstream unicast |
//! | [`Network::probe`] | 1 downstream unicast + 1 upstream |
//! | [`Network::existence_round`] | 1 upstream per responding node (the round schedule itself is predetermined and therefore free), 1 protocol round |
//! | [`Network::end_existence_run`] | 1 broadcast |
//! | [`Network::advance_time`] | free (observations are local to the nodes) |
//!
//! The "predetermined schedule" accounting of existence rounds follows the
//! analysis of Lemma 3.1: the nodes know that round `r` of an existence run takes
//! place in the r-th communication round after the observation, so the server
//! does not need to announce rounds; it only announces the *end* of a run that
//! produced a response (one broadcast), which keeps the expected message count
//! per run constant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deterministic;
pub mod engine;
pub mod fault;
pub mod indexed;
pub mod network;
pub mod node;
mod partition;
pub mod remote;
pub mod sharded;
pub mod threaded;
pub mod value_index;

pub use deterministic::DeterministicEngine;
pub use engine::{build_engine, EngineKind};
pub use fault::{FaultyTransport, PROBE_ATTEMPTS};
pub use indexed::IndexedEngine;
pub use network::Network;
pub use node::SimNode;
pub use remote::{RemoteEngine, TransportStats};
pub use sharded::{Dispatch, ShardedEngine};
pub use threaded::ThreadedEngine;
pub use value_index::ValueIndex;
