//! TCP-loopback engine: the protocols over a real socket.
//!
//! [`RemoteEngine`] hosts the server coordinator in the current process and
//! the node population as *client connections*: construction binds a TCP
//! listener on `127.0.0.1`, spawns one client per shard (a contiguous node
//! range, the same `partition.rs` arithmetic the sharded and threaded
//! engines use), and waits for each client to connect and identify itself
//! with a `Join` frame. Every [`Network`] operation is then encoded with
//! `topk-wire`, framed, and moved through the sockets — the messages the
//! paper charges for genuinely cross a transport instead of a function call.
//!
//! ## Frame discipline
//!
//! Each `Network` call produces at most one [`Frame::Batch`] per involved
//! shard connection. Pure commands (observations, filter/group updates,
//! parameter broadcasts, end-of-run announcements) are *fire-and-forget*:
//! TCP's per-connection ordering guarantees a shard applies them before any
//! later frame, so the server never blocks on them. Operations that the
//! model answers upstream — probes and existence rounds — set the batch's
//! `wants_reply` flag, and the server then reads exactly one
//! [`Frame::Replies`] per queried shard, *in shard order*. Shards are
//! contiguous ascending id ranges and every shard replies in ascending node
//! id order, so the concatenation is the global id order — the reply order
//! of [`DeterministicEngine`](crate::DeterministicEngine).
//!
//! ## Why the engine is bit-identical to the in-process baseline
//!
//! The clients drive the very same [`SimNode`] state machine on the very
//! same per-node `(master seed, node id)` RNG streams, and the wire format
//! round-trips every message losslessly (`topk-wire`'s proptests). A node's
//! RNG advances only inside its own coin flip, so neither the sharding nor
//! the transport can perturb any random stream; the id-ordered reply merge
//! restores the baseline's reply sequence; and the server charges the
//! [`CostMeter`] with exactly the baseline's accounting rules. Hence
//! replies, `CommStats` and all node state match the baseline bit for bit —
//! `tests/indexed_differential.rs` proves it over randomized schedules, and
//! `topk-core`'s monitors run unchanged over loopback.
//!
//! ## Server-side state mirror
//!
//! The free `peek_*` inspection API must not generate traffic (peeks are
//! not part of the model). The server therefore mirrors the deterministic
//! part of node state — values it delivered, filters/groups/params it sent —
//! in a [`NodeStateSoA`] and answers peeks locally. The mirror cannot drift:
//! filters derive through the same pure [`filter_for`] both sides evaluate,
//! and the differential battery asserts mirror state equals the baseline's
//! node state after every schedule.

use crate::network::Network;
use crate::node::SimNode;
use crate::partition::{shard_bounds, shard_of};
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use topk_model::message::ExistencePredicate;
use topk_model::prelude::*;
use topk_model::rule::filter_for;
use topk_model::soa::NodeStateSoA;
use topk_wire::{read_frame, write_frame, Frame, ServerOp, WireError};

/// Transport-level counters of a [`RemoteEngine`] (all connections summed).
///
/// These measure *wire* activity — frames and bytes — as opposed to the
/// `CommStats` *model* accounting (one unit per protocol message). The
/// throughput harness's `--remote` axis reports both and their ratio
/// (bytes per model message).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames the server wrote to shard connections.
    pub frames_sent: u64,
    /// Frames the server read from shard connections.
    pub frames_received: u64,
    /// Bytes written, including length prefixes and frame headers.
    pub bytes_sent: u64,
    /// Bytes read, including length prefixes and frame headers.
    pub bytes_received: u64,
}

impl TransportStats {
    /// Total frames moved in either direction.
    pub fn frames(&self) -> u64 {
        self.frames_sent + self.frames_received
    }

    /// Total bytes moved in either direction.
    pub fn bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// One framed server-side connection to a shard client.
struct Conn {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    stats: TransportStats,
}

impl Conn {
    fn send(&mut self, frame: &Frame) {
        let bytes = write_frame(&mut self.writer, frame)
            .unwrap_or_else(|e| panic!("remote transport: failed to send frame: {e}"));
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += bytes as u64;
    }

    fn recv_replies(&mut self) -> Vec<NodeMessage> {
        let (frame, bytes) = read_frame(&mut self.reader)
            .unwrap_or_else(|e| panic!("remote transport: failed to read reply frame: {e}"));
        self.stats.frames_received += 1;
        self.stats.bytes_received += bytes as u64;
        match frame {
            Frame::Replies(replies) => replies,
            other => panic!("remote transport: expected a reply frame, got {other:?}"),
        }
    }
}

/// TCP-loopback engine (see the module documentation).
pub struct RemoteEngine {
    /// Server-side mirror of node values/filters/groups, for free peeks.
    mirror: NodeStateSoA,
    /// Last broadcast parameters (for the mirror's filter re-derivation).
    params: Option<FilterParams>,
    /// One connection per shard, indexed by shard; `bounds[s]..bounds[s+1]`
    /// is the node range of shard `s`.
    conns: Vec<Conn>,
    bounds: Vec<usize>,
    handles: Vec<JoinHandle<()>>,
    meter: CostMeter,
}

impl std::fmt::Debug for RemoteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteEngine")
            .field("n", &self.mirror.len())
            .field("shards", &self.conns.len())
            .field("transport", &self.transport_stats())
            .finish()
    }
}

impl RemoteEngine {
    /// Creates an engine with `n` nodes on as many shard connections as the
    /// machine has usable parallelism (at least one, at most `n`), with
    /// per-node RNGs derived from `master_seed` exactly like every other
    /// engine's.
    ///
    /// ```
    /// use topk_net::{Network, RemoteEngine};
    ///
    /// let mut net = RemoteEngine::new(4, 7);
    /// net.advance_time(&[10, 20, 30, 40]);
    /// assert_eq!(net.probe(topk_model::NodeId(2)), 30);
    /// ```
    pub fn new(n: usize, master_seed: u64) -> RemoteEngine {
        let parallelism = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        RemoteEngine::with_shards(n, master_seed, parallelism.clamp(1, n.max(1)))
    }

    /// Creates an engine with an explicit shard (connection) count.
    ///
    /// Shard `s` hosts the contiguous node range `⌊s·n/W⌋ .. ⌊(s+1)·n/W⌋`;
    /// shard counts above `n` leave the surplus connections empty but
    /// functional.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`, or if binding the loopback listener or
    /// completing the join handshake fails.
    pub fn with_shards(n: usize, master_seed: u64, shards: usize) -> RemoteEngine {
        assert!(shards > 0, "at least one shard connection is required");
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).expect("remote transport: cannot bind loopback");
        let addr = listener
            .local_addr()
            .expect("remote transport: listener has no local address");
        let bounds = shard_bounds(n, shards);
        let handles: Vec<JoinHandle<()>> = (0..shards)
            .map(|s| {
                let (lo, hi) = (bounds[s], bounds[s + 1]);
                std::thread::Builder::new()
                    .name(format!("topk-shard-{s}"))
                    .spawn(move || run_shard_client(addr, s as u32, lo, hi, master_seed))
                    .expect("remote transport: cannot spawn shard client")
            })
            .collect();
        // Accept every client and slot it by the shard index in its Join
        // frame — accept order is scheduler-dependent, the handshake is not.
        let mut slots: Vec<Option<Conn>> = (0..shards).map(|_| None).collect();
        for _ in 0..shards {
            let (stream, _) = listener
                .accept()
                .expect("remote transport: accept failed during handshake");
            stream
                .set_nodelay(true)
                .expect("remote transport: cannot set TCP_NODELAY");
            let mut conn = Conn {
                reader: BufReader::new(
                    stream
                        .try_clone()
                        .expect("remote transport: cannot clone stream"),
                ),
                writer: BufWriter::new(stream),
                stats: TransportStats::default(),
            };
            let (frame, bytes) = read_frame(&mut conn.reader)
                .unwrap_or_else(|e| panic!("remote transport: bad join frame: {e}"));
            conn.stats.frames_received += 1;
            conn.stats.bytes_received += bytes as u64;
            let Frame::Join { shard } = frame else {
                panic!("remote transport: expected a join frame, got {frame:?}");
            };
            let slot = &mut slots[shard as usize];
            assert!(slot.is_none(), "shard {shard} joined twice");
            *slot = Some(conn);
        }
        RemoteEngine {
            mirror: NodeStateSoA::new(n),
            params: None,
            conns: slots
                .into_iter()
                .map(|c| c.expect("all shards joined"))
                .collect(),
            bounds,
            handles,
            meter: CostMeter::new(),
        }
    }

    /// Number of shard connections (client processes in a real deployment).
    pub fn shard_count(&self) -> usize {
        self.conns.len()
    }

    /// Aggregated wire-level counters over all shard connections.
    pub fn transport_stats(&self) -> TransportStats {
        let mut total = TransportStats::default();
        for conn in &self.conns {
            total.frames_sent += conn.stats.frames_sent;
            total.frames_received += conn.stats.frames_received;
            total.bytes_sent += conn.stats.bytes_sent;
            total.bytes_received += conn.stats.bytes_received;
        }
        total
    }

    /// The node range of shard `s`.
    fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Sends a fire-and-forget single-op batch to one shard.
    fn command(&mut self, shard: usize, op: ServerOp) {
        self.conns[shard].send(&Frame::Batch {
            wants_reply: false,
            ops: vec![op],
        });
    }

    /// Delivers a server message to every node via per-shard broadcasts.
    fn broadcast_command(&mut self, msg: ServerMessage) {
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            self.command(s, ServerOp::Broadcast { msg });
        }
    }

    /// Mirror bookkeeping for a group change (the `SimNode` rule: the filter
    /// re-derives only once parameters were broadcast).
    fn mirror_group(&mut self, i: usize, group: NodeGroup) {
        self.mirror.set_group(i, group);
        if let Some(p) = self.params {
            self.mirror.set_filter(i, filter_for(group, &p));
        }
    }

    /// The shard owning node `node`.
    fn owner(&self, node: NodeId) -> usize {
        assert!(
            node.index() < self.mirror.len(),
            "node {node} out of range (n = {})",
            self.mirror.len()
        );
        shard_of(self.mirror.len(), self.conns.len(), node.index())
    }
}

impl Network for RemoteEngine {
    fn n(&self) -> usize {
        self.mirror.len()
    }

    fn advance_time(&mut self, values: &[Value]) {
        assert_eq!(
            values.len(),
            self.mirror.len(),
            "one observation per node required"
        );
        for s in 0..self.conns.len() {
            let range = self.range(s);
            if range.is_empty() {
                continue;
            }
            let op = ServerOp::ObserveRow {
                start: NodeId(range.start),
                values: values[range].to_vec(),
            };
            self.command(s, op);
        }
        for (i, &v) in values.iter().enumerate() {
            if self.mirror.value(i) != v {
                self.mirror.set_value(i, v);
            }
        }
        self.meter.record_time_step();
    }

    fn advance_time_sparse(&mut self, changes: &[(NodeId, Value)]) {
        // Route each change to its owning shard; one frame per shard that
        // has any. Per-shard order preserves the caller's order, so
        // duplicate entries still resolve last-wins like the baseline.
        let mut routed: Vec<Vec<(NodeId, Value)>> = vec![Vec::new(); self.conns.len()];
        for &(node, v) in changes {
            routed[self.owner(node)].push((node, v));
            self.mirror.set_value(node.index(), v);
        }
        for (s, changes) in routed.into_iter().enumerate() {
            if !changes.is_empty() {
                self.command(s, ServerOp::ObserveSparse { changes });
            }
        }
        self.meter.record_time_step();
    }

    fn broadcast_params(&mut self, params: FilterParams) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::BroadcastParams(params));
        self.params = Some(params);
        for i in 0..self.mirror.len() {
            let f = filter_for(self.mirror.group(i), &params);
            self.mirror.set_filter(i, f);
        }
    }

    fn assign_group(&mut self, node: NodeId, group: NodeGroup) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.command(
            owner,
            ServerOp::Unicast {
                node,
                msg: ServerMessage::AssignGroup(group),
            },
        );
        self.mirror_group(node.index(), group);
    }

    fn broadcast_group(&mut self, group: NodeGroup) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::BroadcastGroup(group));
        for i in 0..self.mirror.len() {
            self.mirror_group(i, group);
        }
    }

    fn assign_filter(&mut self, node: NodeId, filter: Filter) {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.command(
            owner,
            ServerOp::Unicast {
                node,
                msg: ServerMessage::AssignFilter(filter),
            },
        );
        self.mirror.set_filter(node.index(), filter);
    }

    fn probe(&mut self, node: NodeId) -> Value {
        self.meter.record(MessageKind::DownstreamUnicast);
        let owner = self.owner(node);
        self.conns[owner].send(&Frame::Batch {
            wants_reply: true,
            ops: vec![ServerOp::Unicast {
                node,
                msg: ServerMessage::Probe,
            }],
        });
        let replies = self.conns[owner].recv_replies();
        self.meter.record(MessageKind::Upstream);
        match replies.as_slice() {
            [NodeMessage::ValueReport { value, .. }] => *value,
            other => panic!("probe must be answered with one value report, got {other:?}"),
        }
    }

    fn existence_round_into(
        &mut self,
        round: u32,
        population: u32,
        predicate: ExistencePredicate,
        replies: &mut Vec<NodeMessage>,
    ) {
        self.meter.record_round();
        let msg = ServerMessage::ExistenceRound {
            round,
            population,
            predicate,
        };
        // Send the round to every occupied shard first, then collect the
        // replies in shard order: the shards flip their coins concurrently
        // and the ordered collection restores the global id order. Runs on
        // every round of every violation check, so the shard walks stay
        // allocation-free (beyond the frame encodings themselves).
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            self.conns[s].send(&Frame::Batch {
                wants_reply: true,
                ops: vec![ServerOp::Broadcast { msg }],
            });
        }
        replies.clear();
        for s in 0..self.conns.len() {
            if self.range(s).is_empty() {
                continue;
            }
            replies.extend(self.conns[s].recv_replies());
        }
        self.meter
            .record_many(MessageKind::Upstream, replies.len() as u64);
    }

    fn end_existence_run(&mut self) {
        self.meter.record(MessageKind::Broadcast);
        self.broadcast_command(ServerMessage::EndExistenceRun);
    }

    fn meter(&mut self) -> &mut CostMeter {
        &mut self.meter
    }

    fn stats(&self) -> CommStats {
        self.meter.snapshot()
    }

    fn peek_value(&self, node: NodeId) -> Value {
        self.mirror.value(node.index())
    }

    fn peek_filter(&self, node: NodeId) -> Filter {
        self.mirror.filter(node.index())
    }

    fn peek_group(&self, node: NodeId) -> NodeGroup {
        self.mirror.group(node.index())
    }

    fn peek_filters_into(&self, out: &mut Vec<Filter>) {
        out.clear();
        out.extend(self.mirror.filters().map(|(_, f)| f));
    }

    fn peek_values_into(&self, out: &mut Vec<Value>) {
        out.clear();
        out.extend_from_slice(self.mirror.values());
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        for conn in &mut self.conns {
            // Best effort: a client that already died closed its socket, and
            // the join below reaps it either way.
            let _ = write_frame(&mut conn.writer, &Frame::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Body of one shard-client thread: connect, join, then serve batches until
/// shutdown.
///
/// The client owns the [`SimNode`] state machines of global ids `lo..hi` and
/// is driven *only* by decoded frames — it shares no memory with the server.
/// Replies accumulate in ascending node-id order because every op iterates
/// the shard's nodes in ascending order.
fn run_shard_client(addr: SocketAddr, shard: u32, lo: usize, hi: usize, master_seed: u64) {
    let stream = TcpStream::connect(addr).expect("shard client: cannot connect to server");
    stream
        .set_nodelay(true)
        .expect("shard client: cannot set TCP_NODELAY");
    let mut reader = BufReader::new(stream.try_clone().expect("shard client: clone stream"));
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &Frame::Join { shard }).expect("shard client: join handshake failed");

    let mut nodes: Vec<SimNode> = (lo..hi)
        .map(|i| SimNode::new(NodeId(i), master_seed))
        .collect();
    let mut replies: Vec<NodeMessage> = Vec::new();
    loop {
        let frame = match read_frame(&mut reader) {
            Ok((frame, _)) => frame,
            // The server dropped without an orderly shutdown (e.g. a test
            // panicked): exit quietly, the Drop impl reaps the thread.
            Err(WireError::Io(_)) => return,
            Err(e) => panic!("shard client {shard}: corrupt frame: {e}"),
        };
        match frame {
            Frame::Batch { wants_reply, ops } => {
                replies.clear();
                for op in ops {
                    apply_op(&mut nodes, lo, op, &mut replies);
                }
                if wants_reply {
                    // Move the scratch buffer into the frame for the write,
                    // then reclaim it so one allocation serves the whole
                    // connection (replies are cleared per batch above).
                    let frame = Frame::Replies(std::mem::take(&mut replies));
                    write_frame(&mut writer, &frame).expect("shard client: cannot send replies");
                    let Frame::Replies(out) = frame else {
                        unreachable!("frame constructed as Replies above")
                    };
                    replies = out;
                }
            }
            Frame::Shutdown => return,
            other => panic!("shard client {shard}: unexpected frame {other:?}"),
        }
    }
}

/// Applies one decoded batch operation to a shard's nodes, appending any
/// upstream messages to `replies` in ascending node-id order.
fn apply_op(nodes: &mut [SimNode], lo: usize, op: ServerOp, replies: &mut Vec<NodeMessage>) {
    match op {
        ServerOp::ObserveRow { start, values } => {
            let base = start.index() - lo;
            for (j, v) in values.into_iter().enumerate() {
                nodes[base + j].observe(v);
            }
        }
        ServerOp::ObserveSparse { changes } => {
            for (node, v) in changes {
                nodes[node.index() - lo].observe(v);
            }
        }
        ServerOp::Unicast { node, msg } => {
            if let Some(reply) = nodes[node.index() - lo].handle(&msg) {
                replies.push(reply);
            }
        }
        ServerOp::Broadcast { msg } => {
            for node in nodes.iter_mut() {
                if let Some(reply) = node.handle(&msg) {
                    replies.push(reply);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicEngine;

    #[test]
    fn basic_flow_matches_baseline_semantics() {
        let mut net = RemoteEngine::with_shards(5, 1, 2);
        net.advance_time(&[10, 20, 30, 40, 50]);
        net.broadcast_params(FilterParams::Separator { lo: 25, hi: 25 });
        net.assign_filter(NodeId(0), Filter::at_least(40));
        net.assign_group(NodeId(1), NodeGroup::Upper);
        assert_eq!(net.probe(NodeId(4)), 50);
        let stats = net.stats();
        assert_eq!(stats.messages_of_kind(MessageKind::Broadcast), 1);
        assert_eq!(stats.messages_of_kind(MessageKind::DownstreamUnicast), 3);
        assert_eq!(stats.messages_of_kind(MessageKind::Upstream), 1);
        assert_eq!(stats.time_steps, 1);
        assert_eq!(net.peek_filter(NodeId(1)), Filter::at_least(25));
        assert_eq!(net.peek_filter(NodeId(2)), Filter::at_most(25));
        assert_eq!(net.peek_group(NodeId(1)), NodeGroup::Upper);
        assert_eq!(net.peek_values(), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn matches_baseline_on_a_scripted_run() {
        let script = |net: &mut dyn Network| {
            net.advance_time(&[3, 1, 4, 1, 5, 9, 2, 6]);
            net.assign_group(NodeId(5), NodeGroup::Upper);
            net.broadcast_params(FilterParams::Separator { lo: 5, hi: 5 });
            let mut found = Vec::new();
            for round in 0..=3 {
                let r = net.existence_round(round, 8, ExistencePredicate::PendingViolation);
                if !r.is_empty() {
                    found = r;
                    net.end_existence_run();
                    break;
                }
            }
            net.advance_time_sparse(&[(NodeId(7), 4), (NodeId(0), 9)]);
            let max = net.existence_round(10, 8, ExistencePredicate::AtLeast(9));
            (found, max, net.stats())
        };
        for shards in [1, 3, 8] {
            let mut base = DeterministicEngine::new(8, 1234);
            let mut remote = RemoteEngine::with_shards(8, 1234, shards);
            let (f_base, m_base, s_base) = script(&mut base);
            let (f_rem, m_rem, s_rem) = script(&mut remote);
            assert_eq!(
                f_base, f_rem,
                "violation replies diverge at {shards} shards"
            );
            assert_eq!(
                m_base, m_rem,
                "threshold replies diverge at {shards} shards"
            );
            assert_eq!(s_base, s_rem, "stats diverge at {shards} shards");
            assert_eq!(base.peek_filters(), remote.peek_filters());
            assert_eq!(base.peek_values(), remote.peek_values());
            for i in 0..8 {
                assert_eq!(base.peek_group(NodeId(i)), remote.peek_group(NodeId(i)));
            }
        }
    }

    #[test]
    fn transport_counters_track_wire_activity() {
        let mut net = RemoteEngine::with_shards(4, 9, 2);
        let after_handshake = net.transport_stats();
        assert_eq!(after_handshake.frames_received, 2, "one join per shard");
        net.advance_time(&[1, 2, 3, 4]);
        let after_row = net.transport_stats();
        assert_eq!(after_row.frames_sent, 2, "one observation frame per shard");
        assert!(after_row.bytes_sent > 0);
        // A probe costs one frame out and one reply frame back on one conn.
        net.probe(NodeId(0));
        let after_probe = net.transport_stats();
        assert_eq!(after_probe.frames_sent, after_row.frames_sent + 1);
        assert_eq!(
            after_probe.frames_received,
            after_handshake.frames_received + 1
        );
    }

    #[test]
    fn more_shards_than_nodes_leaves_surplus_connections_idle() {
        let mut net = RemoteEngine::with_shards(2, 3, 5);
        assert_eq!(net.shard_count(), 5);
        net.advance_time(&[7, 8]);
        let replies = net.existence_round(10, 2, ExistencePredicate::GreaterThan(0));
        assert_eq!(replies.len(), 2);
        assert_eq!(replies[0].sender(), NodeId(0));
        assert_eq!(replies[1].sender(), NodeId(1));
    }

    #[test]
    fn silent_rounds_cost_model_nothing_but_cross_the_wire() {
        let mut net = RemoteEngine::with_shards(8, 5, 2);
        net.advance_time(&[10; 8]);
        let before = net.stats().total_messages();
        let wire_before = net.transport_stats().frames();
        let replies = net.existence_round(10, 8, ExistencePredicate::GreaterThan(100));
        assert!(replies.is_empty());
        assert_eq!(
            net.stats().total_messages(),
            before,
            "silent round is free in the model"
        );
        assert!(
            net.transport_stats().frames() > wire_before,
            "but the round schedule genuinely crossed the socket"
        );
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let net = RemoteEngine::with_shards(3, 1, 3);
        drop(net); // must not hang or panic
    }
}
